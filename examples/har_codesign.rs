//! HAR co-design sweep — the Figure 2 experiment as a walkthrough.
//!
//! ```sh
//! cargo run --release --example har_codesign
//! ```
//!
//! Runs the accuracy × throughput evolutionary search on the Human
//! Activity Recognition stand-in against both an Arria 10 FPGA and a
//! Quadro M5000 GPU, then prints the accuracy/throughput scatter and
//! the paper's two observations: the FPGA trades accuracy for an
//! order-of-magnitude throughput jump, while the GPU's throughput is
//! insensitive to how neurons are distributed.

use ecad_repro::core::prelude::*;
use ecad_repro::dataset::benchmarks::{self, Benchmark};
use ecad_repro::hw::fpga::FpgaDevice;
use ecad_repro::hw::gpu::GpuDevice;
use ecad_repro::tensor::stats;

fn main() {
    let dataset = benchmarks::load(Benchmark::Har)
        .with_samples(900)
        .with_seed(3)
        .generate();
    println!(
        "HAR stand-in: {} windows x {} sensor features, {} activities\n",
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes()
    );

    let mut scatters = Vec::new();
    for (label, target) in [
        (
            "Arria 10 (Fig 2a)",
            HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
        ),
        (
            "Quadro M5000 (Fig 2b)",
            HwTarget::Gpu(GpuDevice::quadro_m5000()),
        ),
    ] {
        let result = Search::on_dataset(&dataset)
            .target(target)
            .objectives(ObjectiveSet::accuracy_and_throughput())
            .evaluations(45)
            .population(12)
            .seed(31)
            .run();
        let points = result.trace_points();
        println!("{label}: {} candidates evaluated", points.len());
        println!("  accuracy  outputs/s     neurons  genome");
        let mut shown: Vec<&TracePoint> = points.iter().filter(|p| p.feasible).collect();
        shown.sort_by(|a, b| b.accuracy.partial_cmp(&a.accuracy).unwrap());
        for p in shown.iter().take(8) {
            println!(
                "  {:.4}    {:>10.3e}  {:>6}   {}",
                p.accuracy, p.outputs_per_s, p.neurons, p.genome
            );
        }
        println!();
        scatters.push((label, points));
    }

    // The paper's two Fig-2 observations, computed from the scatters.
    for (label, points) in &scatters {
        let feasible: Vec<_> = points.iter().filter(|p| p.feasible).collect();
        let top = feasible
            .iter()
            .map(|p| p.accuracy)
            .fold(f32::NEG_INFINITY, f32::max);
        let at_top = feasible
            .iter()
            .filter(|p| p.accuracy >= top - 0.001)
            .map(|p| p.outputs_per_s)
            .fold(0.0f64, f64::max);
        let notch_down = feasible
            .iter()
            .filter(|p| p.accuracy < top - 0.001 && p.accuracy >= top - 0.01)
            .map(|p| p.outputs_per_s)
            .fold(0.0f64, f64::max);
        let xs: Vec<f32> = feasible.iter().map(|p| p.neurons as f32).collect();
        let ys: Vec<f32> = feasible.iter().map(|p| p.outputs_per_s as f32).collect();
        let corr = stats::pearson(&xs, &ys).unwrap_or(0.0);
        println!("{label}:");
        println!("  top accuracy {top:.4}; outputs/s at top {at_top:.3e}");
        if notch_down > 0.0 {
            println!(
                "  one notch (≤1%) down: {notch_down:.3e} outputs/s ({:.1}x)",
                notch_down / at_top.max(1.0)
            );
        }
        println!("  corr(total neurons, outputs/s) = {corr:.2}\n");
    }
}
