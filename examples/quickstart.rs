//! Quickstart: evolve an MLP + FPGA grid for a tabular dataset.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --seed N] [--trace-out OUT.jsonl]
//! ```
//!
//! This is the smallest end-to-end tour of the flow: generate (or load)
//! a dataset, run a joint accuracy × throughput search against an
//! Arria 10 model, and inspect the winner and the Pareto frontier.
//! Two runs with the same `--seed` print the same best genome and
//! frontier — every random draw goes through the in-repo `rt::rand`.
//! With `--trace-out` the engine also streams its structured events
//! (submissions, evaluations, cache hits, infeasibilities) to a JSONL
//! file that `ecad trace --file OUT.jsonl` can validate. With
//! `--profile-out` a tick-clock profiler is attached: the run writes a
//! schema-pinned profile JSON (`ecad profile --file OUT.json` renders
//! it) that is byte-identical across runs with the same seed. With
//! `--faults` the evaluator is wrapped in a deterministic
//! fault-injection harness (worker panic, stalled evaluation, transient
//! failure) to demonstrate the engine's retry/deadline/respawn
//! machinery; the run still completes its full budget.

use std::sync::Arc;
use std::time::Duration;

use ecad_repro::core::engine::{Engine, EvolutionConfig, SelectionMode};
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::benchmarks::{self, Benchmark};
use ecad_repro::hw::fpga::FpgaDevice;
use ecad_repro::rt::obs::{JsonlSink, Level, Obs};
use ecad_repro::rt::prof::{profile_to_json, ClockKind, Profiler};
use ecad_repro::rt::rand::rngs::StdRng;
use ecad_repro::rt::rand::SeedableRng;

/// Parses `--seed N` (default 7), `--trace-out FILE`,
/// `--profile-out FILE`, and the `--faults` switch from the argument
/// list.
fn args() -> (u64, Option<String>, Option<String>, bool) {
    let mut seed = 7;
    let mut trace_out = None;
    let mut profile_out = None;
    let mut faults = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed takes a value");
                seed = v.parse().expect("--seed takes an unsigned integer");
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a path"));
            }
            "--profile-out" => {
                profile_out = Some(args.next().expect("--profile-out takes a path"));
            }
            "--faults" => faults = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    (seed, trace_out, profile_out, faults)
}

/// The `--faults` tour: the same co-design evaluator, wrapped so that
/// one call panics, one stalls past the deadline, and one fails
/// transiently. The engine retries each to success and finishes the
/// whole budget anyway.
fn run_faulted(dataset: &ecad_repro::dataset::Dataset, seed: u64, obs: Obs) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0011);
    let (train, test) = dataset.split(0.25, &mut rng);
    let inner = CodesignEvaluator::new(
        train,
        test,
        ecad_repro::mlp::TrainConfig::fast(),
        HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
        seed,
    )
    .with_obs(obs.clone());
    let schedule = FaultSchedule::new()
        .at(2, FaultKind::Panic)
        .at(5, FaultKind::Transient)
        .at(8, FaultKind::Stall(Duration::from_secs(6)));
    let (panics, stalls, transients) = schedule.counts();
    println!(
        "injecting {panics} panic(s), {stalls} stall(s), {transients} transient failure(s)"
    );

    let cfg = EvolutionConfig {
        population: 8,
        evaluations: 20,
        tournament: 2,
        crossover_rate: 0.5,
        seed,
        threads: 1,
        selection: SelectionMode::WeightedScalar,
        eval_timeout: Some(Duration::from_secs(2)),
        max_retries: 2,
        retry_backoff: Duration::ZERO,
        ..EvolutionConfig::small()
    };
    let out = Engine::new(
        Arc::new(FaultyEvaluator::new(Arc::new(inner), schedule)),
        SearchSpace::fpga_default().with_neurons(4, 32).with_layers(1, 2),
        ObjectiveSet::accuracy_and_throughput(),
        cfg,
    )
    .with_obs(obs)
    .run();

    println!(
        "\nfaulted run: {} models evaluated, {} retries, {} timeouts, {} worker respawns",
        out.stats.models_evaluated,
        out.stats.retry_count,
        out.stats.timeout_count,
        out.stats.respawn_count
    );
    assert_eq!(out.stats.models_evaluated, 20, "full budget despite faults");
    assert_eq!(out.stats.timeout_count, stalls);
    assert_eq!(out.stats.respawn_count, stalls);
    assert_eq!(out.stats.retry_count, panics + stalls + transients);
    let best = out.best().expect("faulted search still finds a winner");
    println!("best candidate: {}", best.genome);
}

fn main() {
    let (seed, trace_out, profile_out, faults) = args();
    // The tick clock (one fixed step per read) makes the profile JSON
    // byte-identical for two seeded single-thread runs; pass the
    // profiler to the engine through the observability handle.
    let profiler = profile_out
        .as_ref()
        .map(|_| Profiler::new(ClockKind::Ticks));
    let obs = if trace_out.is_some() || profiler.is_some() {
        let mut builder = Obs::builder();
        if let Some(path) = &trace_out {
            builder = builder.sink(
                JsonlSink::create(Level::Debug, std::path::Path::new(path))
                    .expect("create trace file"),
            );
        }
        if let Some(p) = &profiler {
            builder = builder.profiler(p.clone());
        }
        builder.build()
    } else {
        Obs::disabled()
    };
    // 1. A dataset. The flow's real entry point is a CSV export
    //    (`ecad_dataset::csv::read_dataset_file`); here we use the
    //    synthetic credit-g stand-in so the example is self-contained.
    let dataset = benchmarks::load(Benchmark::CreditG)
        .with_samples(600)
        .with_seed(42)
        .generate();
    println!(
        "dataset: {} ({} samples x {} features, {} classes)",
        dataset.name(),
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes()
    );

    if faults {
        run_faulted(&dataset, seed, obs.clone());
        if let Some(path) = trace_out {
            obs.flush();
            println!("event trace written to {path}");
        }
        if let (Some(path), Some(profiler)) = (profile_out, profiler) {
            let doc = profile_to_json(profiler.clock(), &profiler.report());
            std::fs::write(&path, doc.pretty() + "\n").expect("write profile");
            println!("profile written to {path}");
        }
        return;
    }

    // 2. A co-design search: candidates carry both network genes
    //    (layers / neurons / activation / bias) and hardware genes
    //    (systolic grid rows x cols x vector width, interleaving,
    //    batch). Fitness rewards accuracy first and throughput second.
    let result = Search::on_dataset(&dataset)
        .target(HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)))
        .objectives(ObjectiveSet::accuracy_and_throughput())
        .evaluations(60)
        .population(12)
        .seed(seed)
        .threads(1) // single worker => the event stream is deterministic
        .obs(obs.clone())
        .run();

    // 3. The winner.
    let best = result.best().expect("search evaluated candidates");
    println!("\nbest candidate: {}", best.genome);
    println!("  accuracy    : {:.4}", best.measurement.accuracy);
    println!(
        "  outputs/s   : {:.3e}",
        best.measurement.hw.outputs_per_s()
    );
    println!(
        "  efficiency  : {:.1}%",
        100.0 * best.measurement.hw.efficiency()
    );

    // 4. The accuracy-vs-throughput Pareto frontier (the paper's
    //    Table IV view): every row is an optimal trade-off.
    println!("\nPareto frontier (accuracy vs outputs/s):");
    for e in result.pareto_accuracy_throughput() {
        println!(
            "  {:.4}  {:>12.3e}  {}",
            e.measurement.accuracy,
            e.measurement.hw.outputs_per_s(),
            e.genome
        );
    }

    // 5. Run statistics (the paper's Table III shape).
    let stats = result.stats();
    println!(
        "\nevaluated {} unique models ({} cache hits, {} infeasible) in {:.1}s wall, {:.3}s avg/model",
        stats.models_evaluated,
        stats.cache_hits,
        stats.infeasible_count,
        stats.wall_time_s,
        stats.avg_eval_time_s
    );
    if let Some(path) = trace_out {
        obs.flush();
        println!("event trace written to {path}");
    }
    if let (Some(path), Some(profiler)) = (profile_out, profiler) {
        let doc = profile_to_json(profiler.clock(), &profiler.report());
        std::fs::write(&path, doc.pretty() + "\n").expect("write profile");
        println!("profile written to {path}");
    }
}
