//! Quickstart: evolve an MLP + FPGA grid for a tabular dataset.
//!
//! ```sh
//! cargo run --release --example quickstart [-- --seed N] [--trace-out OUT.jsonl]
//! ```
//!
//! This is the smallest end-to-end tour of the flow: generate (or load)
//! a dataset, run a joint accuracy × throughput search against an
//! Arria 10 model, and inspect the winner and the Pareto frontier.
//! Two runs with the same `--seed` print the same best genome and
//! frontier — every random draw goes through the in-repo `rt::rand`.
//! With `--trace-out` the engine also streams its structured events
//! (submissions, evaluations, cache hits, infeasibilities) to a JSONL
//! file that `ecad trace --file OUT.jsonl` can validate.

use ecad_repro::core::prelude::*;
use ecad_repro::dataset::benchmarks::{self, Benchmark};
use ecad_repro::hw::fpga::FpgaDevice;
use ecad_repro::rt::obs::{JsonlSink, Level, Obs};

/// Parses `--seed N` (default 7) and `--trace-out FILE` (default none)
/// from the argument list.
fn args() -> (u64, Option<String>) {
    let mut seed = 7;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed takes a value");
                seed = v.parse().expect("--seed takes an unsigned integer");
            }
            "--trace-out" => {
                trace_out = Some(args.next().expect("--trace-out takes a path"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    (seed, trace_out)
}

fn main() {
    let (seed, trace_out) = args();
    let obs = match &trace_out {
        Some(path) => Obs::builder()
            .sink(
                JsonlSink::create(Level::Debug, std::path::Path::new(path))
                    .expect("create trace file"),
            )
            .build(),
        None => Obs::disabled(),
    };
    // 1. A dataset. The flow's real entry point is a CSV export
    //    (`ecad_dataset::csv::read_dataset_file`); here we use the
    //    synthetic credit-g stand-in so the example is self-contained.
    let dataset = benchmarks::load(Benchmark::CreditG)
        .with_samples(600)
        .with_seed(42)
        .generate();
    println!(
        "dataset: {} ({} samples x {} features, {} classes)",
        dataset.name(),
        dataset.len(),
        dataset.n_features(),
        dataset.n_classes()
    );

    // 2. A co-design search: candidates carry both network genes
    //    (layers / neurons / activation / bias) and hardware genes
    //    (systolic grid rows x cols x vector width, interleaving,
    //    batch). Fitness rewards accuracy first and throughput second.
    let result = Search::on_dataset(&dataset)
        .target(HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)))
        .objectives(ObjectiveSet::accuracy_and_throughput())
        .evaluations(60)
        .population(12)
        .seed(seed)
        .threads(1) // single worker => the event stream is deterministic
        .obs(obs.clone())
        .run();

    // 3. The winner.
    let best = result.best().expect("search evaluated candidates");
    println!("\nbest candidate: {}", best.genome);
    println!("  accuracy    : {:.4}", best.measurement.accuracy);
    println!(
        "  outputs/s   : {:.3e}",
        best.measurement.hw.outputs_per_s()
    );
    println!(
        "  efficiency  : {:.1}%",
        100.0 * best.measurement.hw.efficiency()
    );

    // 4. The accuracy-vs-throughput Pareto frontier (the paper's
    //    Table IV view): every row is an optimal trade-off.
    println!("\nPareto frontier (accuracy vs outputs/s):");
    for e in result.pareto_accuracy_throughput() {
        println!(
            "  {:.4}  {:>12.3e}  {}",
            e.measurement.accuracy,
            e.measurement.hw.outputs_per_s(),
            e.genome
        );
    }

    // 5. Run statistics (the paper's Table III shape).
    let stats = result.stats();
    println!(
        "\nevaluated {} unique models ({} cache hits, {} infeasible) in {:.1}s wall, {:.3}s avg/model",
        stats.models_evaluated,
        stats.cache_hits,
        stats.infeasible_count,
        stats.wall_time_s,
        stats.avg_eval_time_s
    );
    if let Some(path) = trace_out {
        obs.flush();
        println!("event trace written to {path}");
    }
}
