//! Datacenter ads-ranking scenario: latency-bounded co-design.
//!
//! ```sh
//! cargo run --release --example ads_ranking
//! ```
//!
//! The paper's motivation (§I) is that MLPs dominate datacenter
//! inference — "Facebook cites the use of MLP for tasks such as
//! determining which ads to display". An ads ranker cares about a
//! latency budget per request *and* accuracy; this example shows how to
//! register a **custom fitness function** (the paper's §III-A
//! extensibility point) that rewards accuracy only while the candidate
//! meets a 50 µs latency SLO, and compares what the search picks on an
//! FPGA vs a GPU.

use ecad_repro::core::fitness::{FitnessRegistry, Objective, ObjectiveSet};
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::synth::SyntheticSpec;
use ecad_repro::hw::fpga::FpgaDevice;
use ecad_repro::hw::gpu::GpuDevice;

/// Latency SLO for one ranking request batch.
const SLO_SECONDS: f64 = 50e-6;

fn slo_objectives() -> ObjectiveSet {
    let mut registry = FitnessRegistry::with_builtins();
    // Accuracy, hard-gated on the latency SLO: a candidate over budget
    // is worth nothing to the ranker no matter how accurate.
    registry.register("accuracy_under_slo", |m| {
        if m.hw.latency_s() <= SLO_SECONDS {
            m.accuracy as f64
        } else {
            0.0
        }
    });
    ObjectiveSet::with_registry(
        vec![
            Objective::maximize("accuracy_under_slo"),
            Objective::maximize("log_throughput").with_weight(0.02),
        ],
        registry,
    )
}

fn main() {
    // An ads-ranking-shaped dataset: wide sparse-ish tabular features,
    // binary click/no-click labels, noisy ground truth.
    let dataset = SyntheticSpec::new("ads-ranking", 1200, 120, 2)
        .with_informative(24)
        .with_class_sep(2.2)
        .with_nonlinearity(1.0)
        .with_label_noise(0.12)
        .with_seed(2024)
        .generate();
    println!(
        "ads-ranking dataset: {} impressions x {} features (latency SLO {:.0} us)\n",
        dataset.len(),
        dataset.n_features(),
        SLO_SECONDS * 1e6
    );

    for (label, target) in [
        (
            "Arria 10 FPGA",
            HwTarget::Fpga(FpgaDevice::arria10_gx1150(2)),
        ),
        ("Titan X GPU", HwTarget::Gpu(GpuDevice::titan_x())),
    ] {
        let result = Search::on_dataset(&dataset)
            .target(target)
            .objectives(slo_objectives())
            .evaluations(50)
            .population(12)
            .seed(99)
            .run();

        // Best candidate that actually meets the SLO.
        let winner = result
            .trace()
            .iter()
            .filter(|e| e.measurement.hw.is_feasible())
            .filter(|e| e.measurement.hw.latency_s() <= SLO_SECONDS)
            .max_by(|a, b| {
                a.measurement
                    .accuracy
                    .partial_cmp(&b.measurement.accuracy)
                    .unwrap()
            });
        println!("{label}:");
        match winner {
            Some(e) => {
                println!("  best under SLO : {}", e.genome);
                println!("  accuracy       : {:.4}", e.measurement.accuracy);
                println!(
                    "  latency        : {:.1} us",
                    e.measurement.hw.latency_s() * 1e6
                );
                println!(
                    "  outputs/s      : {:.3e}",
                    e.measurement.hw.outputs_per_s()
                );
            }
            None => {
                let met = 0;
                println!("  no candidate met the {SLO_SECONDS:.0e}s SLO ({met} qualifying)");
            }
        }
        let under = result
            .trace()
            .iter()
            .filter(|e| e.measurement.hw.latency_s() <= SLO_SECONDS)
            .count();
        println!(
            "  {under}/{} evaluated candidates met the SLO\n",
            result.trace().len()
        );
    }

    println!(
        "Reading: the FPGA's small-batch systolic mapping holds latency down, so far\n\
         more of its design space qualifies — the co-design argument for MLP serving."
    );
}
