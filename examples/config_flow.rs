//! The paper's end-to-end flow (§III, Fig. 1): a CSV dataset export
//! plus a configuration file drive the whole co-design search.
//!
//! ```sh
//! cargo run --release --example config_flow
//! ```
//!
//! This example writes both artifacts to a temp directory the way a
//! problem owner would hand them to the flow, then runs ECAD from
//! nothing but those two files.

use ecad_repro::core::config::FlowConfig;
use ecad_repro::core::prelude::*;
use ecad_repro::dataset::{csv, synth::SyntheticSpec};

const CONFIG: &str = "
; ECAD flow configuration (see ecad_core::config for the schema)
[nna]
min_layers = 1
max_layers = 3
min_neurons = 4
max_neurons = 96

[hardware]
target = fpga
device = arria10
ddr_banks = 2

[optimization]
objectives = accuracy, log_throughput
weights = 1.0, 0.02
evaluations = 40
population = 10
seed = 21
epochs = 12
selection = nsga2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The problem owner exports their table as CSV (here: a synthetic
    //    sensor-fault dataset standing in for "a general
    //    industrial/research problem that sufficient data exists for").
    let dir = std::env::temp_dir().join("ecad_config_flow");
    std::fs::create_dir_all(&dir)?;
    let data_path = dir.join("sensor_faults.csv");
    let config_path = dir.join("ecad.ini");
    let ds = SyntheticSpec::new("sensor-faults", 900, 64, 3)
        .with_informative(12)
        .with_class_sep(3.0)
        .with_nonlinearity(1.2)
        .with_label_noise(0.05)
        .with_seed(77)
        .generate();
    csv::write_dataset_file(&ds, &data_path)?;
    std::fs::write(&config_path, CONFIG)?;
    println!(
        "wrote {} and {}",
        data_path.display(),
        config_path.display()
    );

    // 2. The flow ingests both files.
    let dataset = csv::read_dataset_file(&data_path)?;
    let config = FlowConfig::from_ini(&std::fs::read_to_string(&config_path)?)?;
    println!(
        "loaded {} ({} x {}), target {:?}, {} evaluations, NSGA-II survivor selection",
        dataset.name(),
        dataset.len(),
        dataset.n_features(),
        config.target.device_name(),
        config.evolution.evaluations
    );

    // 3. Run and report.
    let result = Search::from_config(&config, &dataset).run();
    println!("\nPareto frontier (accuracy vs outputs/s):");
    for e in result.pareto_accuracy_throughput() {
        println!(
            "  {:.4}  {:>12.3e}  {}",
            e.measurement.accuracy,
            e.measurement.hw.outputs_per_s(),
            e.genome
        );
    }
    let stats = result.stats();
    println!(
        "\n{} models evaluated, {} cache hits, {:.1}s wall",
        stats.models_evaluated, stats.cache_hits, stats.wall_time_s
    );
    Ok(())
}
