//! Memory-bandwidth design study — Figure 3 as a walkthrough, plus the
//! physical worker's synthesis view.
//!
//! ```sh
//! cargo run --release --example bandwidth_study
//! ```
//!
//! The paper found most evolved designs bandwidth-constrained on the
//! single-DDR-bank Arria 10 dev kit (§IV-C). This example takes one
//! MLP, sweeps systolic-grid configurations across 1 / 2 / 4 DDR banks,
//! and shows (a) throughput scaling ~linearly with bandwidth while
//! efficiency stays flat, and (b) what the physical worker estimates
//! for resources, Fmax and power on the interesting configs.

use ecad_repro::hw::fpga::{FpgaDevice, FpgaModel, GridConfig, PhysicalModel};
use ecad_repro::mlp::{Activation, MlpTopology};

fn main() {
    // A credit-g-shaped MLP: the dataset family where the paper ran
    // this study.
    let topology = MlpTopology::builder(20, 2)
        .hidden(96, Activation::Relu, true)
        .hidden(48, Activation::Relu, true)
        .build();
    let batch = 64usize;
    let shapes = topology.gemm_shapes(batch);
    println!("MLP {} (batch {batch})\n", topology.describe());

    let grids = [
        GridConfig::new(4, 4, 2, 2, 4).expect("valid grid"),
        GridConfig::new(8, 8, 2, 2, 4).expect("valid grid"),
        GridConfig::new(8, 8, 4, 4, 8).expect("valid grid"),
        GridConfig::new(16, 8, 4, 4, 8).expect("valid grid"),
        GridConfig::new(16, 16, 4, 4, 4).expect("valid grid"),
    ];

    println!(
        "{:<18} {:>6} {:>14} {:>14} {:>10} {:>9}",
        "grid", "banks", "outputs/s", "effective GF/s", "efficiency", "BW-bound"
    );
    for grid in &grids {
        for banks in [1u32, 2, 4] {
            let device = FpgaDevice::arria10_gx1150(banks);
            let model = FpgaModel::new(device);
            match model.evaluate(grid, &shapes) {
                Ok(perf) => println!(
                    "{:<18} {:>6} {:>14.3e} {:>14.1} {:>9.1}% {:>9}",
                    grid.describe(),
                    banks,
                    perf.outputs_per_s,
                    perf.effective_gflops,
                    100.0 * perf.efficiency,
                    if perf.bandwidth_bound { "yes" } else { "no" }
                ),
                Err(e) => println!("{:<18} {:>6}  infeasible: {e}", grid.describe(), banks),
            }
        }
        println!();
    }

    // The physical worker's view of the same configurations.
    println!("physical worker (Arria 10): resources, Fmax, power");
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "grid", "DSPs", "M20Ks", "ALM %", "Fmax MHz", "power W"
    );
    let physical = PhysicalModel::new(FpgaDevice::arria10_gx1150(1));
    for grid in &grids {
        match physical.report(grid) {
            Ok(rep) => println!(
                "{:<18} {:>8} {:>8} {:>7.1}% {:>10.0} {:>8.1}",
                grid.describe(),
                rep.resources.dsps,
                rep.resources.m20ks,
                100.0 * rep.resources.alm_util,
                rep.fmax_mhz,
                rep.power_w
            ),
            Err(e) => println!("{:<18}  infeasible: {e}", grid.describe()),
        }
    }

    println!(
        "\nReading: bandwidth-bound grids gain throughput almost linearly with DDR\n\
         banks while efficiency barely moves — exactly the paper's Fig. 3 finding.\n\
         Power stays in the paper's 22.5–32 W chip-power envelope across configs."
    );
}
