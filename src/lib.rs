//! # ecad-repro
//!
//! Umbrella crate for the ECAD reproduction workspace: re-exports every
//! member crate under one name so the examples and integration tests
//! (and downstream users who want the whole stack) need a single
//! dependency.
//!
//! See the repository `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use ecad_repro::dataset::benchmarks::{self, Benchmark};
//!
//! let ds = benchmarks::load(Benchmark::Har).with_samples(120).generate();
//! assert_eq!(ds.n_classes(), 6);
//! ```

#![warn(missing_docs)]

pub use ecad_baselines as baselines;
pub use ecad_bench as bench;
pub use ecad_core as core;
pub use ecad_dataset as dataset;
pub use ecad_hw as hw;
pub use ecad_mlp as mlp;
pub use ecad_tensor as tensor;
pub use rt;
