//! Per-epoch evolution analytics: population snapshots, Pareto-archive
//! hypervolume, genome diversity, operator success rates, and a stall
//! detector — the "search observatory" layer.
//!
//! The paper's value claim is the *trajectory* of the search: Pareto
//! frontiers tightening over generations (§III-B, Figs. 4–7). The raw
//! per-evaluation events from `rt::obs` cannot answer "is this run
//! converging, stalling, or collapsing in diversity?" without grepping
//! JSONL by hand, so every N unique evaluations (an **epoch**; the
//! engine is steady-state, so N defaults to the population size) the
//! engine asks an [`EpochTracker`] for a [`PopulationSnapshot`]:
//!
//! * fitness quantiles over the current population;
//! * **hypervolume** of a grow-only Pareto archive of all feasible
//!   oriented objective vectors, against a fixed reference point (see
//!   [`squash`] for the bounding convention) — the scalar convergence
//!   measure of multi-objective search;
//! * **genome diversity**: mean per-gene Shannon entropy and mean
//!   pairwise normalized Hamming distance over the population's gene
//!   tokens;
//! * dedup-cache hit rate and per-operator admission rates (which of
//!   seed/sample/crossover/mutate offspring actually entered the
//!   population);
//! * a **stall** verdict: hypervolume *and* best fitness flat for
//!   `stall_window` consecutive epochs.
//!
//! Snapshots are emitted as structured `epoch` events and metric
//! gauges; [`StatusCell`] + [`observatory`] expose the latest one over
//! HTTP for live scraping. Everything here is deterministic: no clocks,
//! no hash-map iteration orders, no RNG — a `--serve`d run's trace is
//! byte-identical to an unserved one, and a resumed run replays to the
//! same epoch values.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use rt::json::{Json, ToJson};
use rt::obs::Obs;

use crate::engine::Evaluated;
use crate::genome::{CandidateGenome, HwGenome};
use crate::pareto::dominates;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Epoch analytics knobs, carried inside
/// [`crate::engine::EvolutionConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticsConfig {
    /// Unique evaluations per epoch. `0` (the default) means "use the
    /// population size" — one epoch per population's worth of steady-
    /// state replacements, the closest analogue of a generation.
    pub epoch_size: usize,
    /// Number of epochs both hypervolume and best fitness must stay
    /// flat (within [`AnalyticsConfig::stall_epsilon`]) before the
    /// stall detector fires.
    pub stall_window: usize,
    /// Flatness threshold for the stall detector.
    pub stall_epsilon: f64,
}

impl Default for AnalyticsConfig {
    fn default() -> Self {
        Self {
            epoch_size: 0,
            stall_window: 5,
            stall_epsilon: 1e-9,
        }
    }
}

// ---------------------------------------------------------------------------
// Operator provenance
// ---------------------------------------------------------------------------

/// How a candidate was produced. The engine stamps every dispatch with
/// its operator so the per-epoch report can say *which* operators are
/// still producing offspring good enough to enter the population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperatorKind {
    /// Initial-population seed.
    Seed,
    /// Fresh random sample (population still too small to breed).
    Sample,
    /// Two-parent crossover (plus mutation).
    Crossover,
    /// Mutated copy of one parent.
    Mutate,
}

impl OperatorKind {
    /// All operators, in stable report order.
    pub const ALL: [OperatorKind; 4] = [
        OperatorKind::Seed,
        OperatorKind::Sample,
        OperatorKind::Crossover,
        OperatorKind::Mutate,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Seed => "seed",
            OperatorKind::Sample => "sample",
            OperatorKind::Crossover => "crossover",
            OperatorKind::Mutate => "mutate",
        }
    }

    /// Parses a name produced by [`OperatorKind::name`].
    pub fn parse(text: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|op| op.name() == text)
    }

    fn index(self) -> usize {
        match self {
            OperatorKind::Seed => 0,
            OperatorKind::Sample => 1,
            OperatorKind::Crossover => 2,
            OperatorKind::Mutate => 3,
        }
    }
}

/// Per-operator `(offspring produced, offspring that entered the
/// population)` counters, indexed by [`OperatorKind::ALL`] order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    counts: [(u64, u64); 4],
}

impl OperatorStats {
    /// Records one admitted candidate: `entered` says whether it
    /// displaced (or filled) a population slot.
    pub fn record(&mut self, op: OperatorKind, entered: bool) {
        let slot = &mut self.counts[op.index()];
        slot.0 += 1;
        if entered {
            slot.1 += 1;
        }
    }

    /// Raw counters in [`OperatorKind::ALL`] order, for checkpointing.
    pub fn totals(&self) -> [(u64, u64); 4] {
        self.counts
    }

    /// Restores counters saved by [`OperatorStats::totals`].
    pub fn set_totals(&mut self, totals: [(u64, u64); 4]) {
        self.counts = totals;
    }

    /// Offspring produced by `op`.
    pub fn total(&self, op: OperatorKind) -> u64 {
        self.counts[op.index()].0
    }

    /// Offspring by `op` that entered the population.
    pub fn entered(&self, op: OperatorKind) -> u64 {
        self.counts[op.index()].1
    }

    /// Admission rate for `op` (`0.0` before it produced anything).
    pub fn rate(&self, op: OperatorKind) -> f64 {
        let (total, entered) = self.counts[op.index()];
        if total == 0 {
            0.0
        } else {
            entered as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Hypervolume
// ---------------------------------------------------------------------------

/// Squashes one oriented objective value into `(0, 1)` with the
/// monotone map `atan(v)/π + 0.5`. This fixes the hypervolume reference
/// point once and for all: the archive lives in the unit box with the
/// **origin** as reference, regardless of objective scales, so volumes
/// from different runs of the same objective set are comparable and the
/// measure never needs a per-problem nadir point. `-inf` maps to 0,
/// `+inf` to 1, `NaN` to 0; dominance is preserved because the map is
/// strictly increasing on the reals.
pub fn squash(v: f64) -> f64 {
    if v.is_nan() {
        return 0.0;
    }
    if v == f64::INFINITY {
        return 1.0;
    }
    if v == f64::NEG_INFINITY {
        return 0.0;
    }
    v.atan() / std::f64::consts::PI + 0.5
}

/// A grow-only archive of mutually non-dominated points in the unit
/// box. Inserting a point removes the members it dominates and rejects
/// it if an existing member dominates (or equals) it, so the dominated
/// region — and therefore [`ParetoArchive::hypervolume`] — can only
/// grow: the report's hypervolume column is monotone non-decreasing by
/// construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParetoArchive {
    points: Vec<Vec<f64>>,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of archived (non-dominated) points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the archive is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Inserts a candidate's *oriented* objective vector (larger is
    /// better; see
    /// [`crate::fitness::ObjectiveSet::oriented_values`]). Returns
    /// whether the point joined the archive.
    pub fn insert(&mut self, oriented: &[f64]) -> bool {
        let p: Vec<f64> = oriented.iter().map(|&v| squash(v)).collect();
        if self
            .points
            .iter()
            .any(|q| q == &p || dominates(q, &p))
        {
            return false;
        }
        self.points.retain(|q| !dominates(&p, q));
        self.points.push(p);
        true
    }

    /// Exact hypervolume of the archive's dominated region against the
    /// origin of the unit box, by recursive slicing on the last
    /// objective. Exponential in dimensions in the worst case, but the
    /// objective sets here have 1–3 dimensions and archives stay small.
    pub fn hypervolume(&self) -> f64 {
        hypervolume_of(&self.points)
    }
}

fn hypervolume_of(points: &[Vec<f64>]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let d = points[0].len();
    if d == 1 {
        return points.iter().map(|p| p[0]).fold(0.0, f64::max);
    }
    // Slice along the last dimension: between consecutive heights, the
    // cross-section is the (d-1)-volume of the points at or above the
    // slab, projected down.
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[b][d - 1]
            .partial_cmp(&points[a][d - 1])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut volume = 0.0;
    for (i, &pi) in order.iter().enumerate() {
        let top = points[pi][d - 1];
        let bottom = order
            .get(i + 1)
            .map_or(0.0, |&next| points[next][d - 1]);
        let slab = top - bottom;
        if slab <= 0.0 {
            continue;
        }
        let projected: Vec<Vec<f64>> = order[..=i]
            .iter()
            .map(|&j| points[j][..d - 1].to_vec())
            .collect();
        volume += slab * hypervolume_of(&projected);
    }
    volume
}

// ---------------------------------------------------------------------------
// Diversity
// ---------------------------------------------------------------------------

/// Population diversity over gene tokens.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Diversity {
    /// Mean per-gene Shannon entropy, in bits.
    pub gene_entropy_bits: f64,
    /// Mean pairwise normalized Hamming distance in `[0, 1]`.
    pub mean_distance: f64,
}

/// A genome flattened into comparable gene tokens: per layer (padded to
/// the population's deepest network with a sentinel) the neuron count,
/// an activation tag, and the bias bit; then seven hardware tokens
/// (family tag, grid, interleave, vector width, batch — zeros for the
/// knob-free GPU positions).
fn gene_tokens(g: &CandidateGenome, max_layers: usize) -> Vec<u64> {
    const ABSENT: u64 = u64::MAX;
    let mut t = Vec::with_capacity(max_layers * 3 + 7);
    for i in 0..max_layers {
        match g.nna.layers.get(i) {
            Some(l) => {
                t.push(l.neurons as u64);
                t.push(l.activation.name().as_bytes()[0] as u64);
                t.push(u64::from(l.bias));
            }
            None => t.extend([ABSENT; 3]),
        }
    }
    match g.hw {
        HwGenome::FpgaGrid {
            rows,
            cols,
            interleave_m,
            interleave_n,
            vec,
            batch,
        } => t.extend([
            1,
            u64::from(rows),
            u64::from(cols),
            u64::from(interleave_m),
            u64::from(interleave_n),
            u64::from(vec),
            u64::from(batch),
        ]),
        HwGenome::GpuBatch { batch } => t.extend([0, 0, 0, 0, 0, 0, u64::from(batch)]),
    }
    t
}

/// Computes [`Diversity`] for a set of genomes.
///
/// Determinism note: entropy terms are summed over *sorted* token runs
/// (never a hash-map iteration), so the float result is identical
/// across processes — a resumed run reports bit-identical diversity.
pub fn population_diversity(genomes: &[&CandidateGenome]) -> Diversity {
    if genomes.is_empty() {
        return Diversity::default();
    }
    let max_layers = genomes
        .iter()
        .map(|g| g.nna.layers.len())
        .max()
        .unwrap_or(0);
    let vectors: Vec<Vec<u64>> = genomes
        .iter()
        .map(|g| gene_tokens(g, max_layers))
        .collect();
    let genes = vectors[0].len();
    let n = vectors.len();

    let mut entropy_sum = 0.0;
    for gene in 0..genes {
        let mut tokens: Vec<u64> = vectors.iter().map(|v| v[gene]).collect();
        tokens.sort_unstable();
        let mut h = 0.0;
        let mut run_start = 0;
        for i in 1..=n {
            if i == n || tokens[i] != tokens[run_start] {
                let p = (i - run_start) as f64 / n as f64;
                h -= p * p.log2();
                run_start = i;
            }
        }
        entropy_sum += h;
    }

    let mut distance_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let differing = vectors[i]
                .iter()
                .zip(&vectors[j])
                .filter(|(a, b)| a != b)
                .count();
            distance_sum += differing as f64 / genes as f64;
            pairs += 1;
        }
    }

    Diversity {
        gene_entropy_bits: entropy_sum / genes as f64,
        mean_distance: if pairs == 0 {
            0.0
        } else {
            distance_sum / pairs as f64
        },
    }
}

// ---------------------------------------------------------------------------
// Fitness quantiles
// ---------------------------------------------------------------------------

/// Quantile summary of the population's finite fitness values.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitnessSummary {
    /// How many members carry a finite fitness (infeasible candidates
    /// sit at `-inf` and are excluded from the quantiles).
    pub finite: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// Third quartile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Summarizes a fitness slice; non-finite entries are dropped and all
/// fields are zero when nothing finite remains.
pub fn fitness_summary(fitnesses: &[f64]) -> FitnessSummary {
    let mut v: Vec<f64> = fitnesses.iter().copied().filter(|f| f.is_finite()).collect();
    if v.is_empty() {
        return FitnessSummary::default();
    }
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let q = |p: f64| -> f64 {
        // Linear interpolation between closest ranks.
        let pos = p * (v.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        v[lo] + (v[hi] - v[lo]) * (pos - lo as f64)
    };
    FitnessSummary {
        finite: v.len(),
        min: v[0],
        p25: q(0.25),
        p50: q(0.50),
        p75: q(0.75),
        max: v[v.len() - 1],
        mean: v.iter().sum::<f64>() / v.len() as f64,
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One epoch's analytics, the payload of the `epoch` trace event and
/// the `/status` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSnapshot {
    /// Completed epoch number (1-based).
    pub epoch: usize,
    /// Unique evaluations completed so far.
    pub evaluations: usize,
    /// Current population size.
    pub population: usize,
    /// Whether any feasible candidate has been seen yet.
    pub has_best: bool,
    /// Best scalar fitness so far (`0.0` until `has_best`; the raw
    /// `-inf` placeholder would not survive JSON).
    pub best_fitness: f64,
    /// Fitness quantiles over the current population.
    pub fitness: FitnessSummary,
    /// Pareto-archive hypervolume (monotone non-decreasing).
    pub hypervolume: f64,
    /// Pareto-archive size.
    pub archive_size: usize,
    /// Mean per-gene entropy of the population, bits.
    pub gene_entropy_bits: f64,
    /// Mean pairwise normalized Hamming distance of the population.
    pub mean_distance: f64,
    /// Dedup-cache hits / (hits + unique evaluations).
    pub cache_hit_rate: f64,
    /// Per-operator admission counters.
    pub operators: OperatorStats,
    /// Whether the stall detector currently considers the run flat.
    pub stalled: bool,
}

impl ToJson for PopulationSnapshot {
    fn to_json(&self) -> Json {
        let mut ops = Json::object();
        for op in OperatorKind::ALL {
            ops = ops.insert(
                op.name(),
                Json::object()
                    .insert("total", self.operators.total(op))
                    .insert("entered", self.operators.entered(op))
                    .insert("rate", self.operators.rate(op)),
            );
        }
        Json::object()
            .insert("epoch", self.epoch)
            .insert("evaluations", self.evaluations)
            .insert("population", self.population)
            .insert("has_best", self.has_best)
            .insert("best_fitness", self.best_fitness)
            .insert(
                "fitness",
                Json::object()
                    .insert("finite", self.fitness.finite)
                    .insert("min", self.fitness.min)
                    .insert("p25", self.fitness.p25)
                    .insert("p50", self.fitness.p50)
                    .insert("p75", self.fitness.p75)
                    .insert("max", self.fitness.max)
                    .insert("mean", self.fitness.mean),
            )
            .insert("hypervolume", self.hypervolume)
            .insert("archive_size", self.archive_size)
            .insert("gene_entropy_bits", self.gene_entropy_bits)
            .insert("mean_distance", self.mean_distance)
            .insert("cache_hit_rate", self.cache_hit_rate)
            .insert("operators", ops)
            .insert("stalled", self.stalled)
    }
}

// ---------------------------------------------------------------------------
// The tracker
// ---------------------------------------------------------------------------

/// Accumulates per-evaluation observations and produces a
/// [`PopulationSnapshot`] at every epoch boundary, including the stall
/// verdict. The engine owns one per run; on resume it is rebuilt by
/// [`EpochTracker::replay`]ing the restored trace so a continued run
/// reports bit-identical epochs.
#[derive(Debug, Clone)]
pub struct EpochTracker {
    epoch_size: usize,
    stall_window: usize,
    stall_epsilon: f64,
    archive: ParetoArchive,
    best: f64,
    hv_reported: f64,
    /// `(hypervolume, best)` per completed epoch.
    history: Vec<(f64, f64)>,
    stalled: bool,
    ops: OperatorStats,
}

impl EpochTracker {
    /// A tracker for a run with the given population size (the default
    /// epoch length when the config leaves `epoch_size` at 0).
    pub fn new(cfg: AnalyticsConfig, population: usize) -> Self {
        let epoch_size = if cfg.epoch_size == 0 {
            population.max(1)
        } else {
            cfg.epoch_size
        };
        Self {
            epoch_size,
            stall_window: cfg.stall_window.max(1),
            stall_epsilon: cfg.stall_epsilon,
            archive: ParetoArchive::new(),
            best: f64::NEG_INFINITY,
            hv_reported: 0.0,
            history: Vec::new(),
            stalled: false,
            ops: OperatorStats::default(),
        }
    }

    /// Evaluations per epoch after defaulting.
    pub fn epoch_size(&self) -> usize {
        self.epoch_size
    }

    /// Feeds one finalized unique evaluation. `oriented` is the
    /// candidate's oriented objective vector (ignored — along with the
    /// archive/best update — when the fitness is not finite, i.e. the
    /// candidate is infeasible).
    pub fn observe(&mut self, oriented: &[f64], fitness: f64) {
        if !fitness.is_finite() {
            return;
        }
        if fitness > self.best {
            self.best = fitness;
        }
        self.archive.insert(oriented);
    }

    /// Records operator provenance for one admitted candidate.
    pub fn record_op(&mut self, op: OperatorKind, entered: bool) {
        self.ops.record(op, entered);
    }

    /// Raw operator counters, for checkpointing.
    pub fn operator_totals(&self) -> [(u64, u64); 4] {
        self.ops.totals()
    }

    /// Restores operator counters from a checkpoint (call before
    /// [`EpochTracker::replay`]).
    pub fn set_operator_totals(&mut self, totals: [(u64, u64); 4]) {
        self.ops.set_totals(totals);
    }

    /// Whether `trace_len` unique evaluations complete an epoch.
    pub fn should_snapshot(&self, trace_len: usize) -> bool {
        trace_len > 0 && trace_len % self.epoch_size == 0
    }

    /// Rebuilds archive/best/epoch history from a restored trace by
    /// replaying it in epoch-sized chunks — the silent counterpart of
    /// the live `observe`/`snapshot` cycle, so a resumed run's next
    /// epoch event is bit-identical to the uninterrupted run's.
    pub fn replay<I>(&mut self, evals: I)
    where
        I: IntoIterator<Item = (Vec<f64>, f64)>,
    {
        for (i, (oriented, fitness)) in evals.into_iter().enumerate() {
            self.observe(&oriented, fitness);
            if (i + 1) % self.epoch_size == 0 {
                self.push_epoch();
            }
        }
    }

    /// Records the epoch boundary into the history and refreshes the
    /// stall state. Returns the values recorded.
    fn push_epoch(&mut self) -> (f64, f64) {
        let hv = self.archive.hypervolume();
        // The archive's dominated region only grows, so this max is a
        // mathematical no-op; it additionally shields the *reported*
        // column from any floating-point wobble in the recomputation.
        self.hv_reported = self.hv_reported.max(hv);
        self.history.push((self.hv_reported, self.best));
        self.stalled = self.is_stalled();
        (self.hv_reported, self.best)
    }

    /// Flat iff both hypervolume and best fitness moved less than
    /// epsilon over the last `stall_window` epochs. Before the first
    /// feasible candidate `best` is `-inf` on both sides and the
    /// difference is NaN, which never satisfies the comparison — the
    /// detector cannot fire on an all-infeasible prefix.
    fn is_stalled(&self) -> bool {
        if self.history.len() <= self.stall_window {
            return false;
        }
        let (hv_now, best_now) = self.history[self.history.len() - 1];
        let (hv_then, best_then) = self.history[self.history.len() - 1 - self.stall_window];
        (hv_now - hv_then).abs() <= self.stall_epsilon
            && (best_now - best_then).abs() <= self.stall_epsilon
    }

    /// Produces the snapshot for the epoch ending at `trace_len`
    /// evaluations, advancing the history and stall state. The second
    /// return is true exactly when the stall detector fired on this
    /// epoch (a rising edge — already-stalled epochs do not re-fire).
    pub fn snapshot(
        &mut self,
        trace_len: usize,
        population: &[Evaluated],
        cache_hits: usize,
    ) -> (PopulationSnapshot, bool) {
        let was_stalled = self.stalled;
        let (hv, best) = self.push_epoch();
        let fired = self.stalled && !was_stalled;

        let fitnesses: Vec<f64> = population.iter().map(|e| e.fitness).collect();
        let genomes: Vec<&CandidateGenome> = population.iter().map(|e| &e.genome).collect();
        let diversity = population_diversity(&genomes);
        let denominator = cache_hits + trace_len;
        let snapshot = PopulationSnapshot {
            epoch: trace_len / self.epoch_size,
            evaluations: trace_len,
            population: population.len(),
            has_best: best.is_finite(),
            best_fitness: if best.is_finite() { best } else { 0.0 },
            fitness: fitness_summary(&fitnesses),
            hypervolume: hv,
            archive_size: self.archive.len(),
            gene_entropy_bits: diversity.gene_entropy_bits,
            mean_distance: diversity.mean_distance,
            cache_hit_rate: if denominator == 0 {
                0.0
            } else {
                cache_hits as f64 / denominator as f64
            },
            operators: self.ops,
            stalled: self.stalled,
        };
        (snapshot, fired)
    }
}

// ---------------------------------------------------------------------------
// Live status
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct StatusInner {
    started: Option<Instant>,
    done: bool,
    snapshot: Option<PopulationSnapshot>,
    models_evaluated: usize,
    cache_hits: usize,
    infeasible: usize,
    retries: usize,
    timeouts: usize,
    respawns: usize,
    last_checkpoint: Option<Instant>,
}

/// Shared mutable cell the engine writes and the HTTP `/status` route
/// reads: the latest epoch snapshot, engine counters, uptime, and
/// checkpoint age. Cloning shares the cell. The engine only *writes*
/// under a short lock; readers never touch engine state, so serving
/// does not perturb the search.
#[derive(Debug, Clone, Default)]
pub struct StatusCell {
    inner: Arc<Mutex<StatusInner>>,
}

impl StatusCell {
    /// A fresh, empty cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the run as started (uptime measures from here).
    pub fn note_started(&self) {
        let mut s = self.inner.lock().expect("status cell");
        s.started = Some(Instant::now());
        s.done = false;
    }

    /// Publishes the latest epoch snapshot.
    pub fn note_snapshot(&self, snapshot: PopulationSnapshot) {
        self.inner.lock().expect("status cell").snapshot = Some(snapshot);
    }

    /// Publishes the engine's running counters.
    pub fn note_counters(
        &self,
        models_evaluated: usize,
        cache_hits: usize,
        infeasible: usize,
        retries: usize,
        timeouts: usize,
        respawns: usize,
    ) {
        let mut s = self.inner.lock().expect("status cell");
        s.models_evaluated = models_evaluated;
        s.cache_hits = cache_hits;
        s.infeasible = infeasible;
        s.retries = retries;
        s.timeouts = timeouts;
        s.respawns = respawns;
    }

    /// Records that a checkpoint was just written.
    pub fn note_checkpoint(&self) {
        self.inner.lock().expect("status cell").last_checkpoint = Some(Instant::now());
    }

    /// Marks the run as finished.
    pub fn note_done(&self) {
        self.inner.lock().expect("status cell").done = true;
    }

    /// The `/status` JSON document.
    pub fn to_json(&self) -> Json {
        let s = self.inner.lock().expect("status cell");
        let now = Instant::now();
        Json::object()
            .insert("running", s.started.is_some() && !s.done)
            .insert("done", s.done)
            .insert(
                "uptime_s",
                match s.started {
                    Some(t) => Json::Number(now.duration_since(t).as_secs_f64()),
                    None => Json::Null,
                },
            )
            .insert(
                "checkpoint_age_s",
                match s.last_checkpoint {
                    Some(t) => Json::Number(now.duration_since(t).as_secs_f64()),
                    None => Json::Null,
                },
            )
            .insert("models_evaluated", s.models_evaluated)
            .insert("cache_hits", s.cache_hits)
            .insert("infeasible", s.infeasible)
            .insert("retries", s.retries)
            .insert("timeouts", s.timeouts)
            .insert("respawns", s.respawns)
            .insert(
                "epoch",
                match &s.snapshot {
                    Some(snap) => snap.to_json(),
                    None => Json::Null,
                },
            )
    }
}

/// Builds the observatory route table over an [`Obs`] handle and a
/// [`StatusCell`]: `GET /metrics` (Prometheus text exposition of the
/// metrics registry), `GET /status` (JSON), `GET /healthz`. Bind the
/// returned server with [`rt::http::Server::bind`].
pub fn observatory(obs: &Obs, status: &StatusCell) -> rt::http::Server {
    let metrics_obs = obs.clone();
    let status_cell = status.clone();
    rt::http::Server::new()
        .route("/metrics", move || {
            rt::http::Response::ok(
                "text/plain; version=0.0.4",
                rt::http::prometheus_text(&metrics_obs.snapshot()),
            )
        })
        .route("/status", move || {
            rt::http::Response::ok("application/json", status_cell.to_json().to_string())
        })
        .route("/healthz", || rt::http::Response::ok("text/plain", "ok\n".to_string()))
}

/// The `/workers` JSON document: one entry per remote worker with its
/// lifecycle state, freshness, the counters absorbed from its latest
/// `Stats` frame, and the coordinator-side exchange-latency quantiles
/// from that worker's labeled histogram. Reads only side-channel
/// registries (health cells, metrics), so scraping never perturbs a
/// seeded run.
pub fn workers_json(obs: &Obs, health: &crate::cluster::ClusterHealth) -> Json {
    let workers: Vec<Json> = health
        .snapshot()
        .into_iter()
        .map(|w| {
            let lat = obs.histogram_with("cluster.worker_eval_s", &[("worker", w.addr.as_str())]);
            Json::object()
                .insert("addr", w.addr.as_str())
                .insert("state", w.state.as_str())
                .insert(
                    "last_seen_s",
                    match w.last_seen_s {
                        Some(s) => Json::Number(s),
                        None => Json::Null,
                    },
                )
                .insert("jobs", w.jobs)
                .insert("train_s", w.train_s)
                .insert("hw_s", w.hw_s)
                .insert("panics", w.panics)
                .insert("migrants", w.migrants)
                .insert("eval_count", lat.count())
                .insert("eval_p50_s", lat.quantile(0.5))
                .insert("eval_p95_s", lat.quantile(0.95))
        })
        .collect();
    Json::object()
        .insert("degraded", health.degraded())
        .insert("workers", workers)
}

/// [`observatory`] plus the cluster route table: `GET /workers` serves
/// per-worker lifecycle state and telemetry alongside the standard
/// `/metrics`, `/status`, and `/healthz`.
pub fn cluster_observatory(
    obs: &Obs,
    status: &StatusCell,
    health: Arc<crate::cluster::ClusterHealth>,
) -> rt::http::Server {
    let workers_obs = obs.clone();
    observatory(obs, status).route("/workers", move || {
        rt::http::Response::ok(
            "application/json",
            workers_json(&workers_obs, &health).to_string(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{LayerGene, NnaGenome};
    use crate::measurement::{HwMetrics, Measurement};
    use ecad_mlp::Activation;

    fn genome(neurons: usize, batch: u32) -> CandidateGenome {
        CandidateGenome {
            nna: NnaGenome {
                layers: vec![LayerGene {
                    neurons,
                    activation: Activation::Relu,
                    bias: true,
                }],
            },
            hw: HwGenome::GpuBatch { batch },
        }
    }

    fn evaluated(neurons: usize, fitness: f64) -> Evaluated {
        Evaluated {
            genome: genome(neurons, 64),
            measurement: Measurement {
                accuracy: fitness as f32,
                train_accuracy: fitness as f32,
                params: neurons * 10,
                neurons,
                hw: HwMetrics::Gpu {
                    outputs_per_s: 1e5,
                    efficiency: 0.1,
                    latency_s: 1e-4,
                    effective_gflops: 1.0,
                    power_w: 50.0,
                },
                eval_time_s: 1e-6,
                train_time_s: 5e-7,
                hw_time_s: 5e-7,
            },
            fitness,
        }
    }

    #[test]
    fn squash_is_monotone_and_bounded() {
        let samples = [
            f64::NEG_INFINITY,
            -1e12,
            -3.0,
            0.0,
            1e-9,
            2.5,
            1e12,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(squash(w[0]) < squash(w[1]), "{} vs {}", w[0], w[1]);
        }
        for &v in &samples {
            let s = squash(v);
            assert!((0.0..=1.0).contains(&s));
        }
        assert_eq!(squash(f64::NAN), 0.0);
        assert!((squash(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn archive_keeps_only_non_dominated_points() {
        let mut a = ParetoArchive::new();
        assert!(a.insert(&[1.0, 1.0]));
        assert!(!a.insert(&[1.0, 1.0]), "duplicates rejected");
        assert!(!a.insert(&[0.5, 0.5]), "dominated rejected");
        assert!(a.insert(&[2.0, 0.0]), "trade-off accepted");
        assert_eq!(a.len(), 2);
        assert!(a.insert(&[3.0, 3.0]), "dominator accepted");
        assert_eq!(a.len(), 1, "dominated members evicted");
    }

    #[test]
    fn hypervolume_of_known_boxes() {
        // One point at the top corner of the unit box covers it all.
        let mut a = ParetoArchive::new();
        a.insert(&[f64::INFINITY, f64::INFINITY]);
        assert!((a.hypervolume() - 1.0).abs() < 1e-12);

        // Two staircase points: union of two rectangles.
        let p = |v: f64| (v.tan() * std::f64::consts::PI).atan(); // identity helper unused; keep direct values
        let _ = p;
        let mut b = ParetoArchive::new();
        // squash(0) = 0.5 exactly, so use 0-valued coordinates for a
        // closed-form expectation.
        b.insert(&[0.0, f64::INFINITY]); // (0.5, 1.0)
        b.insert(&[f64::INFINITY, 0.0]); // (1.0, 0.5)
        // Union area = 0.5*1.0 + 1.0*0.5 - 0.5*0.5 = 0.75.
        assert!((b.hypervolume() - 0.75).abs() < 1e-12, "{}", b.hypervolume());
    }

    #[test]
    fn hypervolume_one_and_three_dimensions() {
        let mut a = ParetoArchive::new();
        a.insert(&[0.0]);
        assert!((a.hypervolume() - 0.5).abs() < 1e-12);
        a.insert(&[1e18]); // ~1.0 after squash
        assert!(a.hypervolume() > 0.99);

        let mut b = ParetoArchive::new();
        b.insert(&[0.0, 0.0, 0.0]);
        assert!((b.hypervolume() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn hypervolume_is_monotone_under_insertion() {
        // Deterministic pseudo-random walk over insertions; the archive
        // property (grow-only dominated region) must hold throughout.
        let mut a = ParetoArchive::new();
        let mut prev = 0.0;
        let mut x: u64 = 0x1234_5678_9abc_def0;
        for _ in 0..200 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v1 = ((x & 0xffff) as f64 / 655.36) - 50.0;
            let v2 = (((x >> 16) & 0xffff) as f64 / 655.36) - 50.0;
            a.insert(&[v1, v2]);
            let hv = a.hypervolume();
            assert!(
                hv >= prev - 1e-12,
                "hypervolume decreased: {prev} -> {hv}"
            );
            prev = prev.max(hv);
        }
        assert!(prev > 0.0);
    }

    #[test]
    fn diversity_of_identical_population_is_zero() {
        let g = genome(64, 32);
        let pop = vec![&g, &g, &g];
        let d = population_diversity(&pop);
        assert_eq!(d.gene_entropy_bits, 0.0);
        assert_eq!(d.mean_distance, 0.0);
    }

    #[test]
    fn diversity_grows_with_variation() {
        let a = genome(64, 32);
        let b = genome(128, 32);
        let c = genome(256, 64);
        let uniform = population_diversity(&[&a, &a, &a, &a]);
        let varied = population_diversity(&[&a, &b, &c, &a]);
        assert!(varied.gene_entropy_bits > uniform.gene_entropy_bits);
        assert!(varied.mean_distance > uniform.mean_distance);
        assert!(varied.mean_distance <= 1.0);
    }

    #[test]
    fn diversity_handles_ragged_layer_counts() {
        let a = genome(64, 32);
        let mut b = genome(64, 32);
        b.nna.layers.push(LayerGene {
            neurons: 16,
            activation: Activation::Tanh,
            bias: false,
        });
        let d = population_diversity(&[&a, &b]);
        assert!(d.mean_distance > 0.0);
        assert!(d.gene_entropy_bits > 0.0);
    }

    #[test]
    fn fitness_summary_quantiles() {
        let s = fitness_summary(&[4.0, 1.0, f64::NEG_INFINITY, 2.0, 3.0]);
        assert_eq!(s.finite, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.p50 - 2.5).abs() < 1e-12);
        assert!((s.p25 - 1.75).abs() < 1e-12);
        assert!((s.p75 - 3.25).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(fitness_summary(&[f64::NEG_INFINITY]), FitnessSummary::default());
    }

    #[test]
    fn operator_stats_rates() {
        let mut ops = OperatorStats::default();
        ops.record(OperatorKind::Mutate, true);
        ops.record(OperatorKind::Mutate, false);
        ops.record(OperatorKind::Crossover, true);
        assert_eq!(ops.total(OperatorKind::Mutate), 2);
        assert_eq!(ops.entered(OperatorKind::Mutate), 1);
        assert!((ops.rate(OperatorKind::Mutate) - 0.5).abs() < 1e-12);
        assert_eq!(ops.rate(OperatorKind::Seed), 0.0);
        let mut restored = OperatorStats::default();
        restored.set_totals(ops.totals());
        assert_eq!(restored, ops);
    }

    #[test]
    fn operator_kind_names_round_trip() {
        for op in OperatorKind::ALL {
            assert_eq!(OperatorKind::parse(op.name()), Some(op));
        }
        assert_eq!(OperatorKind::parse("nope"), None);
    }

    #[test]
    fn tracker_snapshots_at_epoch_boundaries() {
        let mut t = EpochTracker::new(AnalyticsConfig::default(), 4);
        assert_eq!(t.epoch_size(), 4);
        assert!(!t.should_snapshot(0));
        assert!(!t.should_snapshot(3));
        assert!(t.should_snapshot(4));
        assert!(t.should_snapshot(8));

        let pop: Vec<Evaluated> = (0..4).map(|i| evaluated(32 + i, 0.5 + i as f64 * 0.1)).collect();
        for e in &pop {
            t.observe(&[e.fitness], e.fitness);
        }
        let (snap, fired) = t.snapshot(4, &pop, 2);
        assert!(!fired);
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.evaluations, 4);
        assert!(snap.has_best);
        assert!((snap.best_fitness - 0.8).abs() < 1e-12);
        assert!(snap.hypervolume > 0.0);
        assert!((snap.cache_hit_rate - 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(snap.fitness.finite, 4);
    }

    #[test]
    fn stall_detector_fires_on_rising_edge_only() {
        let cfg = AnalyticsConfig {
            epoch_size: 1,
            stall_window: 2,
            stall_epsilon: 1e-9,
        };
        let mut t = EpochTracker::new(cfg, 4);
        let pop = vec![evaluated(64, 0.5)];
        t.observe(&[0.5], 0.5);
        let mut fired_epochs = Vec::new();
        for n in 1..=6 {
            let (snap, fired) = t.snapshot(n, &pop, 0);
            if fired {
                fired_epochs.push(snap.epoch);
            }
        }
        // Epochs: hv/best constant throughout. History needs window+1
        // entries, so the first stalled epoch is #3 — and only #3 fires.
        assert_eq!(fired_epochs, vec![3]);

        // Improvement clears the stall; a fresh flat stretch re-fires.
        t.observe(&[5.0], 5.0);
        let (snap, fired) = t.snapshot(7, &pop, 0);
        assert!(!snap.stalled && !fired);
        let mut refired = Vec::new();
        for n in 8..=10 {
            let (snap, fired) = t.snapshot(n, &pop, 0);
            if fired {
                refired.push(snap.epoch);
            }
        }
        assert_eq!(refired, vec![9]);
    }

    #[test]
    fn stall_detector_ignores_all_infeasible_prefix() {
        let cfg = AnalyticsConfig {
            epoch_size: 1,
            stall_window: 1,
            stall_epsilon: 1e-9,
        };
        let mut t = EpochTracker::new(cfg, 4);
        let pop: Vec<Evaluated> = Vec::new();
        for n in 1..=4 {
            let (snap, fired) = t.snapshot(n, &pop, 0);
            assert!(!snap.stalled, "epoch {n} stalled with no feasible best");
            assert!(!fired);
            assert!(!snap.has_best);
            assert_eq!(snap.best_fitness, 0.0);
        }
    }

    #[test]
    fn replay_matches_live_tracking() {
        let cfg = AnalyticsConfig {
            epoch_size: 3,
            ..AnalyticsConfig::default()
        };
        let evals: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| {
                let f = (i as f64 * 0.37).sin();
                (vec![f, -f], f)
            })
            .collect();
        let pop: Vec<Evaluated> = (0..4).map(|i| evaluated(16 << i, 0.1 * i as f64)).collect();

        // Live: observe all, snapshotting at each boundary.
        let mut live = EpochTracker::new(cfg, 4);
        let mut live_snaps = Vec::new();
        for (i, (oriented, fitness)) in evals.iter().enumerate() {
            live.observe(oriented, *fitness);
            if live.should_snapshot(i + 1) {
                live_snaps.push(live.snapshot(i + 1, &pop, 1).0);
            }
        }

        // Resumed: restore nothing, replay the first 7 (a non-boundary
        // cut), then continue live for the rest.
        let mut resumed = EpochTracker::new(cfg, 4);
        resumed.replay(evals[..7].to_vec());
        let mut resumed_snaps: Vec<PopulationSnapshot> = live_snaps
            .iter()
            .take(7 / cfg.epoch_size)
            .cloned()
            .collect();
        for (i, (oriented, fitness)) in evals.iter().enumerate().skip(7) {
            resumed.observe(oriented, *fitness);
            if resumed.should_snapshot(i + 1) {
                resumed_snaps.push(resumed.snapshot(i + 1, &pop, 1).0);
            }
        }
        assert_eq!(live_snaps, resumed_snaps);
    }

    #[test]
    fn status_cell_json_shape() {
        let cell = StatusCell::new();
        let idle = cell.to_json();
        assert_eq!(idle.get("running"), Some(&Json::Bool(false)));
        assert_eq!(idle.get("uptime_s"), Some(&Json::Null));
        assert_eq!(idle.get("epoch"), Some(&Json::Null));

        cell.note_started();
        cell.note_counters(10, 2, 1, 0, 0, 0);
        cell.note_checkpoint();
        let mut t = EpochTracker::new(AnalyticsConfig::default(), 2);
        let pop = vec![evaluated(64, 0.5), evaluated(128, 0.7)];
        for e in &pop {
            t.observe(&[e.fitness], e.fitness);
        }
        cell.note_snapshot(t.snapshot(2, &pop, 2).0);
        let live = cell.to_json();
        assert_eq!(live.get("running"), Some(&Json::Bool(true)));
        assert_eq!(live.get("models_evaluated").and_then(Json::as_f64), Some(10.0));
        assert!(live.get("uptime_s").and_then(Json::as_f64).is_some());
        assert!(live.get("checkpoint_age_s").and_then(Json::as_f64).is_some());
        let epoch = live.get("epoch").expect("epoch present");
        assert_eq!(epoch.get("evaluations").and_then(Json::as_f64), Some(2.0));
        // The document round-trips through the serializer.
        let text = live.to_string();
        assert!(Json::parse(&text).is_ok());

        cell.note_done();
        assert_eq!(cell.to_json().get("running"), Some(&Json::Bool(false)));
    }

    #[test]
    fn observatory_serves_metrics_status_and_health() {
        use std::io::{Read as _, Write as _};

        let obs = Obs::builder().build();
        obs.counter("engine.models_evaluated").add(5);
        obs.gauge("search.hypervolume").set(0.25);
        let cell = StatusCell::new();
        cell.note_started();
        cell.note_counters(5, 0, 0, 0, 0, 0);

        let handle = observatory(&obs, &cell)
            .bind("127.0.0.1:0")
            .expect("bind observatory");
        let get = |target: &str| -> (u16, String) {
            let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
            write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut text = String::new();
            s.read_to_string(&mut text).unwrap();
            let status = text.split_whitespace().nth(1).unwrap().parse().unwrap();
            let body = text.split_once("\r\n\r\n").map(|x| x.1.to_string()).unwrap();
            (status, body)
        };

        let (code, body) = get("/metrics");
        assert_eq!(code, 200);
        let samples = rt::http::parse_exposition(&body).expect("exposition parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "engine_models_evaluated" && s.value == 5.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "search_hypervolume" && s.value == 0.25));

        let (code, body) = get("/status");
        assert_eq!(code, 200);
        let json = Json::parse(&body).expect("status is json");
        assert_eq!(json.get("models_evaluated").and_then(Json::as_f64), Some(5.0));
        assert_eq!(json.get("running"), Some(&Json::Bool(true)));

        assert_eq!(get("/healthz"), (200, "ok\n".to_string()));
        handle.stop();
    }

    #[test]
    fn cluster_observatory_serves_worker_health() {
        use std::io::{Read as _, Write as _};

        use crate::cluster::{ClusterHealth, WorkerState};

        let obs = Obs::builder().build();
        let health = Arc::new(ClusterHealth::new(&[
            "10.0.0.1:7000".to_string(),
            "10.0.0.2:7000".to_string(),
        ]));
        health.set_state(0, WorkerState::Connected);
        health.mark_seen(0);
        health.record_stats(0, 7, 1.5, 0.5, 1, 2);
        health.set_state(1, WorkerState::Lost);
        health.set_degraded();
        obs.histogram_with("cluster.worker_eval_s", &[("worker", "10.0.0.1:7000")])
            .record(0.25);

        let handle = cluster_observatory(&obs, &StatusCell::new(), Arc::clone(&health))
            .bind("127.0.0.1:0")
            .expect("bind cluster observatory");
        let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
        write!(s, "GET /workers HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        let body = text.split_once("\r\n\r\n").map(|x| x.1.to_string()).unwrap();
        let json = Json::parse(&body).expect("/workers is json");
        assert_eq!(json.get("degraded"), Some(&Json::Bool(true)));
        let workers = json.get("workers").and_then(Json::as_array).unwrap();
        assert_eq!(workers.len(), 2);
        let w0 = &workers[0];
        assert_eq!(w0.get("addr").and_then(Json::as_str), Some("10.0.0.1:7000"));
        assert_eq!(w0.get("state").and_then(Json::as_str), Some("connected"));
        assert!(w0.get("last_seen_s").and_then(Json::as_f64).is_some());
        assert_eq!(w0.get("jobs").and_then(Json::as_f64), Some(7.0));
        assert_eq!(w0.get("panics").and_then(Json::as_f64), Some(1.0));
        assert_eq!(w0.get("migrants").and_then(Json::as_f64), Some(2.0));
        assert_eq!(w0.get("eval_count").and_then(Json::as_f64), Some(1.0));
        let p50 = w0.get("eval_p50_s").and_then(Json::as_f64).unwrap();
        assert!((p50 - 0.25).abs() < 0.05, "bucketed p50 near 0.25, got {p50}");
        let w1 = &workers[1];
        assert_eq!(w1.get("state").and_then(Json::as_str), Some("lost"));
        assert_eq!(w1.get("last_seen_s"), Some(&Json::Null));
        assert_eq!(w1.get("eval_count").and_then(Json::as_f64), Some(0.0));
        handle.stop();
    }
}
