//! High-level search drivers.
//!
//! [`Search`] is the fluent front door: point it at a dataset, choose a
//! hardware target and objectives, and run. It wires together the
//! dataset split, standardization, the evaluator, and the engine, and
//! wraps the outcome in a [`SearchResult`] with the analyses the paper's
//! tables and figures need (best-by-accuracy, Pareto front, trace
//! series).

use std::sync::Arc;
use std::time::Duration;

use ecad_dataset::{scaler, Dataset};
use ecad_hw::fpga::FpgaDevice;
use ecad_mlp::TrainConfig;
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::supervise::ShutdownFlag;

use crate::analytics::StatusCell;
use crate::checkpoint::{CheckpointError, CheckpointPolicy, CheckpointState};
use crate::cluster::{ClusterHealth, ClusterOptions, ClusterPlan, SetupPayload};
use crate::config::FlowConfig;
use crate::engine::{Engine, EngineOutcome, EngineStats, Evaluated, EvolutionConfig};
use crate::fitness::ObjectiveSet;
use crate::pareto;
use crate::space::{HwFamily, SearchSpace};
use crate::workers::{CodesignEvaluator, HwTarget};

/// One point of the evolutionary trace, in the shape the paper's
/// scatter figures plot (accuracy vs outputs/s, §IV-B).
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// Evaluation index (x-axis of convergence plots).
    pub index: usize,
    /// Test accuracy.
    pub accuracy: f32,
    /// Outputs per second on the target hardware.
    pub outputs_per_s: f64,
    /// Hardware efficiency (effective / potential).
    pub efficiency: f64,
    /// Total hidden neurons.
    pub neurons: usize,
    /// Whether the hardware genes were feasible.
    pub feasible: bool,
    /// Canonical genome description.
    pub genome: String,
}

impl rt::json::ToJson for TracePoint {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("index", self.index)
            .insert("accuracy", self.accuracy)
            .insert("outputs_per_s", self.outputs_per_s)
            .insert("efficiency", self.efficiency)
            .insert("neurons", self.neurons)
            .insert("feasible", self.feasible)
            .insert("genome", &self.genome)
    }
}

/// The outcome of a co-design search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    outcome: EngineOutcome,
    objectives: ObjectiveSet,
    target_name: String,
}

impl SearchResult {
    /// Run-time statistics (Table III shape).
    pub fn stats(&self) -> EngineStats {
        self.outcome.stats.clone()
    }

    /// True when the run stopped early (shutdown request or halt
    /// boundary) rather than exhausting its evaluation budget.
    pub fn halted(&self) -> bool {
        self.outcome.halted
    }

    /// Device the search targeted.
    pub fn target_name(&self) -> &str {
        &self.target_name
    }

    /// All unique evaluations in completion order.
    pub fn trace(&self) -> &[Evaluated] {
        &self.outcome.trace
    }

    /// The highest-fitness candidate.
    pub fn best(&self) -> Option<&Evaluated> {
        self.outcome.best()
    }

    /// The feasible candidate with the highest test accuracy.
    pub fn best_by_accuracy(&self) -> Option<&Evaluated> {
        self.outcome
            .trace
            .iter()
            .filter(|e| e.measurement.hw.is_feasible())
            .max_by(|a, b| {
                a.measurement
                    .accuracy
                    .partial_cmp(&b.measurement.accuracy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }

    /// Feasible candidates on the accuracy-vs-throughput Pareto front,
    /// sorted by descending accuracy (the Table IV view).
    pub fn pareto_accuracy_throughput(&self) -> Vec<&Evaluated> {
        let feasible: Vec<&Evaluated> = self
            .outcome
            .trace
            .iter()
            .filter(|e| e.measurement.hw.is_feasible())
            .collect();
        let points: Vec<Vec<f64>> = feasible
            .iter()
            .map(|e| {
                vec![
                    e.measurement.accuracy as f64,
                    e.measurement.hw.outputs_per_s(),
                ]
            })
            .collect();
        let mut front: Vec<&Evaluated> = pareto::pareto_front(&points)
            .into_iter()
            .map(|i| feasible[i])
            .collect();
        front.sort_by(|a, b| {
            b.measurement
                .accuracy
                .partial_cmp(&a.measurement.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        front
    }

    /// The trace as plottable points.
    pub fn trace_points(&self) -> Vec<TracePoint> {
        self.outcome
            .trace
            .iter()
            .enumerate()
            .map(|(i, e)| TracePoint {
                index: i,
                accuracy: e.measurement.accuracy,
                outputs_per_s: e.measurement.hw.outputs_per_s(),
                efficiency: e.measurement.hw.efficiency(),
                neurons: e.measurement.neurons,
                feasible: e.measurement.hw.is_feasible(),
                genome: e.genome.describe(),
            })
            .collect()
    }

    /// The objective set the search optimized.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// The full evaluation trace as CSV
    /// (`index,accuracy,outputs_per_s,efficiency,latency_s,neurons,params,feasible,fitness,genome`),
    /// one row per unique evaluation — the raw material for external
    /// plotting of the paper's scatter figures.
    pub fn trace_csv(&self) -> String {
        let mut out = String::from(
            "index,accuracy,outputs_per_s,efficiency,latency_s,neurons,params,feasible,fitness,genome\n",
        );
        for (i, e) in self.outcome.trace.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                i,
                e.measurement.accuracy,
                e.measurement.hw.outputs_per_s(),
                e.measurement.hw.efficiency(),
                e.measurement.hw.latency_s(),
                e.measurement.neurons,
                e.measurement.params,
                e.measurement.hw.is_feasible(),
                e.fitness,
                e.genome.describe()
            ));
        }
        out
    }
}

/// Fluent builder for a co-design search.
#[derive(Debug, Clone)]
pub struct Search {
    train: Dataset,
    test: Dataset,
    space: Option<SearchSpace>,
    target: HwTarget,
    objectives: ObjectiveSet,
    evolution: EvolutionConfig,
    trainer: TrainConfig,
    standardize: bool,
    presplit: bool,
    obs: rt::obs::Obs,
    checkpoint: Option<CheckpointPolicy>,
    halt_after: Option<usize>,
    resume_from: Option<CheckpointState>,
    shutdown: Option<ShutdownFlag>,
    status: Option<StatusCell>,
    cluster: Option<ClusterOptions>,
    cluster_health: Option<Arc<ClusterHealth>>,
}

impl Search {
    /// Starts a search on `dataset`, holding out 25% as the test split
    /// (seeded by the evolution seed at [`Search::run`] time: call
    /// [`Search::seed`] before `run` for reproducibility).
    ///
    /// Defaults: Arria 10 (1 DDR bank) target, accuracy-only objective,
    /// small evolution budget, fast trainer, standardization on.
    pub fn on_dataset(dataset: &Dataset) -> Self {
        // The split is re-drawn at run() with the configured seed; stash
        // the full dataset in `train` for now.
        Self {
            train: dataset.clone(),
            test: dataset.clone(),
            space: None,
            target: HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
            objectives: ObjectiveSet::accuracy_only(),
            evolution: EvolutionConfig::small(),
            trainer: TrainConfig::fast(),
            standardize: true,
            presplit: false,
            obs: rt::obs::Obs::disabled(),
            checkpoint: None,
            halt_after: None,
            resume_from: None,
            shutdown: None,
            status: None,
            cluster: None,
            cluster_health: None,
        }
    }

    /// Uses an explicit pre-made train/test split (the 1-fold MNIST
    /// protocol, or one fold of a 10-fold run).
    pub fn with_split(train: &Dataset, test: &Dataset) -> Self {
        let mut s = Self::on_dataset(train);
        s.test = test.clone();
        s.presplit = true;
        s
    }

    /// Builds a search from a parsed [`FlowConfig`] and a dataset.
    pub fn from_config(config: &FlowConfig, dataset: &Dataset) -> Self {
        let mut s = Self::on_dataset(dataset);
        s.space = Some(config.space.clone());
        s.target = config.target.clone();
        s.objectives = ObjectiveSet::new(config.objectives.clone());
        s.evolution = config.evolution;
        s.trainer = config.trainer;
        s
    }

    /// Sets the hardware target.
    pub fn target(mut self, target: HwTarget) -> Self {
        self.target = target;
        self
    }

    /// Sets the search space (defaults to the family-appropriate space).
    pub fn space(mut self, space: SearchSpace) -> Self {
        self.space = Some(space);
        self
    }

    /// Sets the objectives.
    pub fn objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Sets the unique-evaluation budget.
    pub fn evaluations(mut self, n: usize) -> Self {
        self.evolution.evaluations = n;
        self
    }

    /// Sets the population size.
    pub fn population(mut self, n: usize) -> Self {
        self.evolution.population = n;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.evolution.seed = seed;
        self
    }

    /// Sets the worker-thread count (1 = deterministic).
    pub fn threads(mut self, n: usize) -> Self {
        self.evolution.threads = n;
        self
    }

    /// Sets the survivor-selection strategy (weighted scalar by
    /// default; NSGA-II keeps a diverse Pareto frontier alive).
    pub fn selection(mut self, mode: crate::engine::SelectionMode) -> Self {
        self.evolution.selection = mode;
        self
    }

    /// Sets the per-candidate training configuration.
    pub fn trainer(mut self, cfg: TrainConfig) -> Self {
        self.trainer = cfg;
        self
    }

    /// Disables feature standardization (on by default).
    pub fn without_standardization(mut self) -> Self {
        self.standardize = false;
        self
    }

    /// Attaches an observability handle, threaded through the engine
    /// and evaluator: structured events flow to its sinks and run
    /// metrics (counters, per-stage timing histograms) land in its
    /// registry. Disabled by default.
    pub fn obs(mut self, obs: rt::obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Sets a per-evaluation wall-clock deadline. Evaluations that
    /// exceed it are abandoned, retried (up to the retry budget), and
    /// their worker slot is respawned.
    pub fn eval_timeout(mut self, timeout: Duration) -> Self {
        self.evolution.eval_timeout = Some(timeout);
        self
    }

    /// Sets the retry budget for transient failures (worker panics,
    /// deadline timeouts, transient evaluator verdicts).
    pub fn max_retries(mut self, n: usize) -> Self {
        self.evolution.max_retries = n;
        self
    }

    /// Sets the base retry backoff (doubled per attempt, jittered).
    pub fn retry_backoff(mut self, base: Duration) -> Self {
        self.evolution.retry_backoff = base;
        self
    }

    /// Attaches a checkpoint policy: run state is written to the
    /// policy's path every `every` unique evaluations and on halt.
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Halts the search once the trace holds `n` unique evaluations
    /// (deterministic interruption for checkpoint/resume testing).
    pub fn halt_after(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Resumes from a previously saved checkpoint instead of starting
    /// fresh. The checkpoint must match this search's seed, budget, and
    /// population capacity; [`Search::try_run`] reports a mismatch as
    /// [`CheckpointError::Mismatch`].
    pub fn resume_from(mut self, state: CheckpointState) -> Self {
        self.resume_from = Some(state);
        self
    }

    /// Attaches a shared status cell that the engine updates as the run
    /// progresses (counters, latest epoch snapshot, lifecycle flags).
    /// Serve it over HTTP with [`crate::analytics::observatory`].
    pub fn status(mut self, status: StatusCell) -> Self {
        self.status = Some(status);
        self
    }

    /// Attaches a cooperative shutdown flag (e.g. wired to
    /// SIGINT/SIGTERM via
    /// [`ShutdownFlag::install_termination_handler`]). When it trips,
    /// the search stops at the next safe boundary and writes a final
    /// checkpoint if a policy is attached.
    pub fn shutdown_flag(mut self, flag: ShutdownFlag) -> Self {
        self.shutdown = Some(flag);
        self
    }

    /// Routes evaluation to remote cluster workers
    /// ([`crate::cluster`]): one engine slot per address in
    /// `options.workers`, each shipping this search's standardized
    /// split, trainer, device, space, and objectives in its session
    /// setup. Requires a catalog device (the wire protocol identifies
    /// targets by name). With an empty worker list the options are
    /// ignored and the search runs locally.
    pub fn cluster(mut self, options: ClusterOptions) -> Self {
        self.cluster = Some(options);
        self
    }

    /// Attaches a shared per-worker health registry
    /// ([`ClusterHealth`]): the engine's remote slots record state
    /// transitions and absorbed worker stats into it, and the
    /// `/workers` endpoint serves snapshots. Only meaningful together
    /// with [`Search::cluster`].
    pub fn cluster_health(mut self, health: Arc<ClusterHealth>) -> Self {
        self.cluster_health = Some(health);
        self
    }

    /// Runs the search.
    ///
    /// # Panics
    ///
    /// Panics if a checkpoint attached via [`Search::resume_from`] does
    /// not match this search's configuration; use [`Search::try_run`]
    /// to handle that case gracefully.
    pub fn run(self) -> SearchResult {
        self.try_run().expect("checkpoint matches search config")
    }

    /// Runs the search, reporting checkpoint mismatches as errors
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when a checkpoint attached
    /// via [`Search::resume_from`] disagrees with this search's seed,
    /// evaluation budget, or population capacity.
    pub fn try_run(self) -> Result<SearchResult, CheckpointError> {
        let (mut train, mut test) = if self.presplit {
            (self.train.clone(), self.test.clone())
        } else {
            let mut rng = StdRng::seed_from_u64(self.evolution.seed ^ 0x5eed_0011);
            self.train.split(0.25, &mut rng)
        };
        if self.standardize {
            let (tr, te) = scaler::standardize_pair(&train, &test);
            train = tr;
            test = te;
        }
        let space = self.space.clone().unwrap_or_else(|| match self.target {
            HwTarget::Fpga(_) => SearchSpace::fpga_default(),
            HwTarget::Gpu(_) | HwTarget::Cpu(_) => SearchSpace::gpu_default(),
        });
        let target_name = self.target.device_name().to_string();
        debug_assert!(
            matches!(
                (&self.target, space.family),
                (HwTarget::Fpga(_), HwFamily::Fpga)
                    | (HwTarget::Gpu(_) | HwTarget::Cpu(_), HwFamily::Gpu)
            ),
            "search space family must match the hardware target"
        );
        // The cluster plan ships the *standardized* split: remote
        // workers must see bit-identical features, or their
        // measurements (and the dedup cache keyed on them) would drift
        // from a local run's.
        let cluster_plan = self
            .cluster
            .as_ref()
            .filter(|o| !o.workers.is_empty())
            .map(|o| ClusterPlan {
                options: o.clone(),
                setup: SetupPayload {
                    seed: self.evolution.seed,
                    train: train.clone(),
                    test: test.clone(),
                    trainer: self.trainer,
                    target: self.target.clone(),
                    space: space.clone(),
                    objectives: self.objectives.clone(),
                    island_every: o.island_every,
                    island_k: o.island_k,
                    // Workers profile each evaluation under the same
                    // clock the coordinator's profiler uses, so their
                    // subtrees graft into one coherent master tree.
                    profile_clock: self
                        .obs
                        .profiler()
                        .map(|p| p.clock().name().to_string()),
                    stats_every: o.stats_every,
                },
            });
        let evaluator = CodesignEvaluator::new(
            train,
            test,
            self.trainer,
            self.target.clone(),
            self.evolution.seed,
        )
        .with_obs(self.obs.clone());
        let mut engine = Engine::new(
            Arc::new(evaluator),
            space,
            self.objectives.clone(),
            self.evolution,
        )
        .with_obs(self.obs.clone());
        if let Some(policy) = self.checkpoint.clone() {
            engine = engine.with_checkpoint(policy);
        }
        if let Some(n) = self.halt_after {
            engine = engine.with_halt_after(n);
        }
        if let Some(flag) = self.shutdown.clone() {
            engine = engine.with_shutdown(flag);
        }
        if let Some(status) = self.status.clone() {
            engine = engine.with_status(status);
        }
        if let Some(plan) = cluster_plan {
            engine = engine.with_cluster(plan);
        }
        if let Some(health) = self.cluster_health.clone() {
            engine = engine.with_cluster_health(health);
        }
        let outcome = match self.resume_from {
            Some(state) => engine.resume(state)?,
            None => engine.run(),
        };
        Ok(SearchResult {
            outcome,
            objectives: self.objectives,
            target_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;
    use ecad_hw::gpu::GpuDevice;

    fn small_dataset() -> Dataset {
        SyntheticSpec::new("search-test", 150, 6, 2)
            .with_class_sep(3.0)
            .with_seed(0)
            .generate()
    }

    fn tiny_search(ds: &Dataset) -> Search {
        let mut trainer = TrainConfig::fast();
        trainer.epochs = 8;
        Search::on_dataset(ds)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 32)
                    .with_layers(1, 2),
            )
            .evaluations(20)
            .population(8)
            .seed(1)
            .trainer(trainer)
    }

    #[test]
    fn search_runs_and_finds_feasible_candidates() {
        let ds = small_dataset();
        let result = tiny_search(&ds).run();
        assert_eq!(result.stats().models_evaluated, 20);
        let best = result.best_by_accuracy().expect("some feasible candidate");
        assert!(best.measurement.accuracy > 0.5);
        assert_eq!(result.target_name(), "Arria 10 GX 1150");
    }

    #[test]
    fn pareto_front_is_nonempty_and_sorted() {
        let ds = small_dataset();
        let result = tiny_search(&ds)
            .objectives(ObjectiveSet::accuracy_and_throughput())
            .run();
        let front = result.pareto_accuracy_throughput();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[0].measurement.accuracy >= w[1].measurement.accuracy);
        }
        // No front member may dominate another.
        for a in &front {
            for b in &front {
                let better_acc = a.measurement.accuracy > b.measurement.accuracy;
                let better_thr =
                    a.measurement.hw.outputs_per_s() > b.measurement.hw.outputs_per_s();
                let geq_acc = a.measurement.accuracy >= b.measurement.accuracy;
                let geq_thr = a.measurement.hw.outputs_per_s() >= b.measurement.hw.outputs_per_s();
                assert!(
                    !(geq_acc && geq_thr && (better_acc || better_thr))
                        || std::ptr::eq(*a, *b)
                        || (a.measurement.accuracy == b.measurement.accuracy
                            && a.measurement.hw.outputs_per_s()
                                == b.measurement.hw.outputs_per_s())
                );
            }
        }
    }

    #[test]
    fn gpu_target_search() {
        let ds = small_dataset();
        let mut trainer = TrainConfig::fast();
        trainer.epochs = 8;
        let result = Search::on_dataset(&ds)
            .target(HwTarget::Gpu(GpuDevice::titan_x()))
            .evaluations(15)
            .population(6)
            .seed(2)
            .trainer(trainer)
            .run();
        assert_eq!(result.target_name(), "Titan X");
        assert!(result.best_by_accuracy().is_some());
    }

    #[test]
    fn trace_points_align_with_trace() {
        let ds = small_dataset();
        let result = tiny_search(&ds).run();
        let pts = result.trace_points();
        assert_eq!(pts.len(), result.trace().len());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.accuracy, result.trace()[i].measurement.accuracy);
        }
    }

    #[test]
    fn deterministic_for_seed_and_single_thread() {
        let ds = small_dataset();
        let a = tiny_search(&ds).run();
        let b = tiny_search(&ds).run();
        assert_eq!(
            a.best().unwrap().genome.describe(),
            b.best().unwrap().genome.describe()
        );
    }

    #[test]
    fn search_halt_and_resume_matches_uninterrupted() {
        let ds = small_dataset();
        let full = tiny_search(&ds).run();

        let dir = std::env::temp_dir().join("ecad-search-checkpoint");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("halt-resume-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let halted = tiny_search(&ds)
            .checkpoint(CheckpointPolicy::new(&path, 5))
            .halt_after(10)
            .run();
        assert!(halted.halted());
        assert_eq!(halted.trace().len(), 10);

        let state = CheckpointState::load(&path).unwrap();
        let resumed = tiny_search(&ds).resume_from(state).run();
        assert!(!resumed.halted());
        assert_eq!(resumed.trace().len(), full.trace().len());
        // Timing fields are wall-clock and differ between independent
        // runs; every deterministic field must agree.
        for (a, b) in full.trace().iter().zip(resumed.trace().iter()) {
            assert_eq!(a.genome, b.genome);
            assert_eq!(a.measurement.accuracy, b.measurement.accuracy);
            assert_eq!(a.measurement.hw, b.measurement.hw);
            assert_eq!(a.fitness, b.fitness);
        }
        assert_eq!(
            full.best().unwrap().genome.describe(),
            resumed.best().unwrap().genome.describe()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn resume_with_wrong_seed_is_an_error() {
        let ds = small_dataset();
        let dir = std::env::temp_dir().join("ecad-search-checkpoint");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("wrong-seed-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let halted = tiny_search(&ds)
            .checkpoint(CheckpointPolicy::new(&path, 5))
            .halt_after(5)
            .run();
        assert!(halted.halted());

        let state = CheckpointState::load(&path).unwrap();
        let err = tiny_search(&ds).seed(99).resume_from(state).try_run();
        assert!(matches!(err, Err(CheckpointError::Mismatch(_))));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn presplit_search_uses_given_split() {
        let ds = small_dataset();
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = ds.split(0.3, &mut rng);
        let mut trainer = TrainConfig::fast();
        trainer.epochs = 6;
        let result = Search::with_split(&train, &test)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 16)
                    .with_layers(1, 1),
            )
            .evaluations(8)
            .population(4)
            .trainer(trainer)
            .run();
        assert_eq!(result.stats().models_evaluated, 8);
    }
}
