//! Search checkpoint/resume: serialize the engine's full master state
//! to JSON and restore it for a byte-identical continuation.
//!
//! A long co-design run is only as durable as its last checkpoint — the
//! paper's MNIST searches evaluate tens of thousands of models over
//! hours, and the predecessor system (arXiv:1903.02130) distributes
//! work precisely so failures do not lose the search. A
//! [`CheckpointState`] captures everything the steady-state loop needs
//! to continue *exactly* where it left off:
//!
//! * the population and unique-evaluation trace (genome + raw
//!   measurement; scalar fitness is **recomputed** on load because the
//!   JSON layer maps non-finite numbers — infeasible candidates carry
//!   `-inf` fitness — to `null`);
//! * the master RNG's raw PCG64 state, as hex strings (the 128-bit
//!   state does not survive an `f64` JSON number);
//! * the dedup cache (keys as 16-digit hex, for the same reason);
//! * the run counters behind `EngineStats`;
//! * unsampled initial seeds and in-flight/retry work (`pending`), so
//!   multi-threaded runs lose nothing either.
//!
//! For a seeded single-thread run, resuming from a checkpoint written
//! after evaluation *M* replays the identical decision sequence the
//! uninterrupted run would have made from *M* on — same children, same
//! cache hits, same trace events. DESIGN.md §12 gives the argument.
//!
//! [`CheckpointState::save`] writes atomically (temp file + rename) so
//! a crash mid-write never corrupts the previous checkpoint.

use std::io::Write;
use std::path::{Path, PathBuf};

use ecad_mlp::Activation;
use rt::json::{Json, ToJson};

use crate::analytics::OperatorKind;
use crate::engine::EvolutionConfig;
use crate::genome::{CandidateGenome, HwGenome, LayerGene, NnaGenome};
use crate::measurement::{HwMetrics, InfeasibleReason, Measurement};

/// Schema version stamped into every checkpoint file; bump on any
/// incompatible layout change. Version 2 added the per-operator
/// admission counters and the `op` provenance tag on pending jobs
/// (both feed the epoch analytics, whose resumed events must be
/// bit-identical to an uninterrupted run's).
pub const FORMAT_VERSION: u64 = 2;

/// When and where the engine writes checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Destination file (written atomically, overwritten each time).
    pub path: PathBuf,
    /// Write after every `every` unique evaluations (and always on a
    /// halt or shutdown request).
    pub every: usize,
}

impl CheckpointPolicy {
    /// A policy writing to `path` every `every` unique evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            path: path.into(),
            every,
        }
    }
}

/// A unit of work that was dispatched (or scheduled for retry) but not
/// yet finally admitted when the checkpoint was written. Its unique
/// budget is already consumed, so resume re-dispatches it without
/// re-counting.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// Attempt number (0 = first try, k = k-th retry).
    pub attempt: usize,
    /// The candidate to evaluate.
    pub genome: CandidateGenome,
    /// Which operator produced the candidate (epoch analytics
    /// provenance; survives the checkpoint so per-operator admission
    /// rates stay exact across a resume).
    pub op: OperatorKind,
}

/// Everything the engine needs to continue a run. See the module docs
/// for the field-by-field rationale.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointState {
    /// Schema version ([`FORMAT_VERSION`]).
    pub version: u64,
    /// Search seed, echoed for validation at resume time.
    pub seed: u64,
    /// Unique-evaluation budget, echoed for validation.
    pub evaluations: usize,
    /// Population capacity, echoed for validation.
    pub population_cap: usize,
    /// Master RNG raw state (PCG64 `state`).
    pub rng_state: u128,
    /// Master RNG raw stream selector (PCG64 `inc`, always odd).
    pub rng_inc: u128,
    /// Unique candidates submitted so far (including pending ones).
    pub submitted_unique: usize,
    /// Candidate-generation attempts consumed (the duplicate-breeding
    /// safety valve's counter).
    pub attempts: usize,
    /// Next dispatch id.
    pub next_id: usize,
    /// Dedup-cache hits so far.
    pub cache_hits: usize,
    /// Final infeasible verdicts so far.
    pub infeasible_count: usize,
    /// Transient-failure retries dispatched so far.
    pub retry_count: usize,
    /// Evaluations abandoned at their deadline so far.
    pub timeout_count: usize,
    /// Worker slots respawned so far.
    pub respawn_count: usize,
    /// Per-operator `(produced, entered population)` admission
    /// counters, in [`OperatorKind::ALL`] order.
    pub op_counters: [(u64, u64); 4],
    /// Accumulated per-evaluation seconds.
    pub total_eval_time_s: f64,
    /// Accumulated training-stage seconds.
    pub train_time_s: f64,
    /// Accumulated hardware-model seconds.
    pub hw_time_s: f64,
    /// Wall-clock seconds consumed before this checkpoint.
    pub wall_time_s: f64,
    /// Unsampled initial seed genomes, in pop order (next-to-submit
    /// last) — nonempty only when interrupted during initial seeding.
    pub seeds_remaining: Vec<CandidateGenome>,
    /// Current population, in insertion order (order matters: the
    /// steady-state replacement draws indices from the RNG).
    pub population: Vec<(CandidateGenome, Measurement)>,
    /// Unique evaluations in completion order.
    pub trace: Vec<(CandidateGenome, Measurement)>,
    /// Dedup cache entries, sorted by key for stable bytes.
    pub cache: Vec<(u64, Measurement)>,
    /// Work dispatched or awaiting retry at checkpoint time.
    pub pending: Vec<PendingJob>,
}

/// Why a checkpoint could not be read or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// File-system failure, stringified.
    Io(String),
    /// The file is not valid JSON.
    Parse(String),
    /// The JSON does not match the checkpoint schema.
    Schema(String),
    /// The checkpoint disagrees with the run configuration.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Parse(e) => write!(f, "checkpoint is not valid JSON: {e}"),
            CheckpointError::Schema(e) => write!(f, "checkpoint schema error: {e}"),
            CheckpointError::Mismatch(e) => write!(f, "checkpoint/config mismatch: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---------------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------------

pub(crate) fn genome_to_json(g: &CandidateGenome) -> Json {
    let layers: Vec<Json> = g
        .nna
        .layers
        .iter()
        .map(|l| {
            Json::object()
                .insert("neurons", l.neurons)
                .insert("activation", l.activation.name())
                .insert("bias", l.bias)
        })
        .collect();
    let hw = match g.hw {
        HwGenome::FpgaGrid {
            rows,
            cols,
            interleave_m,
            interleave_n,
            vec,
            batch,
        } => Json::object()
            .insert("kind", "fpga")
            .insert("rows", rows)
            .insert("cols", cols)
            .insert("interleave_m", interleave_m)
            .insert("interleave_n", interleave_n)
            .insert("vec", vec)
            .insert("batch", batch),
        HwGenome::GpuBatch { batch } => {
            Json::object().insert("kind", "gpu").insert("batch", batch)
        }
    };
    Json::object().insert("layers", layers).insert("hw", hw)
}

fn reason_to_json(r: &InfeasibleReason) -> Json {
    let j = Json::object().insert("kind", r.kind());
    match r {
        InfeasibleReason::Transient(text) | InfeasibleReason::Other(text) => {
            j.insert("text", text.as_str())
        }
        _ => j,
    }
}

fn hw_metrics_to_json(hw: &HwMetrics) -> Json {
    match hw {
        HwMetrics::Fpga {
            outputs_per_s,
            efficiency,
            latency_s,
            potential_gflops,
            effective_gflops,
            bandwidth_bound,
            power_w,
            fmax_mhz,
            dsp_util,
        } => Json::object()
            .insert("kind", "fpga")
            .insert("outputs_per_s", *outputs_per_s)
            .insert("efficiency", *efficiency)
            .insert("latency_s", *latency_s)
            .insert("potential_gflops", *potential_gflops)
            .insert("effective_gflops", *effective_gflops)
            .insert("bandwidth_bound", *bandwidth_bound)
            .insert("power_w", *power_w)
            .insert("fmax_mhz", *fmax_mhz)
            .insert("dsp_util", *dsp_util),
        HwMetrics::Gpu {
            outputs_per_s,
            efficiency,
            latency_s,
            effective_gflops,
            power_w,
        } => Json::object()
            .insert("kind", "gpu")
            .insert("outputs_per_s", *outputs_per_s)
            .insert("efficiency", *efficiency)
            .insert("latency_s", *latency_s)
            .insert("effective_gflops", *effective_gflops)
            .insert("power_w", *power_w),
        HwMetrics::Cpu {
            outputs_per_s,
            efficiency,
            latency_s,
            effective_gflops,
            power_w,
        } => Json::object()
            .insert("kind", "cpu")
            .insert("outputs_per_s", *outputs_per_s)
            .insert("efficiency", *efficiency)
            .insert("latency_s", *latency_s)
            .insert("effective_gflops", *effective_gflops)
            .insert("power_w", *power_w),
        HwMetrics::Infeasible { reason } => Json::object()
            .insert("kind", "infeasible")
            .insert("reason", reason_to_json(reason)),
    }
}

pub(crate) fn measurement_to_json(m: &Measurement) -> Json {
    Json::object()
        // f32 -> f64 widening is exact, so accuracy round-trips.
        .insert("accuracy", m.accuracy as f64)
        .insert("train_accuracy", m.train_accuracy as f64)
        .insert("params", m.params)
        .insert("neurons", m.neurons)
        .insert("eval_time_s", m.eval_time_s)
        .insert("train_time_s", m.train_time_s)
        .insert("hw_time_s", m.hw_time_s)
        .insert("hw", hw_metrics_to_json(&m.hw))
}

fn pair_to_json(pair: &(CandidateGenome, Measurement)) -> Json {
    Json::object()
        .insert("genome", genome_to_json(&pair.0))
        .insert("measurement", measurement_to_json(&pair.1))
}

impl ToJson for CheckpointState {
    fn to_json(&self) -> Json {
        Json::object()
            .insert("version", self.version)
            .insert("seed", format!("{:016x}", self.seed))
            .insert("evaluations", self.evaluations)
            .insert("population_cap", self.population_cap)
            .insert("rng_state", format!("{:032x}", self.rng_state))
            .insert("rng_inc", format!("{:032x}", self.rng_inc))
            .insert("submitted_unique", self.submitted_unique)
            .insert("attempts", self.attempts)
            .insert("next_id", self.next_id)
            .insert("cache_hits", self.cache_hits)
            .insert("infeasible_count", self.infeasible_count)
            .insert("retry_count", self.retry_count)
            .insert("timeout_count", self.timeout_count)
            .insert("respawn_count", self.respawn_count)
            .insert("operators", {
                let mut ops = Json::object();
                for (op, (total, entered)) in
                    OperatorKind::ALL.into_iter().zip(self.op_counters)
                {
                    ops = ops.insert(
                        op.name(),
                        Json::object()
                            .insert("total", total)
                            .insert("entered", entered),
                    );
                }
                ops
            })
            .insert("total_eval_time_s", self.total_eval_time_s)
            .insert("train_time_s", self.train_time_s)
            .insert("hw_time_s", self.hw_time_s)
            .insert("wall_time_s", self.wall_time_s)
            .insert(
                "seeds_remaining",
                self.seeds_remaining
                    .iter()
                    .map(genome_to_json)
                    .collect::<Vec<_>>(),
            )
            .insert(
                "population",
                self.population.iter().map(pair_to_json).collect::<Vec<_>>(),
            )
            .insert(
                "trace",
                self.trace.iter().map(pair_to_json).collect::<Vec<_>>(),
            )
            .insert(
                "cache",
                self.cache
                    .iter()
                    .map(|(k, m)| {
                        Json::object()
                            .insert("key", format!("{k:016x}"))
                            .insert("measurement", measurement_to_json(m))
                    })
                    .collect::<Vec<_>>(),
            )
            .insert(
                "pending",
                self.pending
                    .iter()
                    .map(|p| {
                        Json::object()
                            .insert("attempt", p.attempt)
                            .insert("op", p.op.name())
                            .insert("genome", genome_to_json(&p.genome))
                    })
                    .collect::<Vec<_>>(),
            )
    }
}

// ---------------------------------------------------------------------------
// JSON decoding
// ---------------------------------------------------------------------------

fn schema(msg: impl Into<String>) -> CheckpointError {
    CheckpointError::Schema(msg.into())
}

fn get_f64(j: &Json, key: &str) -> Result<f64, CheckpointError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| schema(format!("missing or non-numeric field {key:?}")))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, CheckpointError> {
    let v = get_f64(j, key)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(schema(format!("field {key:?} is not a non-negative integer")));
    }
    Ok(v as usize)
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, CheckpointError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| schema(format!("missing or non-string field {key:?}")))
}

fn get_bool(j: &Json, key: &str) -> Result<bool, CheckpointError> {
    match j.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(schema(format!("missing or non-boolean field {key:?}"))),
    }
}

fn get_array<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], CheckpointError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| schema(format!("missing or non-array field {key:?}")))
}

fn hex_u64(j: &Json, key: &str) -> Result<u64, CheckpointError> {
    u64::from_str_radix(get_str(j, key)?, 16)
        .map_err(|_| schema(format!("field {key:?} is not a 64-bit hex string")))
}

fn hex_u128(j: &Json, key: &str) -> Result<u128, CheckpointError> {
    u128::from_str_radix(get_str(j, key)?, 16)
        .map_err(|_| schema(format!("field {key:?} is not a 128-bit hex string")))
}

pub(crate) fn genome_from_json(j: &Json) -> Result<CandidateGenome, CheckpointError> {
    let layers = get_array(j, "layers")?
        .iter()
        .map(|l| {
            let name = get_str(l, "activation")?;
            let activation = Activation::from_name(name)
                .ok_or_else(|| schema(format!("unknown activation {name:?}")))?;
            Ok(LayerGene {
                neurons: get_usize(l, "neurons")?,
                activation,
                bias: get_bool(l, "bias")?,
            })
        })
        .collect::<Result<Vec<_>, CheckpointError>>()?;
    let hw = j
        .get("hw")
        .ok_or_else(|| schema("genome missing hw genes"))?;
    let hw = match get_str(hw, "kind")? {
        "fpga" => HwGenome::FpgaGrid {
            rows: get_usize(hw, "rows")? as u32,
            cols: get_usize(hw, "cols")? as u32,
            interleave_m: get_usize(hw, "interleave_m")? as u32,
            interleave_n: get_usize(hw, "interleave_n")? as u32,
            vec: get_usize(hw, "vec")? as u32,
            batch: get_usize(hw, "batch")? as u32,
        },
        "gpu" => HwGenome::GpuBatch {
            batch: get_usize(hw, "batch")? as u32,
        },
        other => return Err(schema(format!("unknown hw genome kind {other:?}"))),
    };
    Ok(CandidateGenome {
        nna: NnaGenome { layers },
        hw,
    })
}

fn reason_from_json(j: &Json) -> Result<InfeasibleReason, CheckpointError> {
    let text = || {
        j.get("text")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string()
    };
    Ok(match get_str(j, "kind")? {
        "device-fit" => InfeasibleReason::DeviceFit,
        "training-failure" => InfeasibleReason::TrainingFailure,
        "target-mismatch" => InfeasibleReason::TargetMismatch,
        "worker-panic" => InfeasibleReason::WorkerPanic,
        "eval-timeout" => InfeasibleReason::EvalTimeout,
        "transient" => InfeasibleReason::Transient(text()),
        "other" => InfeasibleReason::Other(text()),
        other => return Err(schema(format!("unknown infeasible reason {other:?}"))),
    })
}

fn hw_metrics_from_json(j: &Json) -> Result<HwMetrics, CheckpointError> {
    Ok(match get_str(j, "kind")? {
        "fpga" => HwMetrics::Fpga {
            outputs_per_s: get_f64(j, "outputs_per_s")?,
            efficiency: get_f64(j, "efficiency")?,
            latency_s: get_f64(j, "latency_s")?,
            potential_gflops: get_f64(j, "potential_gflops")?,
            effective_gflops: get_f64(j, "effective_gflops")?,
            bandwidth_bound: get_bool(j, "bandwidth_bound")?,
            power_w: get_f64(j, "power_w")?,
            fmax_mhz: get_f64(j, "fmax_mhz")?,
            dsp_util: get_f64(j, "dsp_util")?,
        },
        "gpu" => HwMetrics::Gpu {
            outputs_per_s: get_f64(j, "outputs_per_s")?,
            efficiency: get_f64(j, "efficiency")?,
            latency_s: get_f64(j, "latency_s")?,
            effective_gflops: get_f64(j, "effective_gflops")?,
            power_w: get_f64(j, "power_w")?,
        },
        "cpu" => HwMetrics::Cpu {
            outputs_per_s: get_f64(j, "outputs_per_s")?,
            efficiency: get_f64(j, "efficiency")?,
            latency_s: get_f64(j, "latency_s")?,
            effective_gflops: get_f64(j, "effective_gflops")?,
            power_w: get_f64(j, "power_w")?,
        },
        "infeasible" => HwMetrics::Infeasible {
            reason: reason_from_json(
                j.get("reason")
                    .ok_or_else(|| schema("infeasible metrics missing reason"))?,
            )?,
        },
        other => return Err(schema(format!("unknown hw metrics kind {other:?}"))),
    })
}

pub(crate) fn measurement_from_json(j: &Json) -> Result<Measurement, CheckpointError> {
    Ok(Measurement {
        // f64 -> f32 narrowing undoes the exact widening done on save.
        accuracy: get_f64(j, "accuracy")? as f32,
        train_accuracy: get_f64(j, "train_accuracy")? as f32,
        params: get_usize(j, "params")?,
        neurons: get_usize(j, "neurons")?,
        hw: hw_metrics_from_json(
            j.get("hw").ok_or_else(|| schema("measurement missing hw"))?,
        )?,
        eval_time_s: get_f64(j, "eval_time_s")?,
        train_time_s: get_f64(j, "train_time_s")?,
        hw_time_s: get_f64(j, "hw_time_s")?,
    })
}

fn pair_from_json(j: &Json) -> Result<(CandidateGenome, Measurement), CheckpointError> {
    Ok((
        genome_from_json(
            j.get("genome")
                .ok_or_else(|| schema("entry missing genome"))?,
        )?,
        measurement_from_json(
            j.get("measurement")
                .ok_or_else(|| schema("entry missing measurement"))?,
        )?,
    ))
}

impl CheckpointState {
    /// Rebuilds a state from parsed checkpoint JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Schema`] when a field is missing,
    /// mistyped, or from an unsupported format version.
    pub fn from_json(j: &Json) -> Result<Self, CheckpointError> {
        let version = get_usize(j, "version")? as u64;
        if version != FORMAT_VERSION {
            return Err(schema(format!(
                "unsupported checkpoint version {version} (expected {FORMAT_VERSION})"
            )));
        }
        let rng_inc = hex_u128(j, "rng_inc")?;
        if rng_inc & 1 == 0 {
            return Err(schema("rng_inc must be odd (corrupted checkpoint?)"));
        }
        Ok(Self {
            version,
            seed: hex_u64(j, "seed")?,
            evaluations: get_usize(j, "evaluations")?,
            population_cap: get_usize(j, "population_cap")?,
            rng_state: hex_u128(j, "rng_state")?,
            rng_inc,
            submitted_unique: get_usize(j, "submitted_unique")?,
            attempts: get_usize(j, "attempts")?,
            next_id: get_usize(j, "next_id")?,
            cache_hits: get_usize(j, "cache_hits")?,
            infeasible_count: get_usize(j, "infeasible_count")?,
            retry_count: get_usize(j, "retry_count")?,
            timeout_count: get_usize(j, "timeout_count")?,
            respawn_count: get_usize(j, "respawn_count")?,
            op_counters: {
                let ops = j
                    .get("operators")
                    .ok_or_else(|| schema("missing field \"operators\""))?;
                let mut counters = [(0u64, 0u64); 4];
                for (op, slot) in OperatorKind::ALL.into_iter().zip(&mut counters) {
                    let entry = ops.get(op.name()).ok_or_else(|| {
                        schema(format!("operators missing entry {:?}", op.name()))
                    })?;
                    *slot = (
                        get_usize(entry, "total")? as u64,
                        get_usize(entry, "entered")? as u64,
                    );
                }
                counters
            },
            total_eval_time_s: get_f64(j, "total_eval_time_s")?,
            train_time_s: get_f64(j, "train_time_s")?,
            hw_time_s: get_f64(j, "hw_time_s")?,
            wall_time_s: get_f64(j, "wall_time_s")?,
            seeds_remaining: get_array(j, "seeds_remaining")?
                .iter()
                .map(genome_from_json)
                .collect::<Result<_, _>>()?,
            population: get_array(j, "population")?
                .iter()
                .map(pair_from_json)
                .collect::<Result<_, _>>()?,
            trace: get_array(j, "trace")?
                .iter()
                .map(pair_from_json)
                .collect::<Result<_, _>>()?,
            cache: get_array(j, "cache")?
                .iter()
                .map(|e| {
                    Ok((
                        hex_u64(e, "key")?,
                        measurement_from_json(e.get("measurement").ok_or_else(|| {
                            schema("cache entry missing measurement")
                        })?)?,
                    ))
                })
                .collect::<Result<_, _>>()?,
            pending: get_array(j, "pending")?
                .iter()
                .map(|p| {
                    Ok(PendingJob {
                        attempt: get_usize(p, "attempt")?,
                        op: OperatorKind::parse(get_str(p, "op")?).ok_or_else(|| {
                            schema(format!(
                                "pending entry has unknown operator {:?}",
                                get_str(p, "op").unwrap_or_default()
                            ))
                        })?,
                        genome: genome_from_json(p.get("genome").ok_or_else(|| {
                            schema("pending entry missing genome")
                        })?)?,
                    })
                })
                .collect::<Result<_, _>>()?,
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`,
    /// fsync, then rename over `path`. A crash mid-write leaves the
    /// previous checkpoint intact.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, stringified.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp).map_err(io)?;
            f.write_all(self.to_json().pretty().as_bytes()).map_err(io)?;
            f.write_all(b"\n").map_err(io)?;
            f.sync_all().map_err(io)?;
        }
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Loads and validates a checkpoint file.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] if the file cannot be read,
    /// [`CheckpointError::Parse`] if it is not JSON, or
    /// [`CheckpointError::Schema`] if it does not match the schema.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        let json =
            Json::parse(&text).map_err(|e| CheckpointError::Parse(format!("{e:?}")))?;
        Self::from_json(&json)
    }

    /// Checks the checkpoint against the run configuration it is about
    /// to continue. Seed, budget, and population capacity must match —
    /// a resumed run with different hyperparameters would silently
    /// diverge from the original.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] naming the first
    /// disagreeing field.
    pub fn validate(&self, config: &EvolutionConfig) -> Result<(), CheckpointError> {
        let check = |name: &str, got: u64, want: u64| {
            if got == want {
                Ok(())
            } else {
                Err(CheckpointError::Mismatch(format!(
                    "{name}: checkpoint has {got}, run configured with {want}"
                )))
            }
        };
        check("seed", self.seed, config.seed)?;
        check("evaluations", self.evaluations as u64, config.evaluations as u64)?;
        check(
            "population",
            self.population_cap as u64,
            config.population as u64,
        )?;
        if self.trace.len() > self.evaluations {
            return Err(CheckpointError::Mismatch(format!(
                "trace has {} entries but the budget is {}",
                self.trace.len(),
                self.evaluations
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> CandidateGenome {
        CandidateGenome {
            nna: NnaGenome {
                layers: vec![
                    LayerGene {
                        neurons: 128,
                        activation: Activation::Relu,
                        bias: true,
                    },
                    LayerGene {
                        neurons: 64,
                        activation: Activation::Tanh,
                        bias: false,
                    },
                ],
            },
            hw: HwGenome::FpgaGrid {
                rows: 8,
                cols: 16,
                interleave_m: 4,
                interleave_n: 2,
                vec: 8,
                batch: 16,
            },
        }
    }

    fn measurement() -> Measurement {
        Measurement {
            accuracy: 0.9371,
            train_accuracy: 0.9644,
            params: 12345,
            neurons: 192,
            hw: HwMetrics::Fpga {
                outputs_per_s: 123456.789,
                efficiency: 0.731,
                latency_s: 3.2e-4,
                potential_gflops: 800.5,
                effective_gflops: 585.2,
                bandwidth_bound: true,
                power_w: 29.3,
                fmax_mhz: 303.0,
                dsp_util: 0.42,
            },
            eval_time_s: 0.812,
            train_time_s: 0.7,
            hw_time_s: 0.1,
        }
    }

    fn state() -> CheckpointState {
        CheckpointState {
            version: FORMAT_VERSION,
            seed: 0xdead_beef_0123_4567,
            evaluations: 100,
            population_cap: 16,
            rng_state: 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210,
            rng_inc: 0x1111_2222_3333_4444_5555_6666_7777_8889,
            submitted_unique: 40,
            attempts: 55,
            next_id: 42,
            cache_hits: 15,
            infeasible_count: 3,
            retry_count: 2,
            timeout_count: 1,
            respawn_count: 1,
            op_counters: [(12, 12), (3, 2), (10, 4), (15, 7)],
            total_eval_time_s: 31.25,
            train_time_s: 28.5,
            hw_time_s: 2.5,
            wall_time_s: 35.0,
            seeds_remaining: vec![genome()],
            population: vec![(genome(), measurement())],
            trace: vec![
                (genome(), measurement()),
                (
                    genome(),
                    Measurement::infeasible(InfeasibleReason::EvalTimeout),
                ),
                (
                    genome(),
                    Measurement::infeasible(InfeasibleReason::Transient("io".into())),
                ),
            ],
            cache: vec![(genome().cache_key(), measurement())],
            pending: vec![PendingJob {
                attempt: 1,
                genome: genome(),
                op: OperatorKind::Mutate,
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = state();
        let json = s.to_json();
        let back = CheckpointState::from_json(&json).unwrap();
        assert_eq!(s, back);
        // And through the serializer: text -> parse -> decode.
        let reparsed = Json::parse(&json.to_string()).unwrap();
        assert_eq!(CheckpointState::from_json(&reparsed).unwrap(), s);
    }

    #[test]
    fn hex_fields_survive_beyond_f64_precision() {
        let s = state();
        let back =
            CheckpointState::from_json(&Json::parse(&s.to_json().pretty()).unwrap()).unwrap();
        // 128-bit RNG state and 64-bit FNV keys exceed f64's 2^53
        // integer range; hex strings carry them exactly.
        assert_eq!(back.rng_state, s.rng_state);
        assert_eq!(back.rng_inc, s.rng_inc);
        assert_eq!(back.cache[0].0, s.cache[0].0);
        assert_eq!(back.seed, s.seed);
    }

    #[test]
    fn save_load_round_trip_and_atomicity() {
        let dir = std::env::temp_dir().join("ecad-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let s = state();
        s.save(&path).unwrap();
        assert_eq!(CheckpointState::load(&path).unwrap(), s);
        // The temp file never survives a successful save.
        assert!(!path.with_extension("tmp").exists());
        // Overwriting is atomic: a second save replaces the first.
        let mut s2 = s.clone();
        s2.next_id = 99;
        s2.save(&path).unwrap();
        assert_eq!(CheckpointState::load(&path).unwrap().next_id, 99);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn validate_rejects_mismatched_config() {
        let s = state();
        let mut cfg = EvolutionConfig::small();
        cfg.seed = s.seed;
        cfg.evaluations = s.evaluations;
        cfg.population = s.population_cap;
        assert!(s.validate(&cfg).is_ok());
        cfg.seed ^= 1;
        assert!(matches!(
            s.validate(&cfg),
            Err(CheckpointError::Mismatch(_))
        ));
    }

    #[test]
    fn schema_errors_name_the_field() {
        let mut json = state().to_json();
        // Corrupt the version.
        json = match json {
            Json::Object(mut fields) => {
                for (k, v) in fields.iter_mut() {
                    if k == "rng_inc" {
                        *v = Json::String("2".into()); // even => invalid
                    }
                }
                Json::Object(fields)
            }
            _ => unreachable!(),
        };
        let err = CheckpointState::from_json(&json).unwrap_err();
        assert!(matches!(err, CheckpointError::Schema(_)));
        assert!(err.to_string().contains("rng_inc"));
    }

    #[test]
    fn version_guard() {
        let json = Json::object().insert("version", 999);
        let err = CheckpointState::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("version"));
    }
}
