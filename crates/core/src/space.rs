//! The bounded search space and its genetic operators.
//!
//! "This 'grid' architecture has various design space variables that we
//! allow mutations to take place on" (§III-C). The space bounds every
//! gene, supplies random sampling for the initial population, and the
//! mutation / crossover operators of the steady-state process. All
//! operators are *closed*: they can only produce genomes inside the
//! space, which a property test pins down.

use ecad_mlp::Activation;
use rt::rand::seq::SliceRandom;
use rt::rand::Rng;

use crate::genome::{CandidateGenome, HwGenome, LayerGene, NnaGenome};

/// Which hardware family a search explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwFamily {
    /// FPGA systolic grid genes.
    Fpga,
    /// GPU batch genes.
    Gpu,
}

/// Bounds and choice sets for every gene.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchSpace {
    /// Hardware family being searched.
    pub family: HwFamily,
    /// Minimum hidden layers (0 allows a pure softmax classifier).
    pub min_layers: usize,
    /// Maximum hidden layers.
    pub max_layers: usize,
    /// Minimum neurons per hidden layer.
    pub min_neurons: usize,
    /// Maximum neurons per hidden layer.
    pub max_neurons: usize,
    /// Allowed activations.
    pub activations: Vec<Activation>,
    /// Allowed grid row/column counts (FPGA).
    pub grid_dims: Vec<u32>,
    /// Allowed interleave depths (FPGA).
    pub interleaves: Vec<u32>,
    /// Allowed PE vector widths (FPGA).
    pub vec_widths: Vec<u32>,
    /// Allowed inference batch sizes.
    pub batches: Vec<u32>,
}

impl SearchSpace {
    /// The paper-flavoured default space for an FPGA search: up to 4
    /// hidden layers of 4–512 neurons, power-of-two grid genes sized for
    /// an Arria 10 / Stratix 10, batches 1–256.
    pub fn fpga_default() -> Self {
        Self {
            family: HwFamily::Fpga,
            min_layers: 1,
            max_layers: 4,
            min_neurons: 4,
            max_neurons: 512,
            activations: Activation::ALL.to_vec(),
            grid_dims: vec![1, 2, 4, 8, 16],
            interleaves: vec![1, 2, 4, 8, 16, 32],
            vec_widths: vec![1, 2, 4, 8, 16],
            batches: vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
        }
    }

    /// Default space for a GPU search: same NNA genes, larger batches
    /// (GPUs want a large `m`, §III-D; capped at 1024, a realistic
    /// serving batch for the TF-profiled flow the paper measures).
    pub fn gpu_default() -> Self {
        Self {
            family: HwFamily::Gpu,
            batches: vec![32, 64, 128, 256, 512, 1024],
            ..Self::fpga_default()
        }
    }

    /// Restricts layer width (e.g. for tiny datasets).
    pub fn with_neurons(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid neuron bounds");
        self.min_neurons = min;
        self.max_neurons = max;
        self
    }

    /// Restricts depth.
    pub fn with_layers(mut self, min: usize, max: usize) -> Self {
        assert!(min <= max, "invalid layer bounds");
        self.min_layers = min;
        self.max_layers = max;
        self
    }

    /// Samples a uniformly random genome from the space.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> CandidateGenome {
        let depth = rng.gen_range(self.min_layers..=self.max_layers);
        let layers = (0..depth).map(|_| self.sample_layer(rng)).collect();
        CandidateGenome {
            nna: NnaGenome { layers },
            hw: self.sample_hw(rng),
        }
    }

    fn sample_layer<R: Rng + ?Sized>(&self, rng: &mut R) -> LayerGene {
        LayerGene {
            neurons: rng.gen_range(self.min_neurons..=self.max_neurons),
            activation: *self
                .activations
                .choose(rng)
                .expect("activations must be non-empty"),
            bias: rng.gen(),
        }
    }

    fn sample_hw<R: Rng + ?Sized>(&self, rng: &mut R) -> HwGenome {
        match self.family {
            HwFamily::Fpga => HwGenome::FpgaGrid {
                rows: *self.grid_dims.choose(rng).expect("grid_dims non-empty"),
                cols: *self.grid_dims.choose(rng).expect("grid_dims non-empty"),
                interleave_m: *self.interleaves.choose(rng).expect("interleaves non-empty"),
                interleave_n: *self.interleaves.choose(rng).expect("interleaves non-empty"),
                vec: *self.vec_widths.choose(rng).expect("vec_widths non-empty"),
                batch: *self.batches.choose(rng).expect("batches non-empty"),
            },
            HwFamily::Gpu => HwGenome::GpuBatch {
                batch: *self.batches.choose(rng).expect("batches non-empty"),
            },
        }
    }

    /// Mutates one randomly chosen gene, returning a new genome.
    ///
    /// Moves: add/remove a layer, re-width a layer (geometric step),
    /// flip its activation or bias, or step one hardware gene to a
    /// neighbouring choice.
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        genome: &CandidateGenome,
        rng: &mut R,
    ) -> CandidateGenome {
        let mut g = genome.clone();
        // 60% of mutations touch the NNA, 40% the hardware — both halves
        // of the co-design space stay in motion.
        if rng.gen_bool(0.6) {
            self.mutate_nna(&mut g.nna, rng);
        } else {
            g.hw = self.mutate_hw(&g.hw, rng);
        }
        g
    }

    fn mutate_nna<R: Rng + ?Sized>(&self, nna: &mut NnaGenome, rng: &mut R) {
        let can_add = nna.layers.len() < self.max_layers;
        let can_remove = nna.layers.len() > self.min_layers;
        let op = rng.gen_range(0..5);
        match op {
            0 if can_add => {
                let at = rng.gen_range(0..=nna.layers.len());
                nna.layers.insert(at, self.sample_layer(rng));
            }
            1 if can_remove => {
                let at = rng.gen_range(0..nna.layers.len());
                nna.layers.remove(at);
            }
            _ => {
                if nna.layers.is_empty() {
                    if can_add {
                        nna.layers.push(self.sample_layer(rng));
                    }
                    return;
                }
                let at = rng.gen_range(0..nna.layers.len());
                let layer = &mut nna.layers[at];
                match rng.gen_range(0..3) {
                    0 => {
                        // Geometric re-width: scale by a factor in
                        // [0.5, 2.0], clamped into bounds.
                        let factor = rng.gen_range(0.5f64..2.0);
                        let w = ((layer.neurons as f64 * factor).round() as usize)
                            .clamp(self.min_neurons, self.max_neurons);
                        layer.neurons = w;
                    }
                    1 => {
                        layer.activation =
                            *self.activations.choose(rng).expect("activations non-empty");
                    }
                    _ => layer.bias = !layer.bias,
                }
            }
        }
    }

    fn mutate_hw<R: Rng + ?Sized>(&self, hw: &HwGenome, rng: &mut R) -> HwGenome {
        fn step<R: Rng + ?Sized>(choices: &[u32], current: u32, rng: &mut R) -> u32 {
            let idx = choices.iter().position(|&c| c == current).unwrap_or(0);
            let next = if rng.gen() {
                idx.saturating_sub(1)
            } else {
                (idx + 1).min(choices.len() - 1)
            };
            choices[next]
        }
        match *hw {
            HwGenome::FpgaGrid {
                rows,
                cols,
                interleave_m,
                interleave_n,
                vec,
                batch,
            } => {
                let mut g = HwGenome::FpgaGrid {
                    rows,
                    cols,
                    interleave_m,
                    interleave_n,
                    vec,
                    batch,
                };
                if let HwGenome::FpgaGrid {
                    ref mut rows,
                    ref mut cols,
                    ref mut interleave_m,
                    ref mut interleave_n,
                    ref mut vec,
                    ref mut batch,
                } = g
                {
                    match rng.gen_range(0..6) {
                        0 => *rows = step(&self.grid_dims, *rows, rng),
                        1 => *cols = step(&self.grid_dims, *cols, rng),
                        2 => *interleave_m = step(&self.interleaves, *interleave_m, rng),
                        3 => *interleave_n = step(&self.interleaves, *interleave_n, rng),
                        4 => *vec = step(&self.vec_widths, *vec, rng),
                        _ => *batch = step(&self.batches, *batch, rng),
                    }
                }
                g
            }
            HwGenome::GpuBatch { batch } => HwGenome::GpuBatch {
                batch: step(&self.batches, batch, rng),
            },
        }
    }

    /// One-point crossover on the layer lists plus a uniform pick of the
    /// hardware genes.
    pub fn crossover<R: Rng + ?Sized>(
        &self,
        a: &CandidateGenome,
        b: &CandidateGenome,
        rng: &mut R,
    ) -> CandidateGenome {
        let cut_a = rng.gen_range(0..=a.nna.layers.len());
        let cut_b = rng.gen_range(0..=b.nna.layers.len());
        let mut layers: Vec<LayerGene> = a.nna.layers[..cut_a]
            .iter()
            .chain(&b.nna.layers[cut_b..])
            .copied()
            .collect();
        // Clamp depth into bounds; refill if the cut produced too few.
        layers.truncate(self.max_layers);
        while layers.len() < self.min_layers {
            layers.push(self.sample_layer(rng));
        }
        CandidateGenome {
            nna: NnaGenome { layers },
            hw: if rng.gen() { a.hw } else { b.hw },
        }
    }

    /// Whether `genome` lies inside this space's bounds.
    pub fn contains(&self, genome: &CandidateGenome) -> bool {
        let depth_ok = (self.min_layers..=self.max_layers).contains(&genome.nna.layers.len());
        let layers_ok = genome.nna.layers.iter().all(|l| {
            (self.min_neurons..=self.max_neurons).contains(&l.neurons)
                && self.activations.contains(&l.activation)
        });
        let hw_ok = match genome.hw {
            HwGenome::FpgaGrid {
                rows,
                cols,
                interleave_m,
                interleave_n,
                vec,
                batch,
            } => {
                self.family == HwFamily::Fpga
                    && self.grid_dims.contains(&rows)
                    && self.grid_dims.contains(&cols)
                    && self.interleaves.contains(&interleave_m)
                    && self.interleaves.contains(&interleave_n)
                    && self.vec_widths.contains(&vec)
                    && self.batches.contains(&batch)
            }
            HwGenome::GpuBatch { batch } => {
                self.family == HwFamily::Gpu && self.batches.contains(&batch)
            }
        };
        depth_ok && layers_ok && hw_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    #[test]
    fn sample_stays_in_space() {
        let mut rng = StdRng::seed_from_u64(0);
        for space in [SearchSpace::fpga_default(), SearchSpace::gpu_default()] {
            for _ in 0..200 {
                let g = space.sample(&mut rng);
                assert!(space.contains(&g), "{}", g.describe());
            }
        }
    }

    #[test]
    fn mutation_is_closed() {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = space.sample(&mut rng);
        for _ in 0..500 {
            g = space.mutate(&g, &mut rng);
            assert!(space.contains(&g), "escaped: {}", g.describe());
        }
    }

    #[test]
    fn mutation_changes_something_usually() {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(2);
        let g = space.sample(&mut rng);
        let changed = (0..100).filter(|_| space.mutate(&g, &mut rng) != g).count();
        assert!(
            changed > 70,
            "only {changed}/100 mutations changed the genome"
        );
    }

    #[test]
    fn crossover_is_closed() {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let a = space.sample(&mut rng);
            let b = space.sample(&mut rng);
            let c = space.crossover(&a, &b, &mut rng);
            assert!(space.contains(&c), "{}", c.describe());
        }
    }

    #[test]
    fn crossover_inherits_hw_from_a_parent() {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(4);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        for _ in 0..20 {
            let c = space.crossover(&a, &b, &mut rng);
            assert!(c.hw == a.hw || c.hw == b.hw);
        }
    }

    #[test]
    fn gpu_space_samples_gpu_genomes() {
        let space = SearchSpace::gpu_default();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert!(!space.sample(&mut rng).hw.is_fpga());
        }
    }

    #[test]
    fn with_bounds_builders() {
        let space = SearchSpace::fpga_default()
            .with_neurons(8, 64)
            .with_layers(2, 3);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let g = space.sample(&mut rng);
            assert!((2..=3).contains(&g.nna.layers.len()));
            assert!(g.nna.layers.iter().all(|l| (8..=64).contains(&l.neurons)));
        }
    }

    #[test]
    #[should_panic(expected = "invalid neuron bounds")]
    fn bad_neuron_bounds_rejected() {
        let _ = SearchSpace::fpga_default().with_neurons(10, 5);
    }

    #[test]
    fn contains_rejects_cross_family() {
        let fpga = SearchSpace::fpga_default();
        let gpu = SearchSpace::gpu_default();
        let mut rng = StdRng::seed_from_u64(7);
        let g = gpu.sample(&mut rng);
        assert!(!fpga.contains(&g));
    }
}
