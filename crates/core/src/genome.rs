//! Co-design candidate genomes.
//!
//! "The ECAD Evolutionary process ... generates a population of
//! NNA/Hardware co-design candidates each with a complete set of
//! parameters that effect both the accuracy and the hardware
//! performance. The parameters we considered during our searches
//! included number of layers, layer size, activation function, and
//! bias." (§III-A)

use ecad_mlp::{Activation, LayerSpec, MlpTopology};

/// The network half of a candidate: an ordered list of hidden-layer
/// genes. Input width and class count come from the dataset, so they are
/// not part of the genome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NnaGenome {
    /// Hidden layers, in order.
    pub layers: Vec<LayerGene>,
}

/// One hidden layer's genes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerGene {
    /// Neuron count.
    pub neurons: usize,
    /// Activation function.
    pub activation: Activation,
    /// Whether the layer carries a bias vector.
    pub bias: bool,
}

impl NnaGenome {
    /// Builds the concrete topology for a dataset with `input` features
    /// and `n_classes` classes.
    pub fn to_topology(&self, input: usize, n_classes: usize) -> MlpTopology {
        let mut b = MlpTopology::builder(input, n_classes);
        for l in &self.layers {
            b = b.layer(LayerSpec::new(l.neurons, l.activation, l.bias));
        }
        b.build()
    }

    /// Total hidden neurons (the paper's network-size axis).
    pub fn total_neurons(&self) -> usize {
        self.layers.iter().map(|l| l.neurons).sum()
    }

    /// Compact stable description used for hashing and logs,
    /// e.g. `128r+b/64t`.
    pub fn describe(&self) -> String {
        let parts: Vec<String> = self
            .layers
            .iter()
            .map(|l| {
                format!(
                    "{}{}{}",
                    l.neurons,
                    &l.activation.name()[..1],
                    if l.bias { "+b" } else { "" }
                )
            })
            .collect();
        parts.join("/")
    }
}

/// The hardware half of a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwGenome {
    /// An FPGA systolic-grid configuration (§III-C) plus inference batch.
    FpgaGrid {
        /// PE rows.
        rows: u32,
        /// PE columns.
        cols: u32,
        /// Row interleave (double-buffer depth).
        interleave_m: u32,
        /// Column interleave.
        interleave_n: u32,
        /// PE vector width.
        vec: u32,
        /// Inference batch (the GEMM `m`); FPGAs favour small batches
        /// ("Our design for FPGA does not need to increase batching",
        /// §III-D).
        batch: u32,
    },
    /// A GPU target, whose only knob is the batch size ("Architectures
    /// such as GPU typically batch with a larger M dimension", §III-D).
    GpuBatch {
        /// Inference batch.
        batch: u32,
    },
}

impl HwGenome {
    /// Inference batch size (GEMM `m` dimension).
    pub fn batch(&self) -> u32 {
        match *self {
            HwGenome::FpgaGrid { batch, .. } => batch,
            HwGenome::GpuBatch { batch } => batch,
        }
    }

    /// Whether this genome targets an FPGA.
    pub fn is_fpga(&self) -> bool {
        matches!(self, HwGenome::FpgaGrid { .. })
    }

    /// Compact stable description, e.g. `fpga:8x8x4,il4x4,b16` or
    /// `gpu:b256`.
    pub fn describe(&self) -> String {
        match *self {
            HwGenome::FpgaGrid {
                rows,
                cols,
                interleave_m,
                interleave_n,
                vec,
                batch,
            } => format!("fpga:{rows}x{cols}x{vec},il{interleave_m}x{interleave_n},b{batch}"),
            HwGenome::GpuBatch { batch } => format!("gpu:b{batch}"),
        }
    }
}

/// A complete co-design candidate: NNA genes + hardware genes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CandidateGenome {
    /// Network genes.
    pub nna: NnaGenome,
    /// Hardware genes.
    pub hw: HwGenome,
}

impl CandidateGenome {
    /// Stable 64-bit key for the dedup cache (FNV-1a over the canonical
    /// description). Two genomes with identical phenotypes hash equal.
    pub fn cache_key(&self) -> u64 {
        let desc = self.describe();
        let mut h: u64 = 0xcbf29ce484222325;
        for b in desc.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Canonical description: `<nna>|<hw>`.
    pub fn describe(&self) -> String {
        format!("{}|{}", self.nna.describe(), self.hw.describe())
    }
}

impl std::fmt::Display for CandidateGenome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> CandidateGenome {
        CandidateGenome {
            nna: NnaGenome {
                layers: vec![
                    LayerGene {
                        neurons: 128,
                        activation: Activation::Relu,
                        bias: true,
                    },
                    LayerGene {
                        neurons: 64,
                        activation: Activation::Tanh,
                        bias: false,
                    },
                ],
            },
            hw: HwGenome::FpgaGrid {
                rows: 8,
                cols: 8,
                interleave_m: 4,
                interleave_n: 4,
                vec: 8,
                batch: 16,
            },
        }
    }

    #[test]
    fn topology_matches_genes() {
        let t = genome().nna.to_topology(784, 10);
        assert_eq!(t.input(), 784);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.hidden()[0].neurons, 128);
        assert_eq!(t.n_classes(), 10);
    }

    #[test]
    fn describe_is_stable() {
        assert_eq!(genome().describe(), "128r+b/64t|fpga:8x8x8,il4x4,b16");
    }

    #[test]
    fn cache_key_distinguishes_genomes() {
        let a = genome();
        let mut b = genome();
        b.hw = HwGenome::GpuBatch { batch: 256 };
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key(), genome().cache_key());
    }

    #[test]
    fn cache_key_sensitive_to_every_gene() {
        let base = genome();
        let mut variants = Vec::new();
        let mut v1 = base.clone();
        v1.nna.layers[0].neurons = 129;
        variants.push(v1);
        let mut v2 = base.clone();
        v2.nna.layers[1].bias = true;
        variants.push(v2);
        let mut v3 = base.clone();
        v3.nna.layers[0].activation = Activation::Sigmoid;
        variants.push(v3);
        if let HwGenome::FpgaGrid { ref mut vec, .. } = base.clone().hw {
            let mut v4 = base.clone();
            if let HwGenome::FpgaGrid {
                vec: ref mut vv, ..
            } = v4.hw
            {
                *vv = *vec * 2;
            }
            variants.push(v4);
        }
        for v in variants {
            assert_ne!(v.cache_key(), base.cache_key(), "{}", v.describe());
        }
    }

    #[test]
    fn batch_accessor_covers_both_targets() {
        assert_eq!(genome().hw.batch(), 16);
        assert_eq!(HwGenome::GpuBatch { batch: 512 }.batch(), 512);
    }

    #[test]
    fn total_neurons() {
        assert_eq!(genome().nna.total_neurons(), 192);
    }

    #[test]
    fn display_equals_describe() {
        let g = genome();
        assert_eq!(g.to_string(), g.describe());
    }
}
