//! Deterministic fault injection for exercising the engine's
//! fault-tolerance machinery (deadlines, retries, worker respawns).
//!
//! [`FaultyEvaluator`] wraps any [`Evaluator`] and perturbs calls
//! according to a [`FaultSchedule`] keyed by **global call index** (the
//! order in which evaluations are handed to workers). With a
//! single-threaded engine the call order is deterministic, so a test
//! can inject "panic on call 3, stall on call 7, transient on call 11"
//! and assert the engine's retry/timeout/respawn counters match the
//! schedule exactly. Schedules can also be drawn from a seeded RNG for
//! soak-style coverage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use rt::rand::{rngs::StdRng, Rng, SeedableRng};

use crate::genome::CandidateGenome;
use crate::measurement::{InfeasibleReason, Measurement};
use crate::workers::Evaluator;

/// The perturbation applied to one evaluation call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker body (exercises catch + slot restart).
    Panic,
    /// Sleep this long before evaluating normally (exercises the
    /// per-evaluation deadline and stalled-slot respawn when the sleep
    /// exceeds `eval_timeout`).
    Stall(Duration),
    /// Return a [`InfeasibleReason::Transient`] verdict (exercises the
    /// retry-with-backoff path).
    Transient,
}

/// A call-index → fault mapping. Indices count every `evaluate` call
/// the wrapper sees, starting at 0; unlisted calls pass through
/// untouched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    faults: BTreeMap<usize, FaultKind>,
}

impl FaultSchedule {
    /// An empty schedule: every call passes through.
    pub fn new() -> Self {
        Self::default()
    }

    /// Injects `kind` at global call index `index` (builder-style).
    pub fn at(mut self, index: usize, kind: FaultKind) -> Self {
        self.faults.insert(index, kind);
        self
    }

    /// Draws a schedule from a seeded RNG: each call index in
    /// `0..horizon` independently suffers a fault with probability
    /// `rate`, split evenly between panics, stalls (of `stall` length),
    /// and transients. Deterministic for a given `(seed, horizon,
    /// rate)`.
    pub fn seeded(seed: u64, horizon: usize, rate: f64, stall: Duration) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa_017);
        let mut faults = BTreeMap::new();
        for index in 0..horizon {
            if rng.gen::<f64>() < rate {
                let kind = match rng.gen_range(0..3u32) {
                    0 => FaultKind::Panic,
                    1 => FaultKind::Stall(stall),
                    _ => FaultKind::Transient,
                };
                faults.insert(index, kind);
            }
        }
        Self { faults }
    }

    /// The fault planned for call `index`, if any.
    pub fn fault_at(&self, index: usize) -> Option<FaultKind> {
        self.faults.get(&index).copied()
    }

    /// Planned fault counts as `(panics, stalls, transients)` — what a
    /// test should expect the engine's counters to reflect, assuming
    /// every scheduled index is actually reached.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for kind in self.faults.values() {
            match kind {
                FaultKind::Panic => c.0 += 1,
                FaultKind::Stall(_) => c.1 += 1,
                FaultKind::Transient => c.2 += 1,
            }
        }
        c
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// An [`Evaluator`] decorator that injects faults per a
/// [`FaultSchedule`]. Thread-safe; the call counter is a process-wide
/// atomic on the wrapper instance.
pub struct FaultyEvaluator {
    inner: Arc<dyn Evaluator>,
    schedule: FaultSchedule,
    calls: AtomicUsize,
}

impl FaultyEvaluator {
    /// Wraps `inner`, perturbing calls per `schedule`.
    pub fn new(inner: Arc<dyn Evaluator>, schedule: FaultSchedule) -> Self {
        Self {
            inner,
            schedule,
            calls: AtomicUsize::new(0),
        }
    }

    /// Total `evaluate` calls observed so far (including faulted ones).
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// The schedule this wrapper injects.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }
}

impl Evaluator for FaultyEvaluator {
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
        let index = self.calls.fetch_add(1, Ordering::SeqCst);
        match self.schedule.fault_at(index) {
            Some(FaultKind::Panic) => panic!("injected fault: panic at call {index}"),
            Some(FaultKind::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.evaluate(genome)
            }
            Some(FaultKind::Transient) => Measurement::infeasible(
                InfeasibleReason::Transient(format!("injected fault at call {index}")),
            ),
            None => self.inner.evaluate(genome),
        }
    }

    fn target_name(&self) -> String {
        self.inner.target_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{HwGenome, LayerGene, NnaGenome};
    use crate::measurement::{FailureKind, HwMetrics};
    use ecad_mlp::Activation;

    struct Ok9;
    impl Evaluator for Ok9 {
        fn evaluate(&self, _genome: &CandidateGenome) -> Measurement {
            Measurement {
                accuracy: 0.9,
                train_accuracy: 0.9,
                params: 10,
                neurons: 8,
                hw: HwMetrics::Gpu {
                    outputs_per_s: 1e5,
                    efficiency: 0.1,
                    latency_s: 1e-4,
                    effective_gflops: 10.0,
                    power_w: 50.0,
                },
                eval_time_s: 0.01,
                train_time_s: 0.008,
                hw_time_s: 0.002,
            }
        }
        fn target_name(&self) -> String {
            "ok9".into()
        }
    }

    fn genome() -> CandidateGenome {
        CandidateGenome {
            nna: NnaGenome {
                layers: vec![LayerGene {
                    neurons: 8,
                    activation: Activation::Relu,
                    bias: true,
                }],
            },
            hw: HwGenome::GpuBatch { batch: 4 },
        }
    }

    #[test]
    fn schedule_drives_call_indices() {
        let schedule = FaultSchedule::new()
            .at(1, FaultKind::Transient)
            .at(3, FaultKind::Stall(Duration::from_millis(1)));
        let eval = FaultyEvaluator::new(Arc::new(Ok9), schedule);
        let g = genome();
        assert!(eval.evaluate(&g).hw.is_feasible()); // call 0: clean
        let m = eval.evaluate(&g); // call 1: transient
        assert_eq!(m.failure_kind(), Some(FailureKind::Transient));
        assert!(eval.evaluate(&g).hw.is_feasible()); // call 2: clean
        assert!(eval.evaluate(&g).hw.is_feasible()); // call 3: stalls then succeeds
        assert_eq!(eval.calls(), 4);
    }

    #[test]
    fn injected_panic_propagates() {
        let eval = FaultyEvaluator::new(
            Arc::new(Ok9),
            FaultSchedule::new().at(0, FaultKind::Panic),
        );
        let g = genome();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval.evaluate(&g)
        }));
        assert!(err.is_err());
        // Subsequent calls pass through.
        assert!(eval.evaluate(&g).hw.is_feasible());
    }

    #[test]
    fn seeded_schedule_is_deterministic_and_counted() {
        let a = FaultSchedule::seeded(7, 100, 0.3, Duration::from_millis(2));
        let b = FaultSchedule::seeded(7, 100, 0.3, Duration::from_millis(2));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let (p, s, t) = a.counts();
        assert_eq!(p + s + t, a.len());
        // A different seed gives a different plan.
        let c = FaultSchedule::seeded(8, 100, 0.3, Duration::from_millis(2));
        assert_ne!(a, c);
    }
}
