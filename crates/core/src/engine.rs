//! The ECAD master process: steady-state evolution over a worker pool.
//!
//! "The Master process orchestrates the evaluation process by
//! distributing the co-design population and by evaluating the results"
//! (§III-A). The engine here is that master:
//!
//! * a **steady-state** population model \[16\]: one child is bred and
//!   one member replaced per step, rather than generational sweeps;
//! * **tournament selection** for parents and worst-of-tournament
//!   replacement for survivors;
//! * a **worker pool** over `rt::sync` channels — each worker thread owns
//!   a shared [`Evaluator`] and scores candidates concurrently;
//! * a **dedup cache**: "potential NNA/HW candidates are first analyzed
//!   for similarities to previous evaluations and duplicates are not
//!   evaluated twice" (Table III note). Cache hits cost no evaluation
//!   budget;
//! * **failure isolation**: a panicking evaluation is caught in the
//!   worker and surfaces as an infeasible measurement, not a crashed
//!   search.
//!
//! With `threads = 1` the whole search is deterministic for a fixed
//! seed; more threads trade determinism for wall-clock speed (result
//! arrival order feeds back into breeding).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use rt::obs::Obs;
use rt::sync::channel;
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, SeedableRng};

use crate::fitness::ObjectiveSet;
use crate::genome::CandidateGenome;
use crate::measurement::{InfeasibleReason, Measurement};
use crate::space::SearchSpace;
use crate::workers::Evaluator;

/// How the steady-state loop selects survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Weighted-sum scalarization of the objective set (the paper's
    /// configuration-file fitness path). Cheap and effective when the
    /// weights express the intended trade.
    WeightedScalar,
    /// NSGA-II style survival: the child joins the population, then the
    /// individual with the worst (non-domination rank, crowding
    /// distance) is evicted. Maintains a diverse Pareto frontier without
    /// hand-tuned weights — an extension of the paper's Pareto analysis
    /// into the selection loop itself.
    Nsga2,
}

/// Steady-state GA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Population size.
    pub population: usize,
    /// Budget of *unique* model evaluations (cache hits are free),
    /// including the initial population.
    pub evaluations: usize,
    /// Tournament size for selection and replacement.
    pub tournament: usize,
    /// Probability a child is produced by crossover (otherwise a mutated
    /// copy of one parent).
    pub crossover_rate: f64,
    /// RNG seed for the whole search.
    pub seed: u64,
    /// Worker threads. `1` gives a deterministic search.
    pub threads: usize,
    /// Survivor-selection strategy.
    pub selection: SelectionMode,
}

impl EvolutionConfig {
    /// Small-budget defaults suitable for interactive runs.
    pub fn small() -> Self {
        Self {
            population: 16,
            evaluations: 120,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 0,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
        }
    }
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// An evaluated candidate as held in the population and trace.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate's genes.
    pub genome: CandidateGenome,
    /// Raw worker measurement.
    pub measurement: Measurement,
    /// Scalarized fitness (larger is better).
    pub fitness: f64,
}

/// Run-time statistics in the shape of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineStats {
    /// Unique NNA/HW combinations evaluated.
    pub models_evaluated: usize,
    /// Candidates served from the dedup cache instead of re-evaluating.
    pub cache_hits: usize,
    /// Sum of per-evaluation times, seconds (Table III "Total Evaluation
    /// Time").
    pub total_eval_time_s: f64,
    /// Mean per-evaluation time, seconds (Table III "AVG Model
    /// Evaluation Time").
    pub avg_eval_time_s: f64,
    /// Wall-clock time of the whole search, seconds.
    pub wall_time_s: f64,
    /// Unique evaluations that came back infeasible (device-fit,
    /// training failure, target mismatch, or worker panic).
    pub infeasible_count: usize,
    /// Sum of per-evaluation seconds spent in the simulation worker's
    /// training stage.
    pub train_time_s: f64,
    /// Sum of per-evaluation seconds spent in the hardware models.
    pub hw_time_s: f64,
}

/// Everything a finished search produces.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Final population, unsorted.
    pub population: Vec<Evaluated>,
    /// Every unique evaluation, in completion order — the raw material
    /// for the paper's scatter plots and Pareto fronts.
    pub trace: Vec<Evaluated>,
    /// Run-time statistics.
    pub stats: EngineStats,
}

impl EngineOutcome {
    /// The member with the highest scalar fitness.
    pub fn best(&self) -> Option<&Evaluated> {
        self.trace.iter().max_by(|a, b| {
            a.fitness
                .partial_cmp(&b.fitness)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// The steady-state evolutionary engine.
pub struct Engine {
    evaluator: Arc<dyn Evaluator>,
    space: SearchSpace,
    objectives: ObjectiveSet,
    config: EvolutionConfig,
    obs: Obs,
}

impl Engine {
    /// Safety valve: stop generating children after this many multiples
    /// of the evaluation budget, in case mutation keeps producing cached
    /// duplicates.
    const MAX_ATTEMPT_FACTOR: usize = 50;

    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the population, evaluations, tournament size, or thread
    /// count is zero.
    pub fn new(
        evaluator: Arc<dyn Evaluator>,
        space: SearchSpace,
        objectives: ObjectiveSet,
        config: EvolutionConfig,
    ) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.evaluations > 0, "evaluation budget must be positive");
        assert!(config.tournament > 0, "tournament size must be positive");
        assert!(config.threads > 0, "need at least one worker thread");
        Self {
            evaluator,
            space,
            objectives,
            config,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle. Every master-loop decision
    /// (breeding, cache hits, tournament and replacement picks) and
    /// per-evaluation outcome is narrated through it as structured
    /// events, and the run's counters and timing histograms land in its
    /// metrics registry. Disabled by default.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Runs the search to budget exhaustion.
    pub fn run(&self) -> EngineOutcome {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let cfg = self.config;

        rt::info!(
            self.obs,
            "search_start",
            target = self.evaluator.target_name(),
            population = cfg.population,
            evaluations = cfg.evaluations,
            tournament = cfg.tournament,
            seed = cfg.seed,
            threads = cfg.threads,
            selection = match cfg.selection {
                SelectionMode::WeightedScalar => "weighted-scalar",
                SelectionMode::Nsga2 => "nsga2",
            },
        );
        let evaluated_counter = self.obs.counter("engine.models_evaluated");
        let cache_hit_counter = self.obs.counter("engine.cache_hits");
        let infeasible_counter = self.obs.counter("engine.infeasible");
        let eval_hist = self.obs.histogram("engine.eval_time_s");

        let (req_tx, req_rx) = channel::unbounded::<(usize, CandidateGenome)>();
        let (res_tx, res_rx) = channel::unbounded::<(usize, CandidateGenome, Measurement)>();

        let mut population: Vec<Evaluated> = Vec::with_capacity(cfg.population);
        let mut trace: Vec<Evaluated> = Vec::new();
        let mut cache: HashMap<u64, Measurement> = HashMap::new();
        let mut cache_hits = 0usize;
        let mut total_eval_time = 0.0f64;
        let mut infeasible_count = 0usize;
        let mut train_time = 0.0f64;
        let mut hw_time = 0.0f64;

        std::thread::scope(|scope| {
            for worker in 0..cfg.threads {
                let req_rx = req_rx.clone();
                let res_tx = res_tx.clone();
                let evaluator = Arc::clone(&self.evaluator);
                let obs = self.obs.clone();
                scope.spawn(move || {
                    for (id, genome) in req_rx.iter() {
                        let m = {
                            let _span = rt::span!(obs, "evaluate", worker = worker, id = id);
                            catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(&genome)))
                                .unwrap_or_else(|_| {
                                    rt::warn!(
                                        obs,
                                        "infeasible",
                                        stage = "worker",
                                        reason = InfeasibleReason::WorkerPanic.kind(),
                                    );
                                    Measurement::infeasible(InfeasibleReason::WorkerPanic)
                                })
                        };
                        if res_tx.send((id, genome, m)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx); // workers hold the remaining clones

            // Seed genomes for the initial population.
            let mut seeds: Vec<CandidateGenome> = (0..cfg.population.min(cfg.evaluations))
                .map(|_| self.space.sample(&mut rng))
                .collect();
            seeds.reverse(); // pop() takes them in creation order

            let mut submitted_unique = 0usize;
            let mut inflight = 0usize;
            let mut attempts = 0usize;
            let max_attempts = cfg.evaluations * Self::MAX_ATTEMPT_FACTOR;
            let mut next_id = 0usize;

            loop {
                // Fill the in-flight window with fresh candidates.
                while inflight < cfg.threads
                    && submitted_unique < cfg.evaluations
                    && attempts < max_attempts
                {
                    let genome = match seeds.pop() {
                        Some(g) => g,
                        None => self.breed(&population, &mut rng),
                    };
                    attempts += 1;
                    let key = genome.cache_key();
                    if let Some(cached) = cache.get(&key) {
                        // Duplicate: serve from cache, no budget, no
                        // worker round-trip.
                        cache_hits += 1;
                        cache_hit_counter.inc();
                        rt::debug!(self.obs, "cache_hit", key = format!("{key:016x}"));
                        let eval = self.admit(genome, cached.clone(), &mut population, &mut rng);
                        // Cached repeats are not re-appended to the
                        // trace; Table III counts unique models.
                        let _ = eval;
                        continue;
                    }
                    // Emit before handing the genome to the pool: with
                    // one thread the master then blocks on recv, so the
                    // worker's own events always land after this line —
                    // the property that makes seeded traces replayable.
                    rt::debug!(
                        self.obs,
                        "submit",
                        id = next_id,
                        key = format!("{key:016x}"),
                    );
                    // Reserve the cache slot so concurrent duplicates
                    // within the window are caught next time around.
                    req_tx.send((next_id, genome)).expect("workers alive");
                    next_id += 1;
                    submitted_unique += 1;
                    inflight += 1;
                }

                if inflight == 0 {
                    break; // budget exhausted and everything drained
                }

                let (id, genome, measurement) = res_rx.recv().expect("worker pool alive");
                inflight -= 1;
                total_eval_time += measurement.eval_time_s;
                train_time += measurement.train_time_s;
                hw_time += measurement.hw_time_s;
                evaluated_counter.inc();
                eval_hist.record(measurement.eval_time_s);
                if !measurement.hw.is_feasible() {
                    infeasible_count += 1;
                    infeasible_counter.inc();
                }
                cache.insert(genome.cache_key(), measurement.clone());
                let eval = self.admit(genome, measurement, &mut population, &mut rng);
                rt::info!(
                    self.obs,
                    "evaluated",
                    id = id,
                    accuracy = eval.measurement.accuracy,
                    fitness = eval.fitness,
                    feasible = eval.measurement.hw.is_feasible(),
                );
                trace.push(eval);
            }
            drop(req_tx); // shut the pool down
        });

        let models_evaluated = trace.len();
        rt::info!(
            self.obs,
            "search_end",
            models_evaluated = models_evaluated,
            cache_hits = cache_hits,
            infeasible = infeasible_count,
        );
        self.obs.flush();
        let stats = EngineStats {
            models_evaluated,
            cache_hits,
            total_eval_time_s: total_eval_time,
            avg_eval_time_s: if models_evaluated > 0 {
                total_eval_time / models_evaluated as f64
            } else {
                0.0
            },
            wall_time_s: start.elapsed().as_secs_f64(),
            infeasible_count,
            train_time_s: train_time,
            hw_time_s: hw_time,
        };
        EngineOutcome {
            population,
            trace,
            stats,
        }
    }

    /// Scores a measured candidate and inserts it into the population
    /// (steady-state replacement). Returns the evaluated record.
    fn admit(
        &self,
        genome: CandidateGenome,
        measurement: Measurement,
        population: &mut Vec<Evaluated>,
        rng: &mut StdRng,
    ) -> Evaluated {
        let fitness = self.objectives.scalar(&measurement);
        let eval = Evaluated {
            genome,
            measurement,
            fitness,
        };
        if population.len() < self.config.population {
            population.push(eval.clone());
            return eval;
        }
        match self.config.selection {
            SelectionMode::WeightedScalar => {
                // Worst-of-tournament replacement: the child replaces
                // the weakest of `tournament` random members if it
                // beats them.
                let worst_idx = (0..self.config.tournament)
                    .map(|_| rng.gen_range(0..population.len()))
                    .min_by(|&a, &b| {
                        population[a]
                            .fitness
                            .partial_cmp(&population[b].fitness)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("tournament >= 1");
                let replaced = eval.fitness > population[worst_idx].fitness;
                rt::trace!(
                    self.obs,
                    "replace",
                    victim = worst_idx,
                    victim_fitness = population[worst_idx].fitness,
                    replaced = replaced,
                );
                if replaced {
                    population[worst_idx] = eval.clone();
                }
            }
            SelectionMode::Nsga2 => {
                // Child joins, then the (rank, crowding)-worst member
                // is evicted.
                population.push(eval.clone());
                let evict = Self::nsga2_worst(&self.rank_keys(population));
                rt::trace!(self.obs, "replace", victim = evict, replaced = true);
                population.swap_remove(evict);
            }
        }
        eval
    }

    /// Oriented objective vectors for ranking; infeasible candidates map
    /// to `-inf` everywhere so they always land in the last front.
    fn rank_keys(&self, population: &[Evaluated]) -> Vec<Vec<f64>> {
        population
            .iter()
            .map(|e| {
                if e.measurement.hw.is_feasible() {
                    self.objectives.oriented_values(&e.measurement)
                } else {
                    vec![f64::NEG_INFINITY; self.objectives.objectives().len()]
                }
            })
            .collect()
    }

    /// Index of the NSGA-II-worst point: last non-domination front,
    /// lowest crowding distance within it.
    fn nsga2_worst(points: &[Vec<f64>]) -> usize {
        let fronts = crate::pareto::non_dominated_sort(points);
        let last = fronts.last().expect("nonempty population");
        let members: Vec<Vec<f64>> = last.iter().map(|&i| points[i].clone()).collect();
        let crowding = crate::pareto::crowding_distance(&members);
        last.iter()
            .copied()
            .zip(crowding)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("last front nonempty")
    }

    /// Breeds one child from the current population (or samples fresh if
    /// the population is still too small).
    fn breed(&self, population: &[Evaluated], rng: &mut StdRng) -> CandidateGenome {
        if population.len() < 2 {
            rt::trace!(self.obs, "breed", method = "sample");
            return self.space.sample(rng);
        }
        let a = self.tournament_select(population, rng);
        let child = if rng.gen_bool(self.config.crossover_rate) {
            rt::trace!(self.obs, "breed", method = "crossover");
            let b = self.tournament_select(population, rng);
            self.space.crossover(&a.genome, &b.genome, rng)
        } else {
            rt::trace!(self.obs, "breed", method = "mutate");
            a.genome.clone()
        };
        self.space.mutate(&child, rng)
    }

    fn tournament_select<'a>(
        &self,
        population: &'a [Evaluated],
        rng: &mut StdRng,
    ) -> &'a Evaluated {
        let picks: Vec<&Evaluated> = (0..self.config.tournament)
            .map(|_| &population[rng.gen_range(0..population.len())])
            .collect();
        let winner = match self.config.selection {
            SelectionMode::WeightedScalar => picks
                .into_iter()
                .max_by(|a, b| {
                    a.fitness
                        .partial_cmp(&b.fitness)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("tournament >= 1"),
            SelectionMode::Nsga2 => {
                // Crowded tournament: a non-dominated pick wins.
                let cloned: Vec<Evaluated> = picks.iter().map(|e| (*e).clone()).collect();
                let keys = self.rank_keys(&cloned);
                let fronts = crate::pareto::non_dominated_sort(&keys);
                picks[fronts[0][0]]
            }
        };
        rt::trace!(
            self.obs,
            "tournament",
            size = self.config.tournament,
            winner_fitness = winner.fitness,
        );
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{Objective, ObjectiveSet};
    use crate::measurement::HwMetrics;

    /// A fast synthetic evaluator: fitness landscape is a function of
    /// the genome alone, no MLP training. Lets engine tests run in
    /// microseconds and be exactly repeatable.
    struct ToyEvaluator {
        /// Panic on genomes whose first layer has exactly this width
        /// (failure-injection hook).
        panic_on_width: Option<usize>,
    }

    impl Evaluator for ToyEvaluator {
        fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
            if let Some(w) = self.panic_on_width {
                if genome.nna.layers.first().map(|l| l.neurons) == Some(w) {
                    panic!("injected failure");
                }
            }
            // "Accuracy" peaks when total neurons approach 256.
            let neurons = genome.nna.total_neurons() as f32;
            let accuracy = 1.0 - ((neurons - 256.0).abs() / 512.0).min(1.0);
            Measurement {
                accuracy,
                train_accuracy: accuracy,
                params: neurons as usize * 10,
                neurons: neurons as usize,
                hw: HwMetrics::Gpu {
                    outputs_per_s: 1e6 / (1.0 + neurons as f64),
                    efficiency: 0.01,
                    latency_s: 1e-4,
                    effective_gflops: 1.0,
                    power_w: 50.0,
                },
                eval_time_s: 1e-6,
                train_time_s: 6e-7,
                hw_time_s: 4e-7,
            }
        }

        fn target_name(&self) -> String {
            "toy".to_string()
        }
    }

    fn engine(evals: usize, seed: u64, threads: usize) -> Engine {
        let cfg = EvolutionConfig {
            population: 12,
            evaluations: evals,
            tournament: 3,
            crossover_rate: 0.5,
            seed,
            threads,
            selection: SelectionMode::WeightedScalar,
        };
        Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            cfg,
        )
    }

    #[test]
    fn respects_evaluation_budget_exactly() {
        let out = engine(50, 1, 1).run();
        assert_eq!(out.stats.models_evaluated, 50);
        assert_eq!(out.trace.len(), 50);
    }

    #[test]
    fn search_improves_over_random_start() {
        let out = engine(150, 2, 1).run();
        let first_quarter_best = out.trace[..30]
            .iter()
            .map(|e| e.fitness)
            .fold(f64::MIN, f64::max);
        let overall_best = out.best().unwrap().fitness;
        assert!(overall_best >= first_quarter_best);
        // The toy optimum (256 neurons -> accuracy 1.0) should be
        // approached.
        assert!(overall_best > 0.9, "best fitness {overall_best}");
    }

    #[test]
    fn deterministic_with_one_thread() {
        let a = engine(60, 7, 1).run();
        let b = engine(60, 7, 1).run();
        let fa: Vec<f64> = a.trace.iter().map(|e| e.fitness).collect();
        let fb: Vec<f64> = b.trace.iter().map(|e| e.fitness).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.best().unwrap().genome, b.best().unwrap().genome);
    }

    #[test]
    fn cache_prevents_duplicate_evaluations() {
        // Tiny space: duplicates are inevitable, so the cache must fire.
        let space = SearchSpace::gpu_default()
            .with_layers(1, 1)
            .with_neurons(4, 6);
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 40,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 3,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
        };
        let eng = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        );
        let out = eng.run();
        assert!(
            out.stats.cache_hits > 0,
            "expected cache hits in a tiny space"
        );
        // Unique evaluations cannot exceed the distinct-genome count:
        // 3 widths x 4 activations x 2 bias x 8 batches = 192 (bounded).
        assert!(out.stats.models_evaluated <= 40);
    }

    #[test]
    fn worker_panic_becomes_infeasible_candidate() {
        let space = SearchSpace::gpu_default();
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 30,
            tournament: 2,
            crossover_rate: 0.5,
            seed: 5,
            threads: 2,
            selection: SelectionMode::WeightedScalar,
        };
        let eng = Engine::new(
            // Panic on a width that random sampling will hit eventually;
            // even if not hit, the search must complete.
            Arc::new(ToyEvaluator {
                panic_on_width: Some(100),
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        );
        let out = eng.run();
        assert_eq!(out.stats.models_evaluated, 30);
        // Any panicked candidates appear as infeasible in the trace.
        for e in &out.trace {
            if !e.measurement.hw.is_feasible() {
                assert_eq!(e.fitness, f64::NEG_INFINITY);
            }
        }
    }

    #[test]
    fn multithreaded_run_completes_budget() {
        let out = engine(80, 11, 4).run();
        assert_eq!(out.stats.models_evaluated, 80);
        assert!(out.population.len() <= 12);
        assert!(out.stats.wall_time_s > 0.0);
    }

    #[test]
    fn population_respects_capacity() {
        let out = engine(100, 13, 1).run();
        assert_eq!(out.population.len(), 12);
    }

    #[test]
    fn stats_time_accounting() {
        let out = engine(25, 17, 1).run();
        assert!(out.stats.total_eval_time_s > 0.0);
        assert!((out.stats.avg_eval_time_s - out.stats.total_eval_time_s / 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_track_stage_times_and_infeasibles() {
        let out = engine(25, 17, 1).run();
        // The toy evaluator reports fixed per-stage times and never
        // fails, so the totals are exact multiples.
        assert_eq!(out.stats.infeasible_count, 0);
        assert!((out.stats.train_time_s - 25.0 * 6e-7).abs() < 1e-12);
        assert!((out.stats.hw_time_s - 25.0 * 4e-7).abs() < 1e-12);
    }

    #[test]
    fn observed_run_emits_lifecycle_events_and_counters() {
        let ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let obs = rt::obs::Obs::builder().sink(Arc::clone(&ring)).build();
        let space = SearchSpace::gpu_default()
            .with_layers(1, 1)
            .with_neurons(4, 6); // tiny space forces cache hits
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 40,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 3,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
        };
        let out = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        )
        .with_obs(obs.clone())
        .run();

        let events = ring.snapshot();
        let has = |name: &str| events.iter().any(|e| e.name == name);
        for required in [
            "search_start",
            "submit",
            "evaluated",
            "cache_hit",
            "breed",
            "tournament",
            "replace",
            "search_end",
        ] {
            assert!(has(required), "missing event kind {required:?}");
        }
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("submit"), out.stats.models_evaluated);
        assert_eq!(count("evaluated"), out.stats.models_evaluated);
        assert_eq!(count("cache_hit"), out.stats.cache_hits);

        // The acceptance identity: counters sum to models + cache hits.
        let metric = |name: &str| {
            obs.snapshot()
                .iter()
                .find_map(|(n, v)| match (n == name, v) {
                    (true, rt::obs::MetricValue::Counter(c)) => Some(*c),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no counter {name:?}"))
        };
        assert_eq!(
            metric("engine.models_evaluated") + metric("engine.cache_hits"),
            (out.stats.models_evaluated + out.stats.cache_hits) as u64
        );
        assert_eq!(metric("engine.infeasible"), out.stats.infeasible_count as u64);
    }

    #[test]
    fn multiobjective_search_keeps_throughput_pressure() {
        let cfg = EvolutionConfig {
            population: 12,
            evaluations: 150,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 23,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
        };
        let accuracy_only = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            EvolutionConfig { seed: 23, ..cfg },
        )
        .run();
        let combined = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::new(vec![
                Objective::maximize("accuracy").with_weight(0.2),
                Objective::maximize("log_throughput").with_weight(1.0),
            ]),
            cfg,
        )
        .run();
        // Toy throughput falls with neurons, so the throughput-weighted
        // search should settle on smaller networks.
        let mean_neurons = |o: &EngineOutcome| {
            o.population
                .iter()
                .map(|e| e.measurement.neurons)
                .sum::<usize>() as f64
                / o.population.len() as f64
        };
        assert!(mean_neurons(&combined) < mean_neurons(&accuracy_only));
    }

    #[test]
    fn nsga2_mode_completes_and_keeps_population_size() {
        let cfg = EvolutionConfig {
            population: 10,
            evaluations: 80,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 31,
            threads: 1,
            selection: SelectionMode::Nsga2,
        };
        let out = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::new(vec![
                Objective::maximize("accuracy"),
                Objective::maximize("log_throughput"),
            ]),
            cfg,
        )
        .run();
        assert_eq!(out.stats.models_evaluated, 80);
        assert_eq!(out.population.len(), 10);
    }

    #[test]
    fn nsga2_population_is_more_diverse_on_the_front() {
        // The toy landscape trades accuracy (peak at 256 neurons)
        // against throughput (falls with neurons). NSGA-II should keep
        // a wider spread of neuron counts than scalarization collapses
        // to.
        let run = |selection: SelectionMode, seed: u64| {
            let cfg = EvolutionConfig {
                population: 14,
                evaluations: 200,
                tournament: 3,
                crossover_rate: 0.5,
                seed,
                threads: 1,
                selection,
            };
            let out = Engine::new(
                Arc::new(ToyEvaluator {
                    panic_on_width: None,
                }),
                SearchSpace::gpu_default(),
                ObjectiveSet::new(vec![
                    Objective::maximize("accuracy"),
                    Objective::maximize("log_throughput"),
                ]),
                cfg,
            )
            .run();
            let neurons: Vec<f32> = out
                .population
                .iter()
                .map(|e| e.measurement.neurons as f32)
                .collect();
            ecad_tensor::stats::std_dev(&neurons)
        };
        // Average over a few seeds to damp run-to-run noise.
        let spread = |mode: SelectionMode| (run(mode, 1) + run(mode, 2) + run(mode, 3)) / 3.0;
        let nsga = spread(SelectionMode::Nsga2);
        let scalar = spread(SelectionMode::WeightedScalar);
        assert!(
            nsga > scalar * 0.8,
            "nsga2 spread {nsga} should not collapse below scalar spread {scalar}"
        );
    }

    #[test]
    fn nsga2_deterministic_per_seed() {
        let run = || {
            let cfg = EvolutionConfig {
                population: 8,
                evaluations: 40,
                tournament: 2,
                crossover_rate: 0.5,
                seed: 5,
                threads: 1,
                selection: SelectionMode::Nsga2,
            };
            Engine::new(
                Arc::new(ToyEvaluator {
                    panic_on_width: None,
                }),
                SearchSpace::gpu_default(),
                ObjectiveSet::accuracy_only(),
                cfg,
            )
            .run()
            .trace
            .iter()
            .map(|e| e.genome.describe())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_rejected() {
        let cfg = EvolutionConfig {
            population: 0,
            ..EvolutionConfig::small()
        };
        let _ = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            cfg,
        );
    }
}
