//! The ECAD master process: steady-state evolution over a worker pool.
//!
//! "The Master process orchestrates the evaluation process by
//! distributing the co-design population and by evaluating the results"
//! (§III-A). The engine here is that master:
//!
//! * a **steady-state** population model \[16\]: one child is bred and
//!   one member replaced per step, rather than generational sweeps;
//! * **tournament selection** for parents and worst-of-tournament
//!   replacement for survivors;
//! * a **worker pool** over `rt::sync` channels — each worker thread owns
//!   a shared [`Evaluator`] and scores candidates concurrently;
//! * a **dedup cache**: "potential NNA/HW candidates are first analyzed
//!   for similarities to previous evaluations and duplicates are not
//!   evaluated twice" (Table III note). Cache hits cost no evaluation
//!   budget;
//! * **failure isolation**: a panicking evaluation is caught in the
//!   worker and surfaces as an infeasible measurement, not a crashed
//!   search;
//! * **deadlines and retries**: each dispatch runs under an optional
//!   per-evaluation deadline (`eval_timeout`); failures classified
//!   [`FailureKind::Transient`] (panics, timeouts, explicit transients)
//!   are retried with seeded jittered exponential backoff up to
//!   `max_retries`, while [`FailureKind::Permanent`] verdicts are
//!   cached and scored as-is;
//! * **worker supervision**: workers run in `rt::supervise` slots, so a
//!   slot whose evaluation stalls past its deadline is abandoned and
//!   respawned, and its late result (if any) is dropped as stale;
//! * **checkpoint/resume**: with a [`CheckpointPolicy`] attached, the
//!   full master state is snapshotted every N unique evaluations and on
//!   halt, and [`Engine::resume`] continues a seeded single-thread run
//!   byte-identically (DESIGN.md §12).
//!
//! With `threads = 1` the whole search is deterministic for a fixed
//! seed; more threads trade determinism for wall-clock speed (result
//! arrival order feeds back into breeding).

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rt::net::{Conn, NetError};
use rt::obs::Obs;
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, RngCore, SeedableRng};
use rt::supervise::{ShutdownFlag, Supervisor};
use rt::sync::channel::{self, Receiver, RecvTimeoutError, Sender};

use crate::analytics::{AnalyticsConfig, EpochTracker, OperatorKind, StatusCell};
use crate::checkpoint::{CheckpointError, CheckpointPolicy, CheckpointState, PendingJob};
use crate::cluster::{
    addr_salt, ClusterHealth, ClusterPlan, CoordinatorRequest, Migrant, WorkerResponse,
    WorkerState, COORDINATOR_ROLE, WORKER_ROLE,
};
use crate::fitness::ObjectiveSet;
use crate::genome::CandidateGenome;
use crate::measurement::{FailureKind, InfeasibleReason, Measurement};
use crate::protocol::{DispatchLedger, ResultClass};
use crate::space::SearchSpace;
use crate::workers::Evaluator;

/// How the steady-state loop selects survivors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionMode {
    /// Weighted-sum scalarization of the objective set (the paper's
    /// configuration-file fitness path). Cheap and effective when the
    /// weights express the intended trade.
    WeightedScalar,
    /// NSGA-II style survival: the child joins the population, then the
    /// individual with the worst (non-domination rank, crowding
    /// distance) is evicted. Maintains a diverse Pareto frontier without
    /// hand-tuned weights — an extension of the paper's Pareto analysis
    /// into the selection loop itself.
    Nsga2,
}

/// Steady-state GA hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Population size.
    pub population: usize,
    /// Budget of *unique* model evaluations (cache hits are free),
    /// including the initial population.
    pub evaluations: usize,
    /// Tournament size for selection and replacement.
    pub tournament: usize,
    /// Probability a child is produced by crossover (otherwise a mutated
    /// copy of one parent).
    pub crossover_rate: f64,
    /// RNG seed for the whole search.
    pub seed: u64,
    /// Worker threads. `1` gives a deterministic search.
    pub threads: usize,
    /// Survivor-selection strategy.
    pub selection: SelectionMode,
    /// Per-evaluation deadline. A dispatch that has not reported by
    /// then is abandoned (its slot respawned) and treated as a
    /// transient failure. `None` disables deadlines.
    pub eval_timeout: Option<Duration>,
    /// How many times a transiently failed candidate (panic, timeout,
    /// explicit transient) is re-dispatched before its last verdict is
    /// accepted. Retries cost no unique-evaluation budget.
    pub max_retries: usize,
    /// Base delay before the first retry; doubles per attempt with
    /// ±50% deterministic jitter seeded from the search seed and the
    /// candidate's cache key.
    pub retry_backoff: Duration,
    /// Epoch analytics: snapshot cadence and stall-detector policy
    /// (see [`crate::analytics`]).
    pub analytics: AnalyticsConfig,
}

impl EvolutionConfig {
    /// Small-budget defaults suitable for interactive runs.
    pub fn small() -> Self {
        Self {
            population: 16,
            evaluations: 120,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 0,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
            eval_timeout: None,
            max_retries: 2,
            retry_backoff: Duration::from_millis(5),
            analytics: AnalyticsConfig::default(),
        }
    }
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self::small()
    }
}

/// An evaluated candidate as held in the population and trace.
#[derive(Debug, Clone)]
pub struct Evaluated {
    /// The candidate's genes.
    pub genome: CandidateGenome,
    /// Raw worker measurement.
    pub measurement: Measurement,
    /// Scalarized fitness (larger is better).
    pub fitness: f64,
}

/// Coordinator-observed latency estimate for one remote worker — the
/// hook for future speed-aware scheduling. Quantiles come from the
/// engine's per-worker log-histograms, so they cost nothing extra on
/// the hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerLatency {
    /// Worker address (`host:port`).
    pub addr: String,
    /// Successful jobs measured.
    pub jobs: u64,
    /// Median job round-trip, seconds (dispatch → evaluated).
    pub p50_s: f64,
    /// 95th-percentile job round-trip, seconds.
    pub p95_s: f64,
}

/// Run-time statistics in the shape of the paper's Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Unique NNA/HW combinations evaluated.
    pub models_evaluated: usize,
    /// Candidates served from the dedup cache instead of re-evaluating.
    pub cache_hits: usize,
    /// Sum of per-evaluation times, seconds (Table III "Total Evaluation
    /// Time").
    pub total_eval_time_s: f64,
    /// Mean per-evaluation time, seconds (Table III "AVG Model
    /// Evaluation Time").
    pub avg_eval_time_s: f64,
    /// Wall-clock time of the whole search, seconds.
    pub wall_time_s: f64,
    /// Unique evaluations that came back infeasible (device-fit,
    /// training failure, target mismatch, or worker panic).
    pub infeasible_count: usize,
    /// Sum of per-evaluation seconds spent in the simulation worker's
    /// training stage.
    pub train_time_s: f64,
    /// Sum of per-evaluation seconds spent in the hardware models.
    pub hw_time_s: f64,
    /// Transient failures (panics, timeouts, explicit transients) that
    /// were scheduled for another attempt.
    pub retry_count: usize,
    /// Dispatches abandoned because they missed their `eval_timeout`
    /// deadline.
    pub timeout_count: usize,
    /// Worker slots abandoned and relaunched after holding a timed-out
    /// claim.
    pub respawn_count: usize,
    /// Per-remote-worker latency estimates (empty on local runs and
    /// when the metrics registry is disabled).
    pub worker_latency: Vec<WorkerLatency>,
}

/// Everything a finished search produces.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Final population, unsorted.
    pub population: Vec<Evaluated>,
    /// Every unique evaluation, in completion order — the raw material
    /// for the paper's scatter plots and Pareto fronts.
    pub trace: Vec<Evaluated>,
    /// Run-time statistics.
    pub stats: EngineStats,
    /// True when the run stopped early — a shutdown request or
    /// `halt_after` boundary — rather than exhausting its budget. A
    /// halted run with a checkpoint policy attached has written a
    /// resumable checkpoint.
    pub halted: bool,
}

impl EngineOutcome {
    /// The member with the highest scalar fitness.
    pub fn best(&self) -> Option<&Evaluated> {
        self.trace.iter().max_by(|a, b| {
            a.fitness
                .partial_cmp(&b.fitness)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// The steady-state evolutionary engine.
pub struct Engine {
    evaluator: Arc<dyn Evaluator>,
    space: SearchSpace,
    objectives: ObjectiveSet,
    config: EvolutionConfig,
    obs: Obs,
    checkpoint: Option<CheckpointPolicy>,
    halt_after: Option<usize>,
    shutdown: ShutdownFlag,
    status: StatusCell,
    cluster: Option<ClusterPlan>,
    cluster_health: Option<Arc<ClusterHealth>>,
}

/// The ledger payload: what travels with each dispatched evaluation
/// besides the attempt counter the protocol itself tracks.
type JobPayload = (CandidateGenome, OperatorKind);

/// The engine's concrete ledger: wall-clock deadlines over the shared
/// protocol state machine (model checks instantiate the same machine
/// with virtual-time ticks).
type EngineLedger = DispatchLedger<JobPayload, Instant>;

/// The master loop's mutable scalars, grouped so checkpoints can
/// snapshot them in one place.
#[derive(Default, Clone, Copy)]
struct Counters {
    submitted_unique: usize,
    attempts: usize,
    next_id: usize,
    cache_hits: usize,
    infeasible_count: usize,
    retry_count: usize,
    timeout_count: usize,
    respawn_count: usize,
    total_eval_time: f64,
    train_time: f64,
    hw_time: f64,
}

/// Deterministic jittered exponential backoff: base × 2^(attempt−1),
/// scaled by a factor in [0.5, 1.5) drawn from an RNG seeded by the
/// search seed, the candidate's cache key, and the attempt number —
/// never from the master RNG, so retries leave the breeding sequence
/// untouched.
fn backoff_delay(cfg: &EvolutionConfig, key: u64, attempt: usize) -> Duration {
    let exp = attempt.saturating_sub(1).min(10) as u32;
    let base = cfg.retry_backoff.saturating_mul(1u32 << exp);
    let mut rng = StdRng::seed_from_u64(
        cfg.seed ^ key ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    let factor = 0.5 + (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
    base.mul_f64(factor)
}

/// Snapshots the master loop into a serializable [`CheckpointState`].
/// In-flight and retry-queued work lands in `pending` so nothing is
/// lost; with one thread both are empty at every admit boundary.
#[allow(clippy::too_many_arguments)]
fn build_checkpoint(
    cfg: &EvolutionConfig,
    rng: &StdRng,
    c: &Counters,
    op_counters: [(u64, u64); 4],
    wall_time_s: f64,
    seeds: &[CandidateGenome],
    population: &[Evaluated],
    trace: &[Evaluated],
    cache: &HashMap<u64, Measurement>,
    ledger: &EngineLedger,
    pending_restore: &VecDeque<PendingJob>,
) -> CheckpointState {
    let (rng_state, rng_inc) = rng.raw_state();
    let pairs = |v: &[Evaluated]| {
        v.iter()
            .map(|e| (e.genome.clone(), e.measurement.clone()))
            .collect()
    };
    let mut cache_entries: Vec<(u64, Measurement)> =
        cache.iter().map(|(&k, m)| (k, m.clone())).collect();
    cache_entries.sort_by_key(|&(k, _)| k);
    // The ledger yields in-flight jobs in id order, then queued
    // retries in FIFO order — the same deterministic layout the
    // hand-rolled snapshot produced.
    let pending = ledger
        .pending_jobs()
        .into_iter()
        .map(|(attempt, (genome, op))| PendingJob {
            attempt,
            genome: genome.clone(),
            op: *op,
        })
        .chain(pending_restore.iter().cloned())
        .collect();
    CheckpointState {
        version: crate::checkpoint::FORMAT_VERSION,
        seed: cfg.seed,
        evaluations: cfg.evaluations,
        population_cap: cfg.population,
        rng_state,
        rng_inc,
        submitted_unique: c.submitted_unique,
        attempts: c.attempts,
        next_id: c.next_id,
        cache_hits: c.cache_hits,
        infeasible_count: c.infeasible_count,
        retry_count: c.retry_count,
        timeout_count: c.timeout_count,
        respawn_count: c.respawn_count,
        op_counters,
        total_eval_time_s: c.total_eval_time,
        train_time_s: c.train_time,
        hw_time_s: c.hw_time,
        wall_time_s,
        seeds_remaining: seeds.to_vec(),
        population: pairs(population),
        trace: pairs(trace),
        cache: cache_entries,
        pending,
    }
}

/// Writes a checkpoint, downgrading failure to a warning event — a
/// full disk must not kill a search that is otherwise healthy. The
/// status cell learns about successful writes so `/status` can report
/// checkpoint age.
fn save_checkpoint(
    policy: &CheckpointPolicy,
    state: &CheckpointState,
    obs: &Obs,
    status: &StatusCell,
) {
    match state.save(&policy.path) {
        Ok(()) => {
            status.note_checkpoint();
            rt::trace!(
                obs,
                "checkpoint",
                evaluations_done = state.trace.len(),
                path = policy.path.display().to_string(),
            );
        }
        Err(e) => rt::warn!(obs, "checkpoint_error", error = e.to_string()),
    }
}

/// Spawns one local in-process evaluation slot. Used for every slot of
/// a non-cluster run, and again mid-run when a cluster run loses its
/// last remote worker and degrades to local evaluation.
fn spawn_local_slot(
    supervisor: &mut Supervisor,
    req_rx: Receiver<(usize, CandidateGenome)>,
    res_tx: Sender<(usize, CandidateGenome, Measurement)>,
    evaluator: Arc<dyn Evaluator>,
    obs: Obs,
) {
    supervisor.spawn(move |ctx| {
        // Kernel-level prof_span! sites (gemm, activation, …)
        // inside the evaluator record under the engine's tree.
        let _prof_install = obs.profiler().map(|p| p.install());
        loop {
            let (id, genome) = match req_rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            };
            ctx.claim(id as u64);
            let started = Instant::now();
            let m = {
                let _span = rt::span!(obs, "evaluate", worker = ctx.slot(), id = id);
                catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(&genome))).unwrap_or_else(
                    |_| {
                        rt::warn!(
                            obs,
                            "infeasible",
                            stage = "worker",
                            reason = InfeasibleReason::WorkerPanic.kind(),
                        );
                        let mut m = Measurement::infeasible(InfeasibleReason::WorkerPanic);
                        // The failed attempt consumed real wall
                        // clock; Table III's totals must include it.
                        m.eval_time_s = started.elapsed().as_secs_f64();
                        m
                    },
                )
            };
            ctx.release(id as u64);
            if res_tx.send((id, genome, m)).is_err() || !ctx.is_current() {
                return;
            }
        }
    });
}

/// An established coordinator-side session with one remote worker.
struct RemoteSession {
    conn: Conn,
    stamp: u64,
}

impl RemoteSession {
    /// Best-effort `kill_all` on shutdown: the worker's listen loop
    /// exits once the coordinator is done with it. The worker sends a
    /// final cumulative `Stats` frame (its complete profile subtree)
    /// before `Bye`; absorb it so short runs still graft every
    /// worker's tree into the master profile.
    fn kill(mut self, telemetry: &SlotTelemetry) {
        if let Ok(req) = CoordinatorRequest::KillAll.to_json() {
            if self.conn.send(&req).is_ok() {
                // Bounded drain: Bye, or a dead peer — either way done.
                for _ in 0..8 {
                    let Ok(frame) = self.conn.recv() else { break };
                    match WorkerResponse::from_json(&frame) {
                        Ok(stats @ WorkerResponse::Stats { .. }) => telemetry.absorb(&stats),
                        Ok(WorkerResponse::Bye) | Err(_) => break,
                        Ok(_) => {} // stale frame; keep draining
                    }
                }
            }
        }
    }
}

/// Out-of-band telemetry context for one remote slot: labeled metric
/// handles, the shared health registry, and the coordinator profiler
/// that worker subtrees graft into. Everything absorbed here lands in
/// read-only side channels (metrics registry, health cells, profile
/// grafts) — never the trace, the RNG streams, or the ledger — so the
/// byte-identity contracts are untouched.
struct SlotTelemetry {
    addr: String,
    index: usize,
    health: Option<Arc<ClusterHealth>>,
    profiler: Option<rt::prof::Profiler>,
    jobs: rt::obs::Gauge,
    train_s: rt::obs::Gauge,
    hw_s: rt::obs::Gauge,
    panics: rt::obs::Gauge,
    migrants: rt::obs::Gauge,
    latency: rt::obs::HistogramHandle,
}

impl SlotTelemetry {
    fn new(addr: String, index: usize, health: Option<Arc<ClusterHealth>>, obs: &Obs) -> Self {
        let labels: &[(&str, &str)] = &[("worker", addr.as_str())];
        Self {
            jobs: obs.gauge_with("cluster.worker_jobs", labels),
            train_s: obs.gauge_with("cluster.worker_train_s", labels),
            hw_s: obs.gauge_with("cluster.worker_hw_s", labels),
            panics: obs.gauge_with("cluster.worker_panics", labels),
            migrants: obs.gauge_with("cluster.worker_migrants", labels),
            latency: obs.histogram_with("cluster.worker_eval_s", labels),
            profiler: obs.profiler(),
            addr,
            index,
            health,
        }
    }

    fn set_state(&self, state: WorkerState) {
        if let Some(h) = &self.health {
            h.set_state(self.index, state);
        }
    }

    fn mark_seen(&self) {
        if let Some(h) = &self.health {
            h.mark_seen(self.index);
        }
    }

    /// Folds one absorbed `Stats` frame into the telemetry plane:
    /// labeled gauges, the health cell, and (when both sides profile)
    /// a replace-by-name graft of the worker's subtree under
    /// `worker:<addr>` in the master tree.
    fn absorb(&self, resp: &WorkerResponse) {
        let WorkerResponse::Stats {
            jobs,
            train_s,
            hw_s,
            panics,
            migrants,
            profile,
        } = resp
        else {
            return;
        };
        self.jobs.set(*jobs as f64);
        self.train_s.set(*train_s);
        self.hw_s.set(*hw_s);
        self.panics.set(*panics as f64);
        self.migrants.set(*migrants as f64);
        if let Some(h) = &self.health {
            h.record_stats(self.index, *jobs, *train_s, *hw_s, *panics, *migrants);
        }
        self.mark_seen();
        if let (Some(profiler), Some(p)) = (&self.profiler, profile) {
            if let Some(node) = rt::prof::ProfileNode::from_json(p) {
                profiler.attach_subtree(&format!("worker:{}", self.addr), node);
            }
        }
    }
}

/// How a remote exchange failed, after classification.
enum RemoteFailure {
    /// Environment trouble (disconnect, deadline, stale response): the
    /// job retries through the ledger, the slot reconnects.
    Transient(String),
    /// Protocol/version trouble: the worker is unusable; its slot
    /// retires after reporting the current job transient.
    Permanent(String),
}

impl From<NetError> for RemoteFailure {
    fn from(e: NetError) -> Self {
        if e.is_transient() {
            RemoteFailure::Transient(e.to_string())
        } else {
            RemoteFailure::Permanent(e.to_string())
        }
    }
}

/// Connects, handshakes, and opens a session with a `setup` frame.
fn connect_session(
    addr: &str,
    plan: &ClusterPlan,
    stamp: u64,
) -> Result<RemoteSession, NetError> {
    let opts = &plan.options;
    let mut conn = Conn::connect(addr, opts.net_timeout, opts.max_frame)?;
    conn.set_io_timeout(Some(opts.net_timeout))?;
    conn.handshake_client(COORDINATOR_ROLE, Some(WORKER_ROLE))?;
    conn.send(&CoordinatorRequest::Setup(Box::new(plan.setup.clone()), stamp).to_json()?)?;
    match WorkerResponse::from_json(&conn.recv()?)? {
        WorkerResponse::Ready { stamp: s } if s == stamp => Ok(RemoteSession { conn, stamp }),
        other => Err(NetError::Protocol(format!(
            "expected ready({stamp:016x}), got {other:?}"
        ))),
    }
}

/// One evaluate/evaluated exchange on an open session. Responses whose
/// id or stamp does not match the outstanding job are *stale* — fenced
/// here (below the ledger's own id fencing) and classified transient so
/// the connection resyncs.
#[allow(clippy::type_complexity)]
fn remote_exchange(
    session: &mut RemoteSession,
    id: usize,
    genome: &CandidateGenome,
    obs: &Obs,
    telemetry: &SlotTelemetry,
) -> Result<
    (
        Measurement,
        bool,
        Vec<rt::obs::Event>,
        Vec<(CandidateGenome, Measurement)>,
    ),
    RemoteFailure,
> {
    session.conn.send(
        &CoordinatorRequest::Evaluate {
            id: id as u64,
            stamp: session.stamp,
            genome: genome.clone(),
        }
        .to_json()
        .map_err(RemoteFailure::from)?,
    )
    .map_err(RemoteFailure::from)?;
    // Workers piggyback cumulative `Stats` frames on the session;
    // absorb any that precede the answer (telemetry is out-of-band, so
    // this never changes what the ledger sees).
    let frame = loop {
        let frame = session.conn.recv().map_err(RemoteFailure::from)?;
        if let Ok(stats @ WorkerResponse::Stats { .. }) = WorkerResponse::from_json(&frame) {
            telemetry.absorb(&stats);
            continue;
        }
        break frame;
    };
    match WorkerResponse::from_json(&frame).map_err(RemoteFailure::from)? {
        WorkerResponse::Evaluated {
            id: rid,
            stamp,
            measurement,
            panicked,
            events,
            migrants,
        } => {
            if rid != id as u64 || stamp != session.stamp {
                rt::warn!(
                    obs,
                    "stale_remote_result",
                    id = rid as usize,
                    expected = id,
                    stamp = format!("{stamp:016x}"),
                );
                return Err(RemoteFailure::Transient(format!(
                    "stale response for job {rid} (wanted {id})"
                )));
            }
            Ok((measurement, panicked, events, migrants))
        }
        other => Err(RemoteFailure::Transient(format!(
            "expected evaluated, got {other:?}"
        ))),
    }
}

/// Spawns a remote evaluation slot bound to one worker address. The
/// slot mirrors the local body exactly — same claim/span/release/send
/// choreography, same `ecad_core::engine` event target — but the
/// evaluation crosses a framed TCP session, the worker's captured
/// evaluation events are replayed inside the coordinator's own
/// `evaluate` span, and network failures surface as transient
/// measurements for the ledger's retry machinery.
#[allow(clippy::too_many_arguments)]
fn spawn_remote_slot(
    supervisor: &mut Supervisor,
    addr: String,
    plan: ClusterPlan,
    seed: u64,
    index: usize,
    req_rx: Receiver<(usize, CandidateGenome)>,
    forward: Sender<(usize, CandidateGenome)>,
    res_tx: Sender<(usize, CandidateGenome, Measurement)>,
    mig_tx: Sender<Migrant>,
    live: Arc<AtomicUsize>,
    alive: Arc<Vec<AtomicBool>>,
    health: Option<Arc<ClusterHealth>>,
    done: Sender<()>,
    obs: Obs,
) {
    supervisor.spawn(move |ctx| {
        let opts = &plan.options;
        let telemetry = SlotTelemetry::new(addr.clone(), index, health.clone(), &obs);
        let mut session: Option<RemoteSession> = None;
        let mut connects: u64 = 0;
        // Seeded jitter so a cluster's reconnect storms de-correlate
        // deterministically, per worker (same scheme as the engine's
        // retry backoff).
        let mut jitter = StdRng::seed_from_u64(seed ^ addr_salt(&addr) ^ 0xBAC_0FF);
        let mut lost = false;
        loop {
            let (id, genome) = match req_rx.recv() {
                Ok(job) => job,
                Err(_) => {
                    if let Some(s) = session.take() {
                        s.kill(&telemetry);
                    }
                    let _ = done.send(());
                    return;
                }
            };
            ctx.claim(id as u64);
            let started = Instant::now();
            let m = {
                // Detached: never consults an ambient profiler, so the
                // worker's own tick domain (grafted via `Stats`) stays
                // the only profile this slot contributes, and the close
                // event stays byte-identical to a local slot's.
                let _span = rt::span_detached!(obs, "evaluate", worker = ctx.slot(), id = id);
                // (Re)connect with seeded backoff, bounded by the
                // reconnect budget.
                let mut failure: Option<RemoteFailure> = None;
                let mut attempt = 0usize;
                while session.is_none() {
                    let stamp = ((ctx.slot() as u64) << 32) | connects;
                    match connect_session(&addr, &plan, stamp) {
                        Ok(s) => {
                            connects += 1;
                            rt::trace!(
                                obs,
                                "worker_connected",
                                addr = addr.as_str(),
                                slot = ctx.slot(),
                                stamp = format!("{stamp:016x}"),
                            );
                            telemetry.set_state(WorkerState::Connected);
                            telemetry.mark_seen();
                            session = Some(s);
                        }
                        Err(e) => {
                            attempt += 1;
                            rt::warn!(
                                obs,
                                "worker_connect_failed",
                                addr = addr.as_str(),
                                attempt = attempt,
                                error = e.to_string(),
                            );
                            telemetry.set_state(WorkerState::Reconnecting);
                            if !e.is_transient() || attempt >= opts.connect_retries.max(1) {
                                failure = Some(RemoteFailure::Permanent(e.to_string()));
                                break;
                            }
                            let base = opts.reconnect_backoff.as_millis() as u64;
                            let ceiling = (base << attempt.min(6)).max(1);
                            std::thread::sleep(Duration::from_millis(
                                jitter.gen_range(base..=base + ceiling),
                            ));
                        }
                    }
                }
                let outcome = match (&mut session, failure) {
                    (_, Some(f)) => Err(f),
                    (Some(s), None) => remote_exchange(s, id, &genome, &obs, &telemetry),
                    (None, None) => unreachable!("no session and no failure"),
                };
                match outcome {
                    Ok((m, panicked, events, migrants)) => {
                        telemetry.mark_seen();
                        telemetry.latency.record(started.elapsed().as_secs_f64());
                        // Replay the worker's captured evaluation events
                        // inside this span, so the coordinator's JSONL is
                        // byte-identical to a local run's.
                        for event in events {
                            obs.emit_event(event);
                        }
                        if panicked {
                            rt::warn!(
                                obs,
                                "infeasible",
                                stage = "worker",
                                reason = InfeasibleReason::WorkerPanic.kind(),
                            );
                        }
                        for (g, mm) in migrants {
                            let _ = mig_tx.send(Migrant {
                                slot: ctx.slot(),
                                genome: g,
                                measurement: mm,
                            });
                        }
                        m
                    }
                    Err(RemoteFailure::Transient(reason)) => {
                        rt::trace!(
                            obs,
                            "worker_disconnected",
                            addr = addr.as_str(),
                            error = reason.as_str(),
                        );
                        telemetry.set_state(WorkerState::Reconnecting);
                        session = None;
                        let mut m = Measurement::infeasible(InfeasibleReason::Transient(
                            format!("net: {reason}"),
                        ));
                        m.eval_time_s = started.elapsed().as_secs_f64();
                        m
                    }
                    Err(RemoteFailure::Permanent(reason)) => {
                        lost = true;
                        rt::warn!(
                            obs,
                            "worker_lost",
                            addr = addr.as_str(),
                            error = reason.as_str(),
                        );
                        telemetry.set_state(WorkerState::Lost);
                        // Retire the routing flag *before* the transient
                        // result reaches the master: the retry it
                        // triggers must route to a surviving slot (or
                        // the shared queue), never back here, or it
                        // would burn a third strike of the retry budget.
                        alive[index].store(false, Ordering::Release);
                        live.fetch_sub(1, Ordering::AcqRel);
                        session = None;
                        let mut m = Measurement::infeasible(InfeasibleReason::Transient(
                            format!("worker lost: {reason}"),
                        ));
                        m.eval_time_s = started.elapsed().as_secs_f64();
                        m
                    }
                }
            };
            ctx.release(id as u64);
            if res_tx.send((id, genome, m)).is_err() || !ctx.is_current() {
                if let Some(s) = session.take() {
                    s.kill(&telemetry);
                }
                let _ = done.send(());
                return;
            }
            if lost {
                // The routing flag flipped before the transient result
                // went out, so new jobs avoid this queue; forward any
                // that raced the flip to the shared queue, where the
                // degradation path's local slots (or surviving remote
                // fallback) evaluate them properly. The done ack waits
                // for the master to drop this slot's queue.
                while let Ok(job) = req_rx.recv() {
                    let _ = forward.send(job);
                }
                let _ = done.send(());
                return;
            }
        }
    });
}

/// Routes one dispatched job. Cluster jobs go to slot `id % n` — a
/// deterministic assignment, so each worker's job stream (and hence
/// its ticks-clock profile subtree) is reproducible — falling back to
/// the next alive slot once one retires. Retired slots keep draining
/// their queue and bounce jobs back as transients, so nothing is lost
/// in the race between routing and retirement. Jobs fall through to
/// the shared local queue when no remote slot remains (the
/// degradation path's local slots consume it).
fn route_job(
    remote_txs: &[Sender<(usize, CandidateGenome)>],
    alive: &[AtomicBool],
    local_tx: &Sender<(usize, CandidateGenome)>,
    id: usize,
    genome: CandidateGenome,
) {
    let n = remote_txs.len();
    for k in 0..n {
        let slot = (id + k) % n;
        if alive[slot].load(Ordering::Acquire)
            && remote_txs[slot].send((id, genome.clone())).is_ok()
        {
            return;
        }
    }
    local_tx.send((id, genome)).expect("workers alive");
}

impl Engine {
    /// Safety valve: stop generating children after this many multiples
    /// of the evaluation budget, in case mutation keeps producing cached
    /// duplicates.
    const MAX_ATTEMPT_FACTOR: usize = 50;

    /// Creates an engine.
    ///
    /// # Panics
    ///
    /// Panics if the population, evaluations, tournament size, or thread
    /// count is zero.
    pub fn new(
        evaluator: Arc<dyn Evaluator>,
        space: SearchSpace,
        objectives: ObjectiveSet,
        config: EvolutionConfig,
    ) -> Self {
        assert!(config.population > 0, "population must be positive");
        assert!(config.evaluations > 0, "evaluation budget must be positive");
        assert!(config.tournament > 0, "tournament size must be positive");
        assert!(config.threads > 0, "need at least one worker thread");
        Self {
            evaluator,
            space,
            objectives,
            config,
            obs: Obs::disabled(),
            checkpoint: None,
            halt_after: None,
            shutdown: ShutdownFlag::new(),
            status: StatusCell::new(),
            cluster: None,
            cluster_health: None,
        }
    }

    /// Attaches an observability handle. Every master-loop decision
    /// (breeding, cache hits, tournament and replacement picks) and
    /// per-evaluation outcome is narrated through it as structured
    /// events, and the run's counters and timing histograms land in its
    /// metrics registry. Disabled by default.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Attaches a checkpoint policy: the full master state is written
    /// (atomically) to the policy's path every `every` unique
    /// evaluations, on any halt, and at natural completion.
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// Halts the run once the trace holds `n` unique evaluations —
    /// deterministic interruption for checkpoint/resume tests and
    /// budget slicing.
    pub fn with_halt_after(mut self, n: usize) -> Self {
        self.halt_after = Some(n);
        self
    }

    /// Attaches a cooperative shutdown flag (e.g. one wired to
    /// SIGINT/SIGTERM). When it trips, the run stops at the next safe
    /// boundary, writes a checkpoint if a policy is attached, and
    /// returns with `halted = true`.
    pub fn with_shutdown(mut self, flag: ShutdownFlag) -> Self {
        self.shutdown = flag;
        self
    }

    /// Routes evaluation to remote cluster workers instead of local
    /// threads: one supervised slot per worker address, each holding a
    /// framed TCP session ([`crate::cluster`]). Network failures are
    /// classified transient (the job retries through the ordinary
    /// ledger machinery, possibly on another worker); a worker whose
    /// reconnect budget is exhausted retires its slot; and when every
    /// remote is lost the engine degrades to `config.threads` local
    /// in-process slots with a warning rather than dying. With an empty
    /// worker list the plan is ignored.
    pub fn with_cluster(mut self, plan: ClusterPlan) -> Self {
        if !plan.options.workers.is_empty() {
            self.cluster = Some(plan);
        }
        self
    }

    /// Attaches a shared status cell the engine keeps current (latest
    /// epoch snapshot, counters, checkpoint age) for the `/status`
    /// endpoint. The engine only writes to it; readers never touch
    /// engine state, so a live observer cannot perturb the search.
    pub fn with_status(mut self, status: StatusCell) -> Self {
        self.status = status;
        self
    }

    /// Attaches a shared per-worker health registry: remote slots
    /// record connect/reconnect/lost transitions and absorbed worker
    /// `Stats` into it, for the `/workers` endpoint. Like the status
    /// cell, the engine only writes; readers never perturb the search.
    pub fn with_cluster_health(mut self, health: Arc<ClusterHealth>) -> Self {
        self.cluster_health = Some(health);
        self
    }

    /// Runs the search to budget exhaustion (or until halted).
    pub fn run(&self) -> EngineOutcome {
        self.run_inner(None)
    }

    /// Continues a run from a checkpoint. For a seeded single-thread
    /// search the continuation is byte-identical to the uninterrupted
    /// run: same candidates, same trace suffix, same final population.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Mismatch`] when the checkpoint's
    /// seed, budget, or population capacity disagree with this engine's
    /// configuration.
    pub fn resume(&self, state: CheckpointState) -> Result<EngineOutcome, CheckpointError> {
        state.validate(&self.config)?;
        Ok(self.run_inner(Some(state)))
    }

    fn run_inner(&self, restored: Option<CheckpointState>) -> EngineOutcome {
        let start = Instant::now();
        // Master-side prof_span! sites (dispatch/breed/replace) record
        // under the engine's profile tree when one is attached.
        let _prof_install = self.obs.profiler().map(|p| p.install());
        let cfg = self.config;
        self.status.note_started();
        let mut tracker = EpochTracker::new(cfg.analytics, cfg.population);

        let mut rng;
        let mut population: Vec<Evaluated>;
        let mut trace: Vec<Evaluated>;
        let mut cache: HashMap<u64, Measurement>;
        let mut seeds: Vec<CandidateGenome>;
        let mut c = Counters::default();
        let prior_wall: f64;
        let mut pending_restore: VecDeque<PendingJob>;

        match restored {
            Some(state) => {
                let revive = |(genome, measurement): (CandidateGenome, Measurement)| {
                    // Fitness is recomputed rather than serialized:
                    // infeasible candidates carry -inf, which JSON
                    // cannot represent.
                    let fitness = self.objectives.scalar(&measurement);
                    Evaluated {
                        genome,
                        measurement,
                        fitness,
                    }
                };
                rng = StdRng::from_raw_state(state.rng_state, state.rng_inc);
                population = state.population.into_iter().map(revive).collect();
                trace = state.trace.into_iter().map(revive).collect();
                // Rebuild the epoch tracker by silently replaying the
                // restored trace in epoch-sized chunks: archive, best,
                // and stall history end up exactly as the uninterrupted
                // run's, so the next epoch event is bit-identical.
                tracker.set_operator_totals(state.op_counters);
                tracker.replay(trace.iter().map(|e| {
                    let oriented = if e.fitness.is_finite() {
                        self.objectives.oriented_values(&e.measurement)
                    } else {
                        Vec::new()
                    };
                    (oriented, e.fitness)
                }));
                cache = state.cache.into_iter().collect();
                seeds = state.seeds_remaining;
                c.submitted_unique = state.submitted_unique;
                c.attempts = state.attempts;
                c.next_id = state.next_id;
                c.cache_hits = state.cache_hits;
                c.infeasible_count = state.infeasible_count;
                c.retry_count = state.retry_count;
                c.timeout_count = state.timeout_count;
                c.respawn_count = state.respawn_count;
                c.total_eval_time = state.total_eval_time_s;
                c.train_time = state.train_time_s;
                c.hw_time = state.hw_time_s;
                prior_wall = state.wall_time_s;
                pending_restore = state.pending.into();
                // Trace level on purpose: the resumed run's Debug-level
                // JSONL must continue the interrupted file byte-for-byte,
                // so no extra Debug+ event may appear here (and no second
                // search_start).
                rt::trace!(self.obs, "resume", evaluations_done = trace.len());
            }
            None => {
                rng = StdRng::seed_from_u64(cfg.seed);
                rt::info!(
                    self.obs,
                    "search_start",
                    target = self.evaluator.target_name(),
                    population = cfg.population,
                    evaluations = cfg.evaluations,
                    tournament = cfg.tournament,
                    seed = cfg.seed,
                    threads = cfg.threads,
                    selection = match cfg.selection {
                        SelectionMode::WeightedScalar => "weighted-scalar",
                        SelectionMode::Nsga2 => "nsga2",
                    },
                );
                population = Vec::with_capacity(cfg.population);
                trace = Vec::new();
                cache = HashMap::new();
                // Seed genomes for the initial population.
                seeds = (0..cfg.population.min(cfg.evaluations))
                    .map(|_| self.space.sample(&mut rng))
                    .collect();
                seeds.reverse(); // pop() takes them in creation order
                prior_wall = 0.0;
                pending_restore = VecDeque::new();
            }
        }

        let evaluated_counter = self.obs.counter("engine.models_evaluated");
        let cache_hit_counter = self.obs.counter("engine.cache_hits");
        let infeasible_counter = self.obs.counter("engine.infeasible");
        let retry_counter = self.obs.counter("engine.retries");
        let timeout_counter = self.obs.counter("engine.timeouts");
        let respawn_counter = self.obs.counter("engine.respawns");
        let migrant_counter = self.obs.counter("engine.migrants");
        let eval_hist = self.obs.histogram("engine.eval_time_s");

        // Epoch analytics instruments: gauges refreshed at each epoch
        // boundary, plus a histogram of the per-epoch hypervolume so
        // the convergence curve's distribution survives scraping gaps.
        let epoch_gauge = self.obs.gauge("search.epoch");
        let best_gauge = self.obs.gauge("search.best_fitness");
        let hv_gauge = self.obs.gauge("search.hypervolume");
        let archive_gauge = self.obs.gauge("search.archive_size");
        let entropy_gauge = self.obs.gauge("search.gene_entropy_bits");
        let distance_gauge = self.obs.gauge("search.mean_distance");
        let cache_rate_gauge = self.obs.gauge("search.cache_hit_rate");
        let fitness_p50_gauge = self.obs.gauge("search.fitness_p50");
        let hv_hist = self.obs.histogram("search.epoch_hypervolume");
        let op_gauges: Vec<_> = OperatorKind::ALL
            .iter()
            .map(|op| self.obs.gauge(&format!("search.op_{}_rate", op.name())))
            .collect();

        let (req_tx, req_rx) = channel::unbounded::<(usize, CandidateGenome)>();
        let (res_tx, res_rx) = channel::unbounded::<(usize, CandidateGenome, Measurement)>();
        let (mig_tx, mig_rx) = channel::unbounded::<Migrant>();
        let (done_tx, done_rx) = channel::unbounded::<()>();

        // Workers live in supervised slots on detached threads: a hung
        // evaluation can be abandoned (scoped threads would force a
        // join that never returns). They exit when `req_tx` drops or
        // when their generation goes stale after a respawn. In cluster
        // mode each slot instead proxies one remote worker; the
        // pipeline depth follows the slot count so the fill loops keep
        // every slot busy either way.
        let remote_workers = self.cluster.as_ref().map_or(0, |p| p.options.workers.len());
        let mut pipeline_depth = if remote_workers > 0 {
            remote_workers
        } else {
            cfg.threads
        };
        let live_remotes = Arc::new(AtomicUsize::new(remote_workers));
        let mut degraded = false;
        let mut supervisor = Supervisor::new();
        // Per-slot queues so cluster jobs route deterministically
        // (`id % workers`), giving every worker a reproducible job
        // stream — the property that makes cross-wire profile
        // subtrees byte-stable under the ticks clock. The shared
        // `req_tx` queue stays as the local/degradation path.
        let slot_alive: Arc<Vec<AtomicBool>> =
            Arc::new((0..remote_workers).map(|_| AtomicBool::new(true)).collect());
        let mut remote_txs: Vec<Sender<(usize, CandidateGenome)>> = Vec::new();
        if let Some(plan) = &self.cluster {
            for (index, addr) in plan.options.workers.iter().enumerate() {
                let (slot_tx, slot_rx) = channel::unbounded::<(usize, CandidateGenome)>();
                remote_txs.push(slot_tx);
                spawn_remote_slot(
                    &mut supervisor,
                    addr.clone(),
                    plan.clone(),
                    cfg.seed,
                    index,
                    slot_rx,
                    req_tx.clone(),
                    res_tx.clone(),
                    mig_tx.clone(),
                    Arc::clone(&live_remotes),
                    Arc::clone(&slot_alive),
                    self.cluster_health.clone(),
                    done_tx.clone(),
                    self.obs.clone(),
                );
            }
        } else {
            for _ in 0..cfg.threads {
                spawn_local_slot(
                    &mut supervisor,
                    req_rx.clone(),
                    res_tx.clone(),
                    Arc::clone(&self.evaluator),
                    self.obs.clone(),
                );
            }
        }
        // Kept only for cluster degradation, which spawns local slots
        // mid-run; otherwise workers (via the supervisor) hold the
        // clones and the master never sends results.
        let degrade_res_tx = (remote_workers > 0).then(|| res_tx.clone());
        drop(res_tx);
        drop(mig_tx); // remote slots hold the clones
        drop(done_tx);

        let max_attempts = cfg.evaluations * Self::MAX_ATTEMPT_FACTOR;
        let mut ledger = EngineLedger::new();
        let mut halted = false;

        macro_rules! dispatch {
            ($genome:expr, $attempt:expr, $op:expr) => {{
                let genome: CandidateGenome = $genome;
                let attempt: usize = $attempt;
                let id = c.next_id;
                c.next_id += 1;
                ledger.dispatch(
                    id as u64,
                    (genome.clone(), $op),
                    attempt,
                    cfg.eval_timeout.map(|t| Instant::now() + t),
                );
                route_job(&remote_txs, &slot_alive, &req_tx, id, genome);
                id
            }};
        }

        macro_rules! finalize {
            ($id:expr, $genome:expr, $measurement:expr, $op:expr) => {{
                let measurement: Measurement = $measurement;
                evaluated_counter.inc();
                if !measurement.hw.is_feasible() {
                    c.infeasible_count += 1;
                    infeasible_counter.inc();
                }
                // Transient verdicts (an exhausted retry budget) stay
                // out of the cache: a duplicate later gets a fresh
                // chance instead of inheriting a flaky failure.
                if measurement.failure_kind() != Some(FailureKind::Transient) {
                    cache.insert($genome.cache_key(), measurement.clone());
                }
                let (eval, entered) = self.admit($genome, measurement, &mut population, &mut rng);
                tracker.record_op($op, entered);
                if eval.fitness.is_finite() {
                    tracker.observe(
                        &self.objectives.oriented_values(&eval.measurement),
                        eval.fitness,
                    );
                }
                rt::info!(
                    self.obs,
                    "evaluated",
                    id = $id,
                    accuracy = eval.measurement.accuracy,
                    fitness = eval.fitness,
                    feasible = eval.measurement.hw.is_feasible(),
                );
                trace.push(eval);
                if tracker.should_snapshot(trace.len()) {
                    let (snap, stall_fired) =
                        tracker.snapshot(trace.len(), &population, c.cache_hits);
                    self.emit_epoch(&snap, stall_fired);
                    epoch_gauge.set(snap.epoch as f64);
                    best_gauge.set(snap.best_fitness);
                    hv_gauge.set(snap.hypervolume);
                    hv_hist.record(snap.hypervolume);
                    archive_gauge.set(snap.archive_size as f64);
                    entropy_gauge.set(snap.gene_entropy_bits);
                    distance_gauge.set(snap.mean_distance);
                    cache_rate_gauge.set(snap.cache_hit_rate);
                    fitness_p50_gauge.set(snap.fitness.p50);
                    for (gauge, op) in op_gauges.iter().zip(OperatorKind::ALL) {
                        gauge.set(snap.operators.rate(op));
                    }
                    // Mirror per-phase profile seconds (top-level spans
                    // of the attached profiler) into gauges, so the
                    // /metrics Prometheus exposition carries the time
                    // breakdown of a live search.
                    if let Some(profiler) = self.obs.profiler() {
                        for (phase, secs) in profiler.phase_seconds() {
                            self.obs
                                .gauge(&format!("profile.phase.{phase}_s"))
                                .set(secs);
                        }
                    }
                    self.status.note_snapshot(snap);
                }
                self.status.note_counters(
                    trace.len(),
                    c.cache_hits,
                    c.infeasible_count,
                    c.retry_count,
                    c.timeout_count,
                    c.respawn_count,
                );
                if let Some(policy) = &self.checkpoint {
                    if trace.len() % policy.every == 0 {
                        let state = build_checkpoint(
                            &cfg, &rng, &c, tracker.operator_totals(),
                            prior_wall + start.elapsed().as_secs_f64(),
                            &seeds, &population, &trace, &cache,
                            &ledger, &pending_restore,
                        );
                        save_checkpoint(policy, &state, &self.obs, &self.status);
                    }
                }
            }};
        }

        loop {
            let halt_requested = self.shutdown.is_requested()
                || self.halt_after.is_some_and(|n| trace.len() >= n);

            if remote_workers > 0 {
                // Fold island migrants into the population. Deliberately
                // outside the trace/budget/rng streams: migrants spend
                // worker-side compute only, replace the current worst
                // member deterministically, and seed the dedup cache so
                // the coordinator never re-evaluates one.
                while let Ok(migrant) = mig_rx.try_recv() {
                    let key = migrant.genome.cache_key();
                    if cache.contains_key(&key) {
                        continue;
                    }
                    cache.insert(key, migrant.measurement.clone());
                    let fitness = self.objectives.scalar(&migrant.measurement);
                    migrant_counter.inc();
                    rt::info!(
                        self.obs,
                        "migration",
                        slot = migrant.slot,
                        key = format!("{key:016x}"),
                        fitness = fitness,
                        accuracy = migrant.measurement.accuracy,
                    );
                    if !fitness.is_finite() {
                        continue;
                    }
                    let eval = Evaluated {
                        genome: migrant.genome,
                        measurement: migrant.measurement,
                        fitness,
                    };
                    if population.len() < cfg.population {
                        population.push(eval);
                    } else if let Some(worst) = (0..population.len()).min_by(|&a, &b| {
                        population[a]
                            .fitness
                            .partial_cmp(&population[b].fitness)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    }) {
                        if population[worst].fitness < eval.fitness {
                            population[worst] = eval;
                        }
                    }
                }
                // Jobs a retired slot forwarded off its queue land on
                // the shared queue; while remotes survive, hand them
                // back to `route_job` (once none do, the degradation
                // path's local slots consume the queue instead).
                while !degraded
                    && slot_alive.iter().any(|a| a.load(Ordering::Acquire))
                {
                    let Ok((id, genome)) = req_rx.try_recv() else {
                        break;
                    };
                    route_job(&remote_txs, &slot_alive, &req_tx, id, genome);
                }
                // Graceful degradation: when the last remote slot has
                // retired, warn and fall back to local in-process
                // evaluation rather than dying with jobs in flight.
                if !degraded && live_remotes.load(Ordering::Acquire) == 0 {
                    degraded = true;
                    rt::warn!(
                        self.obs,
                        "cluster_degraded",
                        local_slots = cfg.threads,
                    );
                    if let Some(health) = &self.cluster_health {
                        health.set_degraded();
                    }
                    let res_tx = degrade_res_tx
                        .clone()
                        .expect("degrade sender retained in cluster mode");
                    for _ in 0..cfg.threads {
                        spawn_local_slot(
                            &mut supervisor,
                            req_rx.clone(),
                            res_tx.clone(),
                            Arc::clone(&self.evaluator),
                            self.obs.clone(),
                        );
                    }
                    pipeline_depth = cfg.threads;
                }
            }

            if !halt_requested {
                // Re-dispatch retries whose backoff has elapsed, then
                // work restored from a checkpoint (its unique budget is
                // already counted), then fresh candidates.
                let now = Instant::now();
                while ledger.in_flight_len() < pipeline_depth {
                    let Some((attempt, (genome, op))) = ledger.pop_ready_retry(now) else {
                        break;
                    };
                    let key = genome.cache_key();
                    let id = dispatch!(genome, attempt, op);
                    rt::warn!(
                        self.obs,
                        "retry",
                        id = id,
                        attempt = attempt,
                        key = format!("{key:016x}"),
                    );
                }
                while ledger.in_flight_len() < pipeline_depth && !pending_restore.is_empty() {
                    let job = pending_restore.pop_front().expect("nonempty");
                    let key = job.genome.cache_key();
                    let attempt = job.attempt;
                    let id = dispatch!(job.genome, attempt, job.op);
                    if attempt == 0 {
                        rt::debug!(self.obs, "submit", id = id, key = format!("{key:016x}"));
                    } else {
                        rt::warn!(
                            self.obs,
                            "retry",
                            id = id,
                            attempt = attempt,
                            key = format!("{key:016x}"),
                        );
                    }
                }
                while ledger.in_flight_len() < pipeline_depth
                    && c.submitted_unique < cfg.evaluations
                    && c.attempts < max_attempts
                {
                    let (genome, op) = {
                        // Scoped to candidate selection only: the span
                        // must close before the job is handed to the
                        // pool, so master-side clock reads never overlap
                        // a running worker (which would make ticks-clock
                        // profiles depend on thread interleaving).
                        let _prof = rt::prof_span!("dispatch");
                        match seeds.pop() {
                            Some(g) => (g, OperatorKind::Seed),
                            None => self.breed(&population, &mut rng),
                        }
                    };
                    c.attempts += 1;
                    let key = genome.cache_key();
                    if let Some(cached) = cache.get(&key) {
                        // Duplicate: serve from cache, no budget, no
                        // worker round-trip.
                        c.cache_hits += 1;
                        cache_hit_counter.inc();
                        rt::debug!(self.obs, "cache_hit", key = format!("{key:016x}"));
                        let (eval, entered) =
                            self.admit(genome, cached.clone(), &mut population, &mut rng);
                        // A cached duplicate still says something about
                        // its operator's usefulness.
                        tracker.record_op(op, entered);
                        // Cached repeats are not re-appended to the
                        // trace; Table III counts unique models.
                        let _ = eval;
                        continue;
                    }
                    // Emit before handing the genome to the pool: with
                    // one thread the master then blocks on recv, so the
                    // worker's own events always land after this line —
                    // the property that makes seeded traces replayable.
                    rt::debug!(
                        self.obs,
                        "submit",
                        id = c.next_id,
                        key = format!("{key:016x}"),
                    );
                    c.submitted_unique += 1;
                    dispatch!(genome, 0, op);
                }
            }

            let drained = ledger.quiescent() && pending_restore.is_empty();
            if halt_requested || drained {
                if halt_requested {
                    halted = true;
                    // Trace level for the same reason as "resume": the
                    // halted file must be a byte-prefix of the
                    // uninterrupted run's Debug-level JSONL.
                    rt::trace!(self.obs, "halt", evaluations_done = trace.len());
                    if let Some(policy) = &self.checkpoint {
                        let state = build_checkpoint(
                            &cfg, &rng, &c, tracker.operator_totals(),
                            prior_wall + start.elapsed().as_secs_f64(),
                            &seeds, &population, &trace, &cache,
                            &ledger, &pending_restore,
                        );
                        save_checkpoint(policy, &state, &self.obs, &self.status);
                    }
                }
                break;
            }

            // Sleep until a result arrives — or the earliest deadline /
            // retry-ready time, whichever comes first. Before a cluster
            // run has degraded, cap the sleep so the master observes
            // migrants and lost workers even when no result will ever
            // arrive (e.g. every remote unreachable from the start).
            let wake = ledger.next_wake();
            let wake = if remote_workers > 0 && !degraded {
                let poll = Instant::now() + Duration::from_millis(100);
                Some(wake.map_or(poll, |w| w.min(poll)))
            } else {
                wake
            };
            let received = match wake {
                None => Some(res_rx.recv().expect("worker pool alive")),
                Some(deadline) => match res_rx.recv_deadline(deadline) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => {
                        unreachable!("supervisor retains worker senders")
                    }
                },
            };

            match received {
                Some((id, genome, measurement)) => {
                    let job = match ledger.take_result(id as u64) {
                        ResultClass::Stale => {
                            // A timed-out dispatch finally reported;
                            // its verdict was already decided.
                            rt::trace!(self.obs, "late_result", id = id);
                            continue;
                        }
                        ResultClass::Fresh(job) => job,
                        ResultClass::Unknown => unreachable!("result for in-flight id"),
                    };
                    let op = job.payload.1;
                    c.total_eval_time += measurement.eval_time_s;
                    c.train_time += measurement.train_time_s;
                    c.hw_time += measurement.hw_time_s;
                    eval_hist.record(measurement.eval_time_s);
                    if measurement.failure_kind() == Some(FailureKind::Transient)
                        && job.attempt < cfg.max_retries
                    {
                        let key = genome.cache_key();
                        let attempt = job.attempt + 1;
                        c.retry_count += 1;
                        retry_counter.inc();
                        ledger.schedule_retry(
                            Instant::now() + backoff_delay(&cfg, key, attempt),
                            attempt,
                            (genome, op),
                        );
                    } else {
                        finalize!(id, genome, measurement, op);
                    }
                }
                None => {
                    // Deadline pass: abandon every overdue dispatch.
                    // The ledger marks each id stale so its late
                    // result (if one ever arrives) drops on receipt.
                    let now = Instant::now();
                    for (id, job) in ledger.expire(now) {
                        let id = id as usize;
                        let (genome, op) = job.payload;
                        c.timeout_count += 1;
                        timeout_counter.inc();
                        rt::warn!(
                            self.obs,
                            "eval_timeout",
                            id = id,
                            attempt = job.attempt,
                        );
                        if let Some(slot) = supervisor.claimed_slot(id as u64) {
                            // The slot is wedged inside this job:
                            // abandon its thread and start a fresh one.
                            supervisor.record_stall();
                            supervisor.respawn(slot);
                            c.respawn_count += 1;
                            respawn_counter.inc();
                            rt::warn!(self.obs, "worker_respawn", slot = slot, id = id);
                        }
                        let key = genome.cache_key();
                        if job.attempt < cfg.max_retries {
                            let attempt = job.attempt + 1;
                            c.retry_count += 1;
                            retry_counter.inc();
                            ledger.schedule_retry(
                                now + backoff_delay(&cfg, key, attempt),
                                attempt,
                                (genome, op),
                            );
                        } else {
                            let mut m =
                                Measurement::infeasible(InfeasibleReason::EvalTimeout);
                            // The wait itself is wall clock spent on
                            // this candidate.
                            m.eval_time_s =
                                cfg.eval_timeout.map_or(0.0, |t| t.as_secs_f64());
                            c.total_eval_time += m.eval_time_s;
                            finalize!(id, genome, m, op);
                        }
                    }
                }
            }
        }
        drop(req_tx); // idle workers drain and exit
        drop(remote_txs); // retired slots stop bouncing and acknowledge

        // Remote slots answer the drain by killing their sessions — a
        // best-effort `kill_all` so workers wind down now instead of
        // waiting out their idle timeout. Slots are detached threads,
        // so wait (briefly, bounded) for each one's acknowledgement;
        // without this a coordinator process can exit before the
        // handshake reaches the wire. Slots retired earlier (lost
        // workers, stale generations) have already acknowledged.
        if remote_workers > 0 {
            let grace = Instant::now() + Duration::from_secs(2);
            for _ in 0..remote_workers {
                let now = Instant::now();
                if now >= grace || done_rx.recv_timeout(grace - now).is_err() {
                    break;
                }
            }
        }

        let models_evaluated = trace.len();
        if !halted {
            rt::info!(
                self.obs,
                "search_end",
                models_evaluated = models_evaluated,
                cache_hits = c.cache_hits,
                infeasible = c.infeasible_count,
            );
            if let Some(policy) = &self.checkpoint {
                let state = build_checkpoint(
                    &cfg, &rng, &c, tracker.operator_totals(),
                    prior_wall + start.elapsed().as_secs_f64(),
                    &seeds, &population, &trace, &cache,
                    &ledger, &pending_restore,
                );
                save_checkpoint(policy, &state, &self.obs, &self.status);
            }
        }
        self.status.note_counters(
            trace.len(),
            c.cache_hits,
            c.infeasible_count,
            c.retry_count,
            c.timeout_count,
            c.respawn_count,
        );
        self.status.note_done();
        self.obs.flush();
        let stats = EngineStats {
            models_evaluated,
            cache_hits: c.cache_hits,
            total_eval_time_s: c.total_eval_time,
            avg_eval_time_s: if models_evaluated > 0 {
                c.total_eval_time / models_evaluated as f64
            } else {
                0.0
            },
            wall_time_s: prior_wall + start.elapsed().as_secs_f64(),
            infeasible_count: c.infeasible_count,
            train_time_s: c.train_time,
            hw_time_s: c.hw_time,
            retry_count: c.retry_count,
            timeout_count: c.timeout_count,
            respawn_count: c.respawn_count,
            worker_latency: self.cluster.as_ref().map_or_else(Vec::new, |plan| {
                plan.options
                    .workers
                    .iter()
                    .map(|addr| {
                        let h = self
                            .obs
                            .histogram_with("cluster.worker_eval_s", &[("worker", addr.as_str())]);
                        WorkerLatency {
                            addr: addr.clone(),
                            jobs: h.count(),
                            p50_s: h.quantile(0.5),
                            p95_s: h.quantile(0.95),
                        }
                    })
                    .collect()
            }),
        };
        EngineOutcome {
            population,
            trace,
            stats,
            halted,
        }
    }

    /// Emits the structured `epoch` trace event (and the `stall`
    /// warning on a detector rising edge). Every field is derived from
    /// deterministic engine state — no clocks — so seeded traces stay
    /// byte-reproducible with analytics on.
    fn emit_epoch(&self, snap: &crate::analytics::PopulationSnapshot, stall_fired: bool) {
        rt::info!(
            self.obs,
            "epoch",
            epoch = snap.epoch,
            evaluations = snap.evaluations,
            population = snap.population,
            has_best = snap.has_best,
            best_fitness = snap.best_fitness,
            fitness_min = snap.fitness.min,
            fitness_p25 = snap.fitness.p25,
            fitness_p50 = snap.fitness.p50,
            fitness_p75 = snap.fitness.p75,
            fitness_max = snap.fitness.max,
            fitness_mean = snap.fitness.mean,
            hypervolume = snap.hypervolume,
            archive_size = snap.archive_size,
            gene_entropy_bits = snap.gene_entropy_bits,
            mean_distance = snap.mean_distance,
            cache_hit_rate = snap.cache_hit_rate,
            seed_total = snap.operators.total(OperatorKind::Seed),
            seed_entered = snap.operators.entered(OperatorKind::Seed),
            sample_total = snap.operators.total(OperatorKind::Sample),
            sample_entered = snap.operators.entered(OperatorKind::Sample),
            crossover_total = snap.operators.total(OperatorKind::Crossover),
            crossover_entered = snap.operators.entered(OperatorKind::Crossover),
            mutate_total = snap.operators.total(OperatorKind::Mutate),
            mutate_entered = snap.operators.entered(OperatorKind::Mutate),
            stalled = snap.stalled,
        );
        if stall_fired {
            rt::warn!(
                self.obs,
                "stall",
                epoch = snap.epoch,
                window = self.config.analytics.stall_window,
                hypervolume = snap.hypervolume,
                best_fitness = snap.best_fitness,
            );
        }
    }

    /// Scores a measured candidate and inserts it into the population
    /// (steady-state replacement). Returns the evaluated record plus
    /// whether it actually entered the population (filled a slot or
    /// displaced a member) — the per-operator success signal.
    fn admit(
        &self,
        genome: CandidateGenome,
        measurement: Measurement,
        population: &mut Vec<Evaluated>,
        rng: &mut StdRng,
    ) -> (Evaluated, bool) {
        let _prof = rt::prof_span!("replace");
        let fitness = self.objectives.scalar(&measurement);
        let eval = Evaluated {
            genome,
            measurement,
            fitness,
        };
        if population.len() < self.config.population {
            population.push(eval.clone());
            return (eval, true);
        }
        match self.config.selection {
            SelectionMode::WeightedScalar => {
                // Worst-of-tournament replacement: the child replaces
                // the weakest of `tournament` random members if it
                // beats them.
                let worst_idx = (0..self.config.tournament)
                    .map(|_| rng.gen_range(0..population.len()))
                    .min_by(|&a, &b| {
                        population[a]
                            .fitness
                            .partial_cmp(&population[b].fitness)
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("tournament >= 1");
                let replaced = eval.fitness > population[worst_idx].fitness;
                rt::trace!(
                    self.obs,
                    "replace",
                    victim = worst_idx,
                    victim_fitness = population[worst_idx].fitness,
                    replaced = replaced,
                );
                if replaced {
                    population[worst_idx] = eval.clone();
                }
                (eval, replaced)
            }
            SelectionMode::Nsga2 => {
                // Child joins, then the (rank, crowding)-worst member
                // is evicted. The child "entered" unless it was itself
                // the evicted member (it sat at the last index).
                population.push(eval.clone());
                let evict = Self::nsga2_worst(&self.rank_keys(population));
                rt::trace!(self.obs, "replace", victim = evict, replaced = true);
                let entered = evict != population.len() - 1;
                population.swap_remove(evict);
                (eval, entered)
            }
        }
    }

    /// Oriented objective vectors for ranking; infeasible candidates map
    /// to `-inf` everywhere so they always land in the last front.
    fn rank_keys(&self, population: &[Evaluated]) -> Vec<Vec<f64>> {
        population
            .iter()
            .map(|e| {
                if e.measurement.hw.is_feasible() {
                    self.objectives.oriented_values(&e.measurement)
                } else {
                    vec![f64::NEG_INFINITY; self.objectives.objectives().len()]
                }
            })
            .collect()
    }

    /// Index of the NSGA-II-worst point: last non-domination front,
    /// lowest crowding distance within it.
    fn nsga2_worst(points: &[Vec<f64>]) -> usize {
        let fronts = crate::pareto::non_dominated_sort(points);
        let last = fronts.last().expect("nonempty population");
        let members: Vec<Vec<f64>> = last.iter().map(|&i| points[i].clone()).collect();
        let crowding = crate::pareto::crowding_distance(&members);
        last.iter()
            .copied()
            .zip(crowding)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .expect("last front nonempty")
    }

    /// Breeds one child from the current population (or samples fresh if
    /// the population is still too small), tagging it with the operator
    /// that produced it for the epoch analytics.
    fn breed(&self, population: &[Evaluated], rng: &mut StdRng) -> (CandidateGenome, OperatorKind) {
        let _prof = rt::prof_span!("breed");
        if population.len() < 2 {
            rt::trace!(self.obs, "breed", method = "sample");
            return (self.space.sample(rng), OperatorKind::Sample);
        }
        let a = self.tournament_select(population, rng);
        let (child, op) = if rng.gen_bool(self.config.crossover_rate) {
            rt::trace!(self.obs, "breed", method = "crossover");
            let b = self.tournament_select(population, rng);
            (
                self.space.crossover(&a.genome, &b.genome, rng),
                OperatorKind::Crossover,
            )
        } else {
            rt::trace!(self.obs, "breed", method = "mutate");
            (a.genome.clone(), OperatorKind::Mutate)
        };
        (self.space.mutate(&child, rng), op)
    }

    fn tournament_select<'a>(
        &self,
        population: &'a [Evaluated],
        rng: &mut StdRng,
    ) -> &'a Evaluated {
        let picks: Vec<&Evaluated> = (0..self.config.tournament)
            .map(|_| &population[rng.gen_range(0..population.len())])
            .collect();
        let winner = match self.config.selection {
            SelectionMode::WeightedScalar => picks
                .into_iter()
                .max_by(|a, b| {
                    a.fitness
                        .partial_cmp(&b.fitness)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("tournament >= 1"),
            SelectionMode::Nsga2 => {
                // Crowded tournament: a non-dominated pick wins.
                let cloned: Vec<Evaluated> = picks.iter().map(|e| (*e).clone()).collect();
                let keys = self.rank_keys(&cloned);
                let fronts = crate::pareto::non_dominated_sort(&keys);
                picks[fronts[0][0]]
            }
        };
        rt::trace!(
            self.obs,
            "tournament",
            size = self.config.tournament,
            winner_fitness = winner.fitness,
        );
        winner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitness::{Objective, ObjectiveSet};
    use crate::measurement::HwMetrics;

    /// A fast synthetic evaluator: fitness landscape is a function of
    /// the genome alone, no MLP training. Lets engine tests run in
    /// microseconds and be exactly repeatable.
    struct ToyEvaluator {
        /// Panic on genomes whose first layer has exactly this width
        /// (failure-injection hook).
        panic_on_width: Option<usize>,
    }

    impl Evaluator for ToyEvaluator {
        fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
            if let Some(w) = self.panic_on_width {
                if genome.nna.layers.first().map(|l| l.neurons) == Some(w) {
                    panic!("injected failure");
                }
            }
            // "Accuracy" peaks when total neurons approach 256.
            let neurons = genome.nna.total_neurons() as f32;
            let accuracy = 1.0 - ((neurons - 256.0).abs() / 512.0).min(1.0);
            Measurement {
                accuracy,
                train_accuracy: accuracy,
                params: neurons as usize * 10,
                neurons: neurons as usize,
                hw: HwMetrics::Gpu {
                    outputs_per_s: 1e6 / (1.0 + neurons as f64),
                    efficiency: 0.01,
                    latency_s: 1e-4,
                    effective_gflops: 1.0,
                    power_w: 50.0,
                },
                eval_time_s: 1e-6,
                train_time_s: 6e-7,
                hw_time_s: 4e-7,
            }
        }

        fn target_name(&self) -> String {
            "toy".to_string()
        }
    }

    fn engine(evals: usize, seed: u64, threads: usize) -> Engine {
        let cfg = EvolutionConfig {
            population: 12,
            evaluations: evals,
            tournament: 3,
            crossover_rate: 0.5,
            seed,
            threads,
            selection: SelectionMode::WeightedScalar,
            ..EvolutionConfig::small()
        };
        Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            cfg,
        )
    }

    #[test]
    fn respects_evaluation_budget_exactly() {
        let out = engine(50, 1, 1).run();
        assert_eq!(out.stats.models_evaluated, 50);
        assert_eq!(out.trace.len(), 50);
    }

    #[test]
    fn search_improves_over_random_start() {
        let out = engine(150, 2, 1).run();
        let first_quarter_best = out.trace[..30]
            .iter()
            .map(|e| e.fitness)
            .fold(f64::MIN, f64::max);
        let overall_best = out.best().unwrap().fitness;
        assert!(overall_best >= first_quarter_best);
        // The toy optimum (256 neurons -> accuracy 1.0) should be
        // approached.
        assert!(overall_best > 0.9, "best fitness {overall_best}");
    }

    #[test]
    fn deterministic_with_one_thread() {
        let a = engine(60, 7, 1).run();
        let b = engine(60, 7, 1).run();
        let fa: Vec<f64> = a.trace.iter().map(|e| e.fitness).collect();
        let fb: Vec<f64> = b.trace.iter().map(|e| e.fitness).collect();
        assert_eq!(fa, fb);
        assert_eq!(a.best().unwrap().genome, b.best().unwrap().genome);
    }

    #[test]
    fn cache_prevents_duplicate_evaluations() {
        // Tiny space: duplicates are inevitable, so the cache must fire.
        let space = SearchSpace::gpu_default()
            .with_layers(1, 1)
            .with_neurons(4, 6);
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 40,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 3,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
            ..EvolutionConfig::small()
        };
        let eng = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        );
        let out = eng.run();
        assert!(
            out.stats.cache_hits > 0,
            "expected cache hits in a tiny space"
        );
        // Unique evaluations cannot exceed the distinct-genome count:
        // 3 widths x 4 activations x 2 bias x 8 batches = 192 (bounded).
        assert!(out.stats.models_evaluated <= 40);
    }

    #[test]
    fn worker_panic_becomes_infeasible_candidate() {
        let space = SearchSpace::gpu_default();
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 30,
            tournament: 2,
            crossover_rate: 0.5,
            seed: 5,
            threads: 2,
            selection: SelectionMode::WeightedScalar,
            ..EvolutionConfig::small()
        };
        let eng = Engine::new(
            // Panic on a width that random sampling will hit eventually;
            // even if not hit, the search must complete.
            Arc::new(ToyEvaluator {
                panic_on_width: Some(100),
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        );
        let out = eng.run();
        assert_eq!(out.stats.models_evaluated, 30);
        // Any panicked candidates appear as infeasible in the trace.
        for e in &out.trace {
            if !e.measurement.hw.is_feasible() {
                assert_eq!(e.fitness, f64::NEG_INFINITY);
            }
        }
    }

    #[test]
    fn multithreaded_run_completes_budget() {
        let out = engine(80, 11, 4).run();
        assert_eq!(out.stats.models_evaluated, 80);
        assert!(out.population.len() <= 12);
        assert!(out.stats.wall_time_s > 0.0);
    }

    #[test]
    fn population_respects_capacity() {
        let out = engine(100, 13, 1).run();
        assert_eq!(out.population.len(), 12);
    }

    #[test]
    fn stats_time_accounting() {
        let out = engine(25, 17, 1).run();
        assert!(out.stats.total_eval_time_s > 0.0);
        assert!((out.stats.avg_eval_time_s - out.stats.total_eval_time_s / 25.0).abs() < 1e-12);
    }

    #[test]
    fn stats_track_stage_times_and_infeasibles() {
        let out = engine(25, 17, 1).run();
        // The toy evaluator reports fixed per-stage times and never
        // fails, so the totals are exact multiples.
        assert_eq!(out.stats.infeasible_count, 0);
        assert!((out.stats.train_time_s - 25.0 * 6e-7).abs() < 1e-12);
        assert!((out.stats.hw_time_s - 25.0 * 4e-7).abs() < 1e-12);
    }

    #[test]
    fn observed_run_emits_lifecycle_events_and_counters() {
        let ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let obs = rt::obs::Obs::builder().sink(Arc::clone(&ring)).build();
        let space = SearchSpace::gpu_default()
            .with_layers(1, 1)
            .with_neurons(4, 6); // tiny space forces cache hits
        let cfg = EvolutionConfig {
            population: 8,
            evaluations: 40,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 3,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
            ..EvolutionConfig::small()
        };
        let out = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            space,
            ObjectiveSet::accuracy_only(),
            cfg,
        )
        .with_obs(obs.clone())
        .run();

        let events = ring.snapshot();
        let has = |name: &str| events.iter().any(|e| e.name == name);
        for required in [
            "search_start",
            "submit",
            "evaluated",
            "cache_hit",
            "breed",
            "tournament",
            "replace",
            "search_end",
        ] {
            assert!(has(required), "missing event kind {required:?}");
        }
        let count = |name: &str| events.iter().filter(|e| e.name == name).count();
        assert_eq!(count("submit"), out.stats.models_evaluated);
        assert_eq!(count("evaluated"), out.stats.models_evaluated);
        assert_eq!(count("cache_hit"), out.stats.cache_hits);

        // The acceptance identity: counters sum to models + cache hits.
        let metric = |name: &str| {
            obs.snapshot()
                .iter()
                .find_map(|(n, v)| match (n == name, v) {
                    (true, rt::obs::MetricValue::Counter(c)) => Some(*c),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no counter {name:?}"))
        };
        assert_eq!(
            metric("engine.models_evaluated") + metric("engine.cache_hits"),
            (out.stats.models_evaluated + out.stats.cache_hits) as u64
        );
        assert_eq!(metric("engine.infeasible"), out.stats.infeasible_count as u64);
    }

    fn numeric_field(e: &rt::obs::Event, key: &str) -> f64 {
        e.fields
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| match v {
                rt::obs::Value::F64(x) => *x,
                rt::obs::Value::U64(x) => *x as f64,
                rt::obs::Value::I64(x) => *x as f64,
                other => panic!("field {key:?} is not numeric: {other:?}"),
            })
            .unwrap_or_else(|| panic!("epoch event missing field {key:?}"))
    }

    #[test]
    fn epoch_events_fire_with_monotone_hypervolume() {
        let ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let obs = rt::obs::Obs::builder().sink(Arc::clone(&ring)).build();
        let out = engine(60, 7, 1).with_obs(obs.clone()).run();

        let events = ring.snapshot();
        let epochs: Vec<_> = events.iter().filter(|e| e.name == "epoch").collect();
        // population 12, 60 evaluations => one epoch per population.
        assert_eq!(epochs.len(), 5);
        let mut prev_hv = 0.0;
        for (i, e) in epochs.iter().enumerate() {
            assert_eq!(numeric_field(e, "epoch") as usize, i + 1);
            assert_eq!(numeric_field(e, "evaluations") as usize, (i + 1) * 12);
            let hv = numeric_field(e, "hypervolume");
            assert!(hv >= prev_hv, "hypervolume fell: {prev_hv} -> {hv}");
            prev_hv = hv;
            assert!(numeric_field(e, "gene_entropy_bits") >= 0.0);
            assert!((0.0..=1.0).contains(&numeric_field(e, "mean_distance")));
        }
        assert!(prev_hv > 0.0, "feasible toy run must accumulate volume");

        // Operator totals account for every admission: unique
        // evaluations plus cache-hit re-admissions.
        let last = epochs.last().unwrap();
        let produced = ["seed_total", "sample_total", "crossover_total", "mutate_total"]
            .iter()
            .map(|k| numeric_field(last, k) as usize)
            .sum::<usize>();
        assert_eq!(produced, out.stats.models_evaluated + out.stats.cache_hits);

        // The metrics registry carries the epoch gauges.
        let gauge = |name: &str| {
            obs.snapshot()
                .iter()
                .find_map(|(n, v)| match (n == name, v) {
                    (true, rt::obs::MetricValue::Gauge(g)) => Some(*g),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("no gauge {name:?}"))
        };
        assert_eq!(gauge("search.epoch"), 5.0);
        assert!((gauge("search.hypervolume") - prev_hv).abs() < 1e-15);
        assert!(gauge("search.best_fitness") > 0.0);
    }

    #[test]
    fn resumed_run_reports_identical_epochs() {
        let epoch_lines = |events: &[rt::obs::Event]| -> Vec<String> {
            events
                .iter()
                .filter(|e| e.name == "epoch")
                .map(|e| e.to_json(0, false).to_string())
                .collect()
        };

        let full_ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let full_obs = rt::obs::Obs::builder().sink(Arc::clone(&full_ring)).build();
        let _ = engine(40, 47, 1).with_obs(full_obs).run();
        let full = epoch_lines(&full_ring.snapshot());
        assert_eq!(full.len(), 3); // epochs at 12, 24, 36

        let path = tmp_path("epoch-resume.json");
        let first_ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let first_obs = rt::obs::Obs::builder().sink(Arc::clone(&first_ring)).build();
        // Halt at 20: mid-epoch, so the tracker state to rebuild is a
        // partial chunk — the hardest restore case.
        let _ = engine(40, 47, 1)
            .with_obs(first_obs)
            .with_checkpoint(CheckpointPolicy::new(&path, 5))
            .with_halt_after(20)
            .run();
        let state = CheckpointState::load(&path).unwrap();
        let resumed_ring = rt::obs::RingSink::new(rt::obs::Level::Trace, 8192);
        let resumed_obs = rt::obs::Obs::builder().sink(Arc::clone(&resumed_ring)).build();
        let _ = engine(40, 47, 1)
            .with_obs(resumed_obs)
            .resume(state)
            .unwrap();

        let mut stitched = epoch_lines(&first_ring.snapshot());
        stitched.extend(epoch_lines(&resumed_ring.snapshot()));
        assert_eq!(stitched, full, "resumed epoch events must be bit-identical");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn status_cell_tracks_run_lifecycle() {
        use rt::json::Json;
        let status = crate::analytics::StatusCell::new();
        let out = engine(24, 9, 1).with_status(status.clone()).run();
        let json = status.to_json();
        assert_eq!(json.get("running"), Some(&Json::Bool(false)));
        assert_eq!(json.get("done"), Some(&Json::Bool(true)));
        assert_eq!(
            json.get("models_evaluated").and_then(Json::as_f64),
            Some(out.stats.models_evaluated as f64)
        );
        let epoch = json.get("epoch").expect("epoch snapshot present");
        assert_eq!(epoch.get("evaluations").and_then(Json::as_f64), Some(24.0));
    }

    #[test]
    fn multiobjective_search_keeps_throughput_pressure() {
        let cfg = EvolutionConfig {
            population: 12,
            evaluations: 150,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 23,
            threads: 1,
            selection: SelectionMode::WeightedScalar,
            ..EvolutionConfig::small()
        };
        let accuracy_only = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            EvolutionConfig { seed: 23, ..cfg },
        )
        .run();
        let combined = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::new(vec![
                Objective::maximize("accuracy").with_weight(0.2),
                Objective::maximize("log_throughput").with_weight(1.0),
            ]),
            cfg,
        )
        .run();
        // Toy throughput falls with neurons, so the throughput-weighted
        // search should settle on smaller networks.
        let mean_neurons = |o: &EngineOutcome| {
            o.population
                .iter()
                .map(|e| e.measurement.neurons)
                .sum::<usize>() as f64
                / o.population.len() as f64
        };
        assert!(mean_neurons(&combined) < mean_neurons(&accuracy_only));
    }

    #[test]
    fn nsga2_mode_completes_and_keeps_population_size() {
        let cfg = EvolutionConfig {
            population: 10,
            evaluations: 80,
            tournament: 3,
            crossover_rate: 0.5,
            seed: 31,
            threads: 1,
            selection: SelectionMode::Nsga2,
            ..EvolutionConfig::small()
        };
        let out = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::new(vec![
                Objective::maximize("accuracy"),
                Objective::maximize("log_throughput"),
            ]),
            cfg,
        )
        .run();
        assert_eq!(out.stats.models_evaluated, 80);
        assert_eq!(out.population.len(), 10);
    }

    #[test]
    fn nsga2_population_is_more_diverse_on_the_front() {
        // The toy landscape trades accuracy (peak at 256 neurons)
        // against throughput (falls with neurons). NSGA-II should keep
        // a wider spread of neuron counts than scalarization collapses
        // to.
        let run = |selection: SelectionMode, seed: u64| {
            let cfg = EvolutionConfig {
                population: 14,
                evaluations: 200,
                tournament: 3,
                crossover_rate: 0.5,
                seed,
                threads: 1,
                selection,
                ..EvolutionConfig::small()
            };
            let out = Engine::new(
                Arc::new(ToyEvaluator {
                    panic_on_width: None,
                }),
                SearchSpace::gpu_default(),
                ObjectiveSet::new(vec![
                    Objective::maximize("accuracy"),
                    Objective::maximize("log_throughput"),
                ]),
                cfg,
            )
            .run();
            let neurons: Vec<f32> = out
                .population
                .iter()
                .map(|e| e.measurement.neurons as f32)
                .collect();
            ecad_tensor::stats::std_dev(&neurons)
        };
        // Average over a few seeds to damp run-to-run noise.
        let spread = |mode: SelectionMode| (run(mode, 1) + run(mode, 2) + run(mode, 3)) / 3.0;
        let nsga = spread(SelectionMode::Nsga2);
        let scalar = spread(SelectionMode::WeightedScalar);
        assert!(
            nsga > scalar * 0.8,
            "nsga2 spread {nsga} should not collapse below scalar spread {scalar}"
        );
    }

    #[test]
    fn nsga2_deterministic_per_seed() {
        let run = || {
            let cfg = EvolutionConfig {
                population: 8,
                evaluations: 40,
                tournament: 2,
                crossover_rate: 0.5,
                seed: 5,
                threads: 1,
                selection: SelectionMode::Nsga2,
                ..EvolutionConfig::small()
            };
            Engine::new(
                Arc::new(ToyEvaluator {
                    panic_on_width: None,
                }),
                SearchSpace::gpu_default(),
                ObjectiveSet::accuracy_only(),
                cfg,
            )
            .run()
            .trace
            .iter()
            .map(|e| e.genome.describe())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Fault tolerance: deadlines, retries, supervision, checkpoints.
    // With `retry_backoff: Duration::ZERO` and one thread, retries are
    // re-dispatched before any fresh candidate, so the FaultyEvaluator's
    // global call indices stay deterministic.
    // ------------------------------------------------------------------

    use crate::checkpoint::{CheckpointPolicy, CheckpointState};
    use crate::faults::{FaultKind, FaultSchedule, FaultyEvaluator};
    use std::time::Duration;

    fn faulty_engine(schedule: FaultSchedule, cfg: EvolutionConfig) -> Engine {
        Engine::new(
            Arc::new(FaultyEvaluator::new(
                Arc::new(ToyEvaluator {
                    panic_on_width: None,
                }),
                schedule,
            )),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            cfg,
        )
    }

    fn fault_cfg(evals: usize, seed: u64) -> EvolutionConfig {
        EvolutionConfig {
            population: 4,
            evaluations: evals,
            tournament: 2,
            seed,
            retry_backoff: Duration::ZERO,
            ..EvolutionConfig::small()
        }
    }

    #[test]
    fn transient_failures_are_retried_and_counted() {
        // Calls 1 and 4 fail transiently; with zero backoff each retry
        // is the very next call and succeeds. The budget is unaffected.
        let schedule = FaultSchedule::new()
            .at(1, FaultKind::Transient)
            .at(4, FaultKind::Transient);
        let out = faulty_engine(schedule, fault_cfg(8, 41)).run();
        assert_eq!(out.stats.models_evaluated, 8);
        assert_eq!(out.stats.retry_count, 2);
        assert_eq!(out.stats.timeout_count, 0);
        assert_eq!(out.stats.respawn_count, 0);
        assert!(!out.halted);
        assert!(out.trace.iter().all(|e| e.measurement.hw.is_feasible()));
    }

    #[test]
    fn stalled_evaluation_times_out_and_respawns_the_slot() {
        // Call 2 stalls for 2s against a 50ms deadline: the dispatch is
        // abandoned (timeout + respawn), retried clean, and the stale
        // thread's late result is dropped.
        let schedule = FaultSchedule::new().at(2, FaultKind::Stall(Duration::from_secs(2)));
        let cfg = EvolutionConfig {
            eval_timeout: Some(Duration::from_millis(50)),
            ..fault_cfg(6, 42)
        };
        let out = faulty_engine(schedule, cfg).run();
        assert_eq!(out.stats.models_evaluated, 6);
        assert_eq!(out.stats.timeout_count, 1);
        assert_eq!(out.stats.respawn_count, 1);
        assert_eq!(out.stats.retry_count, 1);
        assert!(out.trace.iter().all(|e| e.measurement.hw.is_feasible()));
    }

    #[test]
    fn injected_panics_are_retried_then_succeed() {
        let schedule = FaultSchedule::new().at(3, FaultKind::Panic);
        let out = faulty_engine(schedule, fault_cfg(8, 43)).run();
        assert_eq!(out.stats.models_evaluated, 8);
        assert_eq!(out.stats.retry_count, 1);
        assert!(out.trace.iter().all(|e| e.measurement.hw.is_feasible()));
    }

    #[test]
    fn exhausted_retries_accept_the_last_transient_verdict() {
        // The same candidate fails on its first try and both retries
        // (max_retries = 2 ⇒ calls 0, 1, 2 are one candidate), so its
        // transient verdict becomes final — and is NOT cached.
        let schedule = FaultSchedule::new()
            .at(0, FaultKind::Transient)
            .at(1, FaultKind::Transient)
            .at(2, FaultKind::Transient);
        let out = faulty_engine(schedule, fault_cfg(5, 44)).run();
        assert_eq!(out.stats.models_evaluated, 5);
        assert_eq!(out.stats.retry_count, 2);
        assert_eq!(out.stats.infeasible_count, 1);
        let failed: Vec<_> = out
            .trace
            .iter()
            .filter(|e| !e.measurement.hw.is_feasible())
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0].measurement.infeasible_reason().map(|r| r.kind()),
            Some("transient")
        );
    }

    #[test]
    fn panic_wall_clock_lands_in_total_eval_time() {
        // With retries disabled, the panicking attempt's verdict is
        // final; its measurement must still carry the elapsed wall
        // clock (a crashed evaluation is not free).
        let schedule = FaultSchedule::new().at(0, FaultKind::Panic);
        let cfg = EvolutionConfig {
            max_retries: 0,
            ..fault_cfg(4, 45)
        };
        let out = faulty_engine(schedule, cfg).run();
        let panicked: Vec<_> = out
            .trace
            .iter()
            .filter(|e| {
                e.measurement.infeasible_reason().map(|r| r.kind()) == Some("worker-panic")
            })
            .collect();
        assert_eq!(panicked.len(), 1);
        assert!(
            panicked[0].measurement.eval_time_s > 0.0,
            "panicked attempt must record its elapsed time"
        );
    }

    #[test]
    fn shutdown_flag_halts_before_any_work() {
        let flag = rt::supervise::ShutdownFlag::new();
        flag.request();
        let out = engine(50, 46, 1).with_shutdown(flag).run();
        assert!(out.halted);
        assert_eq!(out.stats.models_evaluated, 0);
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ecad-engine-checkpoint");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn halt_checkpoint_resume_matches_uninterrupted_run() {
        let uninterrupted = engine(40, 47, 1).run();

        let path = tmp_path("halt-resume.json");
        let first = engine(40, 47, 1)
            .with_checkpoint(CheckpointPolicy::new(&path, 5))
            .with_halt_after(20)
            .run();
        assert!(first.halted);
        assert_eq!(first.stats.models_evaluated, 20);

        let state = CheckpointState::load(&path).unwrap();
        let resumed = engine(40, 47, 1).resume(state).unwrap();
        assert!(!resumed.halted);
        assert_eq!(resumed.stats.models_evaluated, 40);

        let describe =
            |o: &EngineOutcome| -> Vec<String> {
                o.trace.iter().map(|e| e.genome.describe()).collect()
            };
        assert_eq!(describe(&resumed), describe(&uninterrupted));
        let fitnesses = |o: &EngineOutcome| -> Vec<f64> {
            o.trace.iter().map(|e| e.fitness).collect()
        };
        assert_eq!(fitnesses(&resumed), fitnesses(&uninterrupted));
        let pop = |o: &EngineOutcome| -> Vec<String> {
            o.population.iter().map(|e| e.genome.describe()).collect()
        };
        assert_eq!(pop(&resumed), pop(&uninterrupted));
        assert_eq!(
            resumed.best().unwrap().genome,
            uninterrupted.best().unwrap().genome
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_seed() {
        let path = tmp_path("mismatch.json");
        let _ = engine(20, 48, 1)
            .with_checkpoint(CheckpointPolicy::new(&path, 5))
            .with_halt_after(10)
            .run();
        let state = CheckpointState::load(&path).unwrap();
        assert!(engine(20, 999, 1).resume(state).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn periodic_checkpoint_reflects_final_state_after_completion() {
        let path = tmp_path("periodic.json");
        let out = engine(30, 49, 1)
            .with_checkpoint(CheckpointPolicy::new(&path, 7))
            .run();
        let state = CheckpointState::load(&path).unwrap();
        assert_eq!(state.trace.len(), out.stats.models_evaluated);
        assert!(state.pending.is_empty());
        // Resuming a completed run is a no-op that returns the same
        // final population.
        let resumed = engine(30, 49, 1).resume(state).unwrap();
        assert_eq!(resumed.stats.models_evaluated, 30);
        assert_eq!(
            resumed.best().unwrap().genome,
            out.best().unwrap().genome
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn faulted_run_still_resumes_deterministically() {
        // Faults + checkpoint/resume compose: halt mid-run under a
        // transient-fault schedule, resume, and still complete the
        // budget. (Call indices shift across the restore boundary, so
        // only aggregate behavior is asserted here; byte-identity is
        // exercised by the fault-free tests above.)
        let schedule = FaultSchedule::new()
            .at(1, FaultKind::Transient)
            .at(6, FaultKind::Transient);
        let path = tmp_path("faulted-resume.json");
        let first = faulty_engine(schedule, fault_cfg(12, 50))
            .with_checkpoint(CheckpointPolicy::new(&path, 4))
            .with_halt_after(8)
            .run();
        assert!(first.halted);
        let state = CheckpointState::load(&path).unwrap();
        let resumed = faulty_engine(FaultSchedule::new(), fault_cfg(12, 50))
            .resume(state)
            .unwrap();
        assert_eq!(resumed.stats.models_evaluated, 12);
        assert_eq!(resumed.stats.retry_count, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "population must be positive")]
    fn zero_population_rejected() {
        let cfg = EvolutionConfig {
            population: 0,
            ..EvolutionConfig::small()
        };
        let _ = Engine::new(
            Arc::new(ToyEvaluator {
                panic_on_width: None,
            }),
            SearchSpace::gpu_default(),
            ObjectiveSet::accuracy_only(),
            cfg,
        );
    }
}
