//! Pareto-dominance utilities.
//!
//! "The Pareto frontiers that result after parsing the evolutionary
//! design space define what the optimal solution is. ... Having the data
//! to make decisions based on trade-offs is highly valuable." (§III-B)
//!
//! Points are vectors of *oriented* objective values (larger is always
//! better — [`crate::fitness::ObjectiveSet::oriented_values`] produces
//! this form). Besides plain front extraction, a full NSGA-II style
//! non-dominated sort and crowding distance are provided for
//! multi-objective analyses and ablations.

/// Whether `a` Pareto-dominates `b`: at least as good everywhere and
/// strictly better somewhere.
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strictly_better = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Indices of the non-dominated points (the Pareto front), in input
/// order.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i]))
        })
        .collect()
}

/// NSGA-II fast non-dominated sort: returns fronts of indices, best
/// front first. Every index appears in exactly one front.
pub fn non_dominated_sort(points: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = points.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&points[i], &points[j]) {
                dominated_by[i].push(j);
            } else if dominates(&points[j], &points[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::take(&mut current));
        current = next;
    }
    fronts
}

/// NSGA-II crowding distance for the points of one front; boundary
/// points get `f64::INFINITY`.
pub fn crowding_distance(points: &[Vec<f64>]) -> Vec<f64> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let dims = points[0].len();
    let mut dist = vec![0.0f64; n];
    #[allow(clippy::needless_range_loop)] // d indexes a dimension, not a container
    for d in 0..dims {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            points[a][d]
                .partial_cmp(&points[b][d])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let lo = points[order[0]][d];
        let hi = points[order[n - 1]][d];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for w in 1..n - 1 {
            let prev = points[order[w - 1]][d];
            let next = points[order[w + 1]][d];
            dist[order[w]] += (next - prev) / range;
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_requires_strict_improvement() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 1.0]));
        assert!(!dominates(&[1.0, 1.0], &[1.0, 1.0]));
        assert!(!dominates(&[2.0, 0.0], &[1.0, 1.0]));
        assert!(dominates(&[2.0, 2.0], &[1.0, 1.0]));
    }

    #[test]
    fn front_of_simple_tradeoff() {
        let pts = vec![
            vec![1.0, 5.0], // on front
            vec![3.0, 3.0], // on front
            vec![5.0, 1.0], // on front
            vec![2.0, 2.0], // dominated by (3,3)
            vec![1.0, 5.0], // duplicate of first: also non-dominated
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2, 4]);
    }

    #[test]
    fn front_of_single_point_is_itself() {
        assert_eq!(pareto_front(&[vec![1.0]]), vec![0]);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn sort_partitions_all_points() {
        let pts = vec![
            vec![3.0, 3.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![4.0, 0.0],
        ];
        let fronts = non_dominated_sort(&pts);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        assert_eq!(total, 4);
        // (3,3) and (4,0) are mutually non-dominated => front 0.
        assert_eq!(fronts[0], vec![0, 3]);
        assert_eq!(fronts[1], vec![2]);
        assert_eq!(fronts[2], vec![1]);
    }

    #[test]
    fn sort_front_zero_matches_pareto_front() {
        let pts = vec![
            vec![0.9, 1e5],
            vec![0.8, 1e7],
            vec![0.7, 1e6], // dominated by the second
            vec![0.95, 1e3],
        ];
        let mut f0 = non_dominated_sort(&pts)[0].clone();
        f0.sort_unstable();
        assert_eq!(f0, pareto_front(&pts));
    }

    #[test]
    fn crowding_boundary_points_are_infinite() {
        let pts = vec![
            vec![0.0, 3.0],
            vec![1.0, 2.0],
            vec![2.0, 1.0],
            vec![3.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_prefers_isolated_points() {
        // Middle point clustered near the left: lower distance than the
        // isolated one.
        let pts = vec![
            vec![0.0, 4.0],
            vec![0.1, 3.9],
            vec![0.2, 3.8],
            vec![3.0, 1.0],
            vec![4.0, 0.0],
        ];
        let d = crowding_distance(&pts);
        assert!(d[3] > d[1], "isolated {} vs clustered {}", d[3], d[1]);
    }

    #[test]
    fn crowding_degenerate_sizes() {
        assert!(crowding_distance(&[]).is_empty());
        assert_eq!(crowding_distance(&[vec![1.0]]), vec![f64::INFINITY]);
        let two = crowding_distance(&[vec![1.0], vec![2.0]]);
        assert!(two.iter().all(|d| d.is_infinite()));
    }

    #[test]
    fn constant_dimension_does_not_nan() {
        let pts = vec![vec![1.0, 5.0], vec![1.0, 3.0], vec![1.0, 1.0]];
        let d = crowding_distance(&pts);
        assert!(d.iter().all(|x| !x.is_nan()));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_dims_panic() {
        let _ = dominates(&[1.0], &[1.0, 2.0]);
    }
}
