//! # ecad-core
//!
//! The ECAD (Evolutionary Cell Aided Design) engine: a steady-state
//! evolutionary search over the *joint* space of MLP network
//! architectures and accelerator hardware configurations, as described
//! in "AutoML for Multilayer Perceptron and FPGA Co-design" (SOCC 2020).
//!
//! The moving parts map one-to-one onto the paper's §III:
//!
//! * [`genome`] — a co-design candidate: NNA genes (layers, neurons,
//!   activation, bias) plus hardware genes (FPGA grid or GPU batch).
//! * [`space`] — the bounded search space and its mutation/crossover
//!   operators.
//! * [`measurement`] — the raw metrics a worker reports for a candidate.
//! * [`workers`] — the three worker types: *simulation* (trains the MLP,
//!   times GPU targets), *hardware database* (analytical FPGA model),
//!   and *physical* (synthesis estimates: resources, Fmax, power).
//! * [`fitness`] — user-registrable fitness functions composed into a
//!   scalar or multi-objective score.
//! * [`engine`] — the master process: steady-state population,
//!   tournament selection, a worker pool over `rt::sync` channels, and
//!   the dedup cache ("potential NNA/HW candidates are first analyzed
//!   for similarities to previous evaluations and duplicates are not
//!   evaluated twice").
//! * [`pareto`] — non-dominated sorting and Pareto-front extraction for
//!   accuracy-vs-throughput analyses (Table IV, Figs 2–4).
//! * [`protocol`] — the master loop's dispatch/deadline/retry/stale
//!   bookkeeping as a pure, clock-generic state machine, shared between
//!   the engine (wall clock) and the `rt::sched` model checks (virtual
//!   time).
//! * [`checkpoint`] — periodic JSON snapshots of the full master state
//!   so an interrupted search resumes byte-identically.
//! * [`cluster`] — distributed coordinator/worker evaluation over TCP
//!   (`rt::net` framed messages): a worker server that evaluates
//!   genomes shipped with a full setup payload, stale-result fencing by
//!   session stamp, and optional per-worker island subpopulations.
//! * [`faults`] — a deterministic fault-injecting evaluator wrapper for
//!   exercising the engine's retry/timeout/respawn machinery in tests.
//! * [`analytics`] — the search observatory: per-epoch population
//!   snapshots (fitness quantiles, Pareto-archive hypervolume, genome
//!   diversity, operator success rates), a stall detector, and the
//!   live `/metrics` + `/status` HTTP endpoints.
//! * [`config`] — the flow's configuration-file entry point (§III).
//! * [`search`] — high-level drivers tying it all together.
//!
//! ## Example
//!
//! ```no_run
//! use ecad_core::prelude::*;
//! use ecad_dataset::benchmarks::{self, Benchmark};
//!
//! let ds = benchmarks::load(Benchmark::CreditG).with_samples(300).generate();
//! let result = Search::on_dataset(&ds)
//!     .objectives(ObjectiveSet::accuracy_and_throughput())
//!     .evaluations(200)
//!     .seed(7)
//!     .run();
//! println!("best accuracy: {:.4}", result.best_by_accuracy().unwrap().measurement.accuracy);
//! ```

#![warn(missing_docs)]

pub mod analytics;
pub mod checkpoint;
pub mod cluster;
pub mod config;
pub mod engine;
pub mod faults;
pub mod fitness;
pub mod genome;
pub mod measurement;
pub mod pareto;
pub mod protocol;
pub mod search;
pub mod space;
pub mod workers;

/// Convenience re-exports for the common search workflow.
pub mod prelude {
    pub use crate::analytics::{
        cluster_observatory, observatory, workers_json, AnalyticsConfig, EpochTracker,
        OperatorKind, OperatorStats, ParetoArchive, PopulationSnapshot, StatusCell,
    };
    pub use crate::cluster::{ClusterHealth, WorkerHealthSnapshot, WorkerState};
    pub use crate::checkpoint::{CheckpointPolicy, CheckpointState};
    pub use crate::engine::{EngineStats, EvolutionConfig, SelectionMode};
    pub use crate::faults::{FaultKind, FaultSchedule, FaultyEvaluator};
    pub use crate::measurement::FailureKind;
    pub use crate::fitness::{FitnessRegistry, Objective, ObjectiveSet};
    pub use crate::genome::{CandidateGenome, HwGenome, NnaGenome};
    pub use crate::measurement::{HwMetrics, InfeasibleReason, Measurement};
    pub use crate::pareto::pareto_front;
    pub use crate::search::{Search, SearchResult, TracePoint};
    pub use crate::space::SearchSpace;
    pub use crate::workers::{CodesignEvaluator, Evaluator, HwTarget};
}
