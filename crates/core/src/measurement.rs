//! Raw evaluation metrics returned by workers.
//!
//! "The Worker returns the raw evaluation information to a Master
//! process" (§III-A). A [`Measurement`] bundles the accuracy from the
//! simulation worker with the hardware metrics from whichever hardware
//! worker scored the candidate; fitness functions then scalarize it.

use std::fmt;

/// Why a candidate could not be scored.
///
/// Infeasible candidates are common in a co-design search — the paper's
/// runs reject many grids that exceed the Arria 10's DSP or M20K
/// budget — so the frequent reasons are interned variants that cost no
/// allocation on the hot path. [`InfeasibleReason::Other`] keeps a
/// free-form escape hatch for rare cases. [`InfeasibleReason::kind`]
/// gives the stable label used as a structured telemetry field.
#[derive(Debug, Clone, PartialEq)]
pub enum InfeasibleReason {
    /// The hardware genes exceed the device's resources (DSPs, M20Ks,
    /// ALMs, or a zero-sized grid).
    DeviceFit,
    /// The simulation worker's training run failed (shape mismatch or
    /// divergence).
    TrainingFailure,
    /// The genome's hardware family does not match the search target
    /// (e.g. a batch-only genome scored against an FPGA target).
    TargetMismatch,
    /// The evaluating worker thread panicked.
    WorkerPanic,
    /// The evaluation exceeded the engine's per-candidate deadline
    /// (`eval_timeout`) and was abandoned.
    EvalTimeout,
    /// A transient environmental failure (flaky I/O, a busy device, a
    /// lost worker) that a retry may well not reproduce.
    Transient(String),
    /// Anything else, spelled out.
    Other(String),
}

/// How a failed evaluation should be treated by the retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The failure is tied to the environment, not the candidate:
    /// retrying the same genome may succeed, so the engine retries (up
    /// to `max_retries`) and never caches the failure.
    Transient,
    /// The failure is a property of the candidate itself (it does not
    /// fit the device, its family mismatches the target): retrying
    /// cannot change the verdict, so it is cached and scored as-is.
    Permanent,
}

impl InfeasibleReason {
    /// Stable machine-readable label: `"device-fit"`,
    /// `"training-failure"`, `"target-mismatch"`, `"worker-panic"`,
    /// `"eval-timeout"`, `"transient"`, or `"other"`. Telemetry events
    /// carry this as the `reason` field so traces can be grouped
    /// without parsing prose.
    pub fn kind(&self) -> &'static str {
        match self {
            InfeasibleReason::DeviceFit => "device-fit",
            InfeasibleReason::TrainingFailure => "training-failure",
            InfeasibleReason::TargetMismatch => "target-mismatch",
            InfeasibleReason::WorkerPanic => "worker-panic",
            InfeasibleReason::EvalTimeout => "eval-timeout",
            InfeasibleReason::Transient(_) => "transient",
            InfeasibleReason::Other(_) => "other",
        }
    }

    /// Classifies the failure for the retry policy. Panics, timeouts,
    /// and explicitly transient failures are worth retrying; resource
    /// and shape verdicts are properties of the genome and are not.
    pub fn failure_kind(&self) -> FailureKind {
        match self {
            InfeasibleReason::WorkerPanic
            | InfeasibleReason::EvalTimeout
            | InfeasibleReason::Transient(_) => FailureKind::Transient,
            InfeasibleReason::DeviceFit
            | InfeasibleReason::TrainingFailure
            | InfeasibleReason::TargetMismatch
            | InfeasibleReason::Other(_) => FailureKind::Permanent,
        }
    }
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasibleReason::DeviceFit => {
                f.write_str("hardware genes do not fit the device")
            }
            InfeasibleReason::TrainingFailure => f.write_str("training failed"),
            InfeasibleReason::TargetMismatch => {
                f.write_str("genome family does not match the search target")
            }
            InfeasibleReason::WorkerPanic => f.write_str("worker panicked"),
            InfeasibleReason::EvalTimeout => {
                f.write_str("evaluation exceeded its deadline")
            }
            InfeasibleReason::Transient(text) => {
                write!(f, "transient failure: {text}")
            }
            InfeasibleReason::Other(text) => f.write_str(text),
        }
    }
}

impl From<&str> for InfeasibleReason {
    fn from(text: &str) -> Self {
        InfeasibleReason::Other(text.to_string())
    }
}

impl From<String> for InfeasibleReason {
    fn from(text: String) -> Self {
        InfeasibleReason::Other(text)
    }
}

/// Hardware metrics for one candidate, per target family.
#[derive(Debug, Clone, PartialEq)]
pub enum HwMetrics {
    /// FPGA metrics from the hardware-database and physical workers.
    Fpga {
        /// Classification results per second.
        outputs_per_s: f64,
        /// Effective / potential performance (§IV-D).
        efficiency: f64,
        /// Seconds from run start to first result.
        latency_s: f64,
        /// Roofline after bandwidth ratio, GFLOP/s.
        potential_gflops: f64,
        /// Achieved GFLOP/s.
        effective_gflops: f64,
        /// Whether any layer was bandwidth-stalled.
        bandwidth_bound: bool,
        /// Physical worker: estimated chip power, W.
        power_w: f64,
        /// Physical worker: estimated Fmax, MHz.
        fmax_mhz: f64,
        /// Physical worker: DSP utilization fraction of the device.
        dsp_util: f64,
    },
    /// GPU metrics from the simulation worker.
    Gpu {
        /// Classification results per second.
        outputs_per_s: f64,
        /// Effective FLOP/s over device peak.
        efficiency: f64,
        /// Seconds for one batch.
        latency_s: f64,
        /// Achieved GFLOP/s.
        effective_gflops: f64,
        /// Board power, W (the paper measured ~50 W average under MLP
        /// load via nvidia-smi; reported for per-watt objectives, not
        /// directly comparable to FPGA chip power — §IV).
        power_w: f64,
    },
    /// CPU metrics from the simulation worker.
    Cpu {
        /// Classification results per second.
        outputs_per_s: f64,
        /// Effective FLOP/s over device peak.
        efficiency: f64,
        /// Seconds for one batch.
        latency_s: f64,
        /// Achieved GFLOP/s.
        effective_gflops: f64,
        /// Package power, W.
        power_w: f64,
    },
    /// The candidate's hardware genes do not fit the device (or training
    /// failed); it receives zero fitness but stays in the trace.
    Infeasible {
        /// Why — interned for the common cases so the hot path does
        /// not allocate.
        reason: InfeasibleReason,
    },
}

impl HwMetrics {
    /// Outputs per second; zero when infeasible.
    pub fn outputs_per_s(&self) -> f64 {
        match self {
            HwMetrics::Fpga { outputs_per_s, .. }
            | HwMetrics::Gpu { outputs_per_s, .. }
            | HwMetrics::Cpu { outputs_per_s, .. } => *outputs_per_s,
            HwMetrics::Infeasible { .. } => 0.0,
        }
    }

    /// Hardware efficiency; zero when infeasible.
    pub fn efficiency(&self) -> f64 {
        match self {
            HwMetrics::Fpga { efficiency, .. }
            | HwMetrics::Gpu { efficiency, .. }
            | HwMetrics::Cpu { efficiency, .. } => *efficiency,
            HwMetrics::Infeasible { .. } => 0.0,
        }
    }

    /// Latency in seconds; infinity when infeasible.
    pub fn latency_s(&self) -> f64 {
        match self {
            HwMetrics::Fpga { latency_s, .. }
            | HwMetrics::Gpu { latency_s, .. }
            | HwMetrics::Cpu { latency_s, .. } => *latency_s,
            HwMetrics::Infeasible { .. } => f64::INFINITY,
        }
    }

    /// Estimated power draw in watts; zero when infeasible. FPGA power
    /// is chip power from the physical worker; GPU/CPU power is the
    /// board/package figure — the paper notes this asymmetry and leaves
    /// power out of its conclusions, so per-watt objectives should be
    /// compared within one platform family only.
    pub fn power_w(&self) -> f64 {
        match self {
            HwMetrics::Fpga { power_w, .. }
            | HwMetrics::Gpu { power_w, .. }
            | HwMetrics::Cpu { power_w, .. } => *power_w,
            HwMetrics::Infeasible { .. } => 0.0,
        }
    }

    /// Outputs per second per watt; zero when infeasible.
    pub fn outputs_per_joule(&self) -> f64 {
        let p = self.power_w();
        if p <= 0.0 {
            return 0.0;
        }
        self.outputs_per_s() / p
    }

    /// Whether the candidate was scoreable at all.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, HwMetrics::Infeasible { .. })
    }
}

/// Complete raw measurement for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Test accuracy from the simulation worker's training run.
    pub accuracy: f32,
    /// Training accuracy (overfit diagnostics).
    pub train_accuracy: f32,
    /// Trainable parameter count of the candidate topology.
    pub params: usize,
    /// Total hidden neurons (the paper's network-size axis).
    pub neurons: usize,
    /// Hardware metrics from the matching hardware worker.
    pub hw: HwMetrics,
    /// Wall-clock seconds this evaluation took (Table III's
    /// per-evaluation time).
    pub eval_time_s: f64,
    /// Seconds of `eval_time_s` spent in the simulation worker's
    /// training run.
    pub train_time_s: f64,
    /// Seconds of `eval_time_s` spent in the hardware model.
    pub hw_time_s: f64,
}

impl Measurement {
    /// An infeasible measurement with the given reason; accuracy zero.
    pub fn infeasible(reason: impl Into<InfeasibleReason>) -> Self {
        Self {
            accuracy: 0.0,
            train_accuracy: 0.0,
            params: 0,
            neurons: 0,
            hw: HwMetrics::Infeasible {
                reason: reason.into(),
            },
            eval_time_s: 0.0,
            train_time_s: 0.0,
            hw_time_s: 0.0,
        }
    }

    /// The infeasibility reason, when the candidate was not scoreable.
    pub fn infeasible_reason(&self) -> Option<&InfeasibleReason> {
        match &self.hw {
            HwMetrics::Infeasible { reason } => Some(reason),
            _ => None,
        }
    }

    /// How the retry policy should treat this measurement: `None` for
    /// a feasible result, otherwise the reason's [`FailureKind`].
    pub fn failure_kind(&self) -> Option<FailureKind> {
        self.infeasible_reason().map(InfeasibleReason::failure_kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infeasible_defaults() {
        let m = Measurement::infeasible("too many DSPs");
        assert_eq!(m.accuracy, 0.0);
        assert!(!m.hw.is_feasible());
        assert_eq!(m.hw.outputs_per_s(), 0.0);
        assert_eq!(m.hw.efficiency(), 0.0);
        assert!(m.hw.latency_s().is_infinite());
        assert_eq!(m.eval_time_s, 0.0);
        assert_eq!(m.train_time_s, 0.0);
        assert_eq!(m.hw_time_s, 0.0);
        // A free-form &str lands in the Other escape hatch.
        assert_eq!(
            m.infeasible_reason(),
            Some(&InfeasibleReason::Other("too many DSPs".to_string()))
        );
    }

    #[test]
    fn interned_reasons_have_stable_kinds() {
        let cases = [
            (InfeasibleReason::DeviceFit, "device-fit"),
            (InfeasibleReason::TrainingFailure, "training-failure"),
            (InfeasibleReason::TargetMismatch, "target-mismatch"),
            (InfeasibleReason::WorkerPanic, "worker-panic"),
            (InfeasibleReason::EvalTimeout, "eval-timeout"),
            (InfeasibleReason::Transient("device busy".into()), "transient"),
            (InfeasibleReason::Other("weird".into()), "other"),
        ];
        for (reason, kind) in cases {
            assert_eq!(reason.kind(), kind);
            assert!(!reason.to_string().is_empty());
        }
        let m = Measurement::infeasible(InfeasibleReason::DeviceFit);
        assert_eq!(m.infeasible_reason().unwrap().kind(), "device-fit");
        assert!(m
            .infeasible_reason()
            .unwrap()
            .to_string()
            .contains("do not fit"));
    }

    #[test]
    fn failure_kinds_split_transient_from_permanent() {
        use InfeasibleReason as R;
        let transient = [R::WorkerPanic, R::EvalTimeout, R::Transient("io".into())];
        for r in transient {
            assert_eq!(r.failure_kind(), FailureKind::Transient, "{r:?}");
        }
        let permanent = [
            R::DeviceFit,
            R::TrainingFailure,
            R::TargetMismatch,
            R::Other("weird".into()),
        ];
        for r in permanent {
            assert_eq!(r.failure_kind(), FailureKind::Permanent, "{r:?}");
        }
        assert_eq!(
            Measurement::infeasible(R::EvalTimeout).failure_kind(),
            Some(FailureKind::Transient)
        );
    }

    #[test]
    fn accessors_cover_both_families() {
        let f = HwMetrics::Fpga {
            outputs_per_s: 1e6,
            efficiency: 0.4,
            latency_s: 1e-5,
            potential_gflops: 700.0,
            effective_gflops: 280.0,
            bandwidth_bound: true,
            power_w: 27.0,
            fmax_mhz: 245.0,
            dsp_util: 0.3,
        };
        let g = HwMetrics::Gpu {
            outputs_per_s: 2e6,
            efficiency: 0.003,
            latency_s: 2e-4,
            effective_gflops: 36.0,
            power_w: 50.0,
        };
        assert_eq!(f.outputs_per_s(), 1e6);
        assert_eq!(g.outputs_per_s(), 2e6);
        assert!(f.is_feasible() && g.is_feasible());
        assert_eq!(g.efficiency(), 0.003);
        assert_eq!(f.latency_s(), 1e-5);
        assert_eq!(g.power_w(), 50.0);
        assert!((g.outputs_per_joule() - 4e4).abs() < 1e-6);
        let c = HwMetrics::Cpu {
            outputs_per_s: 1e6,
            efficiency: 0.02,
            latency_s: 1e-4,
            effective_gflops: 20.0,
            power_w: 100.0,
        };
        assert_eq!(c.outputs_per_s(), 1e6);
        assert_eq!(c.outputs_per_joule(), 1e4);
    }
}
