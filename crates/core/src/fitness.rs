//! Fitness functions and their registry.
//!
//! "Result evaluation is done using user defined fitness functions. For
//! example, an accuracy fitness function can simply return the accuracy
//! value ... But it can also scale or weight the value or specify to
//! minimize or maximize the value. Simple evaluations functions can be
//! specified in the configuration file and more complex ones are written
//! in code and added by registering them with the framework." (§III-A)
//!
//! A [`FitnessRegistry`] maps names to extractor functions over
//! [`Measurement`]; an [`ObjectiveSet`] combines named objectives with
//! weights and directions into the scalar the steady-state selection
//! uses, while keeping the per-objective vector for Pareto analysis.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::measurement::Measurement;

/// Extracts one scalar from a measurement.
pub type FitnessFn = Arc<dyn Fn(&Measurement) -> f64 + Send + Sync>;

/// A named objective with direction and weight.
#[derive(Clone)]
pub struct Objective {
    /// Registry name of the metric (e.g. `"accuracy"`).
    pub name: String,
    /// Relative weight in the scalarized fitness.
    pub weight: f64,
    /// `true` to maximize, `false` to minimize.
    pub maximize: bool,
}

impl Objective {
    /// A maximizing objective with weight 1.
    pub fn maximize(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1.0,
            maximize: true,
        }
    }

    /// A minimizing objective with weight 1.
    pub fn minimize(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1.0,
            maximize: false,
        }
    }

    /// Adjusts the weight.
    pub fn with_weight(mut self, w: f64) -> Self {
        self.weight = w;
        self
    }
}

impl fmt::Debug for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Objective({} {} x{})",
            if self.maximize { "max" } else { "min" },
            self.name,
            self.weight
        )
    }
}

/// A registry of named fitness metrics.
///
/// Ships with the paper's built-ins; user code registers more with
/// [`FitnessRegistry::register`].
#[derive(Clone)]
pub struct FitnessRegistry {
    metrics: HashMap<String, FitnessFn>,
}

impl FitnessRegistry {
    /// Creates a registry with the built-in metrics:
    ///
    /// | name | meaning |
    /// |---|---|
    /// | `accuracy` | test accuracy in `[0, 1]` |
    /// | `throughput` | outputs per second |
    /// | `log_throughput` | `log10(1 + outputs/s)` (commensurate with accuracy) |
    /// | `latency` | seconds to first result |
    /// | `efficiency` | effective / potential performance |
    /// | `params` | trainable parameter count |
    /// | `neurons` | total hidden neurons |
    /// | `outputs_per_joule` | outputs/s per watt (intra-family only; see [`crate::measurement::HwMetrics::power_w`]) |
    /// | `log_outputs_per_joule` | `log10(1 + outputs/s/W)` |
    pub fn with_builtins() -> Self {
        let mut r = Self {
            metrics: HashMap::new(),
        };
        r.register("accuracy", |m| m.accuracy as f64);
        r.register("throughput", |m| m.hw.outputs_per_s());
        r.register("log_throughput", |m| (1.0 + m.hw.outputs_per_s()).log10());
        r.register("latency", |m| m.hw.latency_s());
        r.register("efficiency", |m| m.hw.efficiency());
        r.register("params", |m| m.params as f64);
        r.register("neurons", |m| m.neurons as f64);
        r.register("outputs_per_joule", |m| m.hw.outputs_per_joule());
        r.register("log_outputs_per_joule", |m| {
            (1.0 + m.hw.outputs_per_joule()).log10()
        });
        r
    }

    /// Registers (or replaces) a named metric.
    pub fn register<F>(&mut self, name: impl Into<String>, f: F)
    where
        F: Fn(&Measurement) -> f64 + Send + Sync + 'static,
    {
        self.metrics.insert(name.into(), Arc::new(f));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&FitnessFn> {
        self.metrics.get(name)
    }

    /// Names of all registered metrics, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.metrics.keys().cloned().collect();
        v.sort();
        v
    }
}

impl Default for FitnessRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl fmt::Debug for FitnessRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FitnessRegistry({:?})", self.names())
    }
}

/// A weighted set of objectives evaluated against a registry.
#[derive(Debug, Clone)]
pub struct ObjectiveSet {
    objectives: Vec<Objective>,
    registry: FitnessRegistry,
}

impl ObjectiveSet {
    /// Builds a set over the built-in registry.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty or references an unknown metric.
    pub fn new(objectives: Vec<Objective>) -> Self {
        Self::with_registry(objectives, FitnessRegistry::with_builtins())
    }

    /// Builds a set over a custom registry.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty or references an unknown metric.
    pub fn with_registry(objectives: Vec<Objective>, registry: FitnessRegistry) -> Self {
        assert!(!objectives.is_empty(), "need at least one objective");
        for o in &objectives {
            assert!(
                registry.get(&o.name).is_some(),
                "unknown fitness metric {:?}; registered: {:?}",
                o.name,
                registry.names()
            );
        }
        Self {
            objectives,
            registry,
        }
    }

    /// Accuracy only — the Table I/II search.
    pub fn accuracy_only() -> Self {
        Self::new(vec![Objective::maximize("accuracy")])
    }

    /// Accuracy + log-throughput — the Table IV / Fig 2 co-design
    /// search. The 0.02 weight makes one accuracy point (0.01) worth
    /// half a decade of throughput, so the search still climbs the
    /// accuracy hill but breaks ties toward faster hardware mappings —
    /// the trade the paper's Pareto rows exhibit (credit-g gives up one
    /// point of accuracy for three decades of outputs/s).
    pub fn accuracy_and_throughput() -> Self {
        Self::new(vec![
            Objective::maximize("accuracy"),
            Objective::maximize("log_throughput").with_weight(0.02),
        ])
    }

    /// The objectives in order.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Per-objective raw values (direction not applied).
    pub fn values(&self, m: &Measurement) -> Vec<f64> {
        self.objectives
            .iter()
            .map(|o| (self.registry.get(&o.name).expect("validated in ctor"))(m))
            .collect()
    }

    /// Per-objective values with minimization negated, so that larger is
    /// always better — the form Pareto dominance expects.
    pub fn oriented_values(&self, m: &Measurement) -> Vec<f64> {
        self.objectives
            .iter()
            .zip(self.values(m))
            .map(|(o, v)| if o.maximize { v } else { -v })
            .collect()
    }

    /// Weighted scalar fitness (larger is better). Infeasible
    /// measurements score `f64::NEG_INFINITY`.
    pub fn scalar(&self, m: &Measurement) -> f64 {
        if !m.hw.is_feasible() {
            return f64::NEG_INFINITY;
        }
        self.objectives
            .iter()
            .zip(self.oriented_values(m))
            .map(|(o, v)| o.weight * v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::HwMetrics;

    fn meas(acc: f32, outs: f64) -> Measurement {
        Measurement {
            accuracy: acc,
            train_accuracy: acc,
            params: 1000,
            neurons: 64,
            hw: HwMetrics::Gpu {
                outputs_per_s: outs,
                efficiency: 0.01,
                latency_s: 1e-4,
                effective_gflops: 10.0,
                power_w: 50.0,
            },
            eval_time_s: 0.1,
            train_time_s: 0.08,
            hw_time_s: 0.02,
        }
    }

    #[test]
    fn builtins_extract_expected_values() {
        let r = FitnessRegistry::with_builtins();
        let m = meas(0.9, 1e6);
        assert!((r.get("accuracy").unwrap()(&m) - 0.9).abs() < 1e-6);
        assert_eq!(r.get("throughput").unwrap()(&m), 1e6);
        assert!((r.get("log_throughput").unwrap()(&m) - 6.0).abs() < 0.01);
        assert_eq!(r.get("neurons").unwrap()(&m), 64.0);
    }

    #[test]
    fn custom_metric_registration() {
        let mut r = FitnessRegistry::with_builtins();
        r.register("acc_per_kparam", |m| {
            m.accuracy as f64 / (m.params as f64 / 1000.0)
        });
        let set = ObjectiveSet::with_registry(vec![Objective::maximize("acc_per_kparam")], r);
        assert!((set.scalar(&meas(0.8, 1.0)) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn scalar_prefers_better_accuracy() {
        let set = ObjectiveSet::accuracy_only();
        assert!(set.scalar(&meas(0.9, 1.0)) > set.scalar(&meas(0.8, 1e9)));
    }

    #[test]
    fn combined_set_breaks_ties_with_throughput() {
        let set = ObjectiveSet::accuracy_and_throughput();
        assert!(set.scalar(&meas(0.9, 1e7)) > set.scalar(&meas(0.9, 1e3)));
        // But accuracy still dominates.
        assert!(set.scalar(&meas(0.95, 1e3)) > set.scalar(&meas(0.6, 1e9)));
    }

    #[test]
    fn minimize_orientation_negates() {
        let set = ObjectiveSet::new(vec![Objective::minimize("latency")]);
        let fast = meas(0.5, 1.0);
        let mut slow = meas(0.5, 1.0);
        if let HwMetrics::Gpu {
            ref mut latency_s, ..
        } = slow.hw
        {
            *latency_s = 1.0;
        }
        assert!(set.scalar(&fast) > set.scalar(&slow));
    }

    #[test]
    fn infeasible_scores_neg_infinity() {
        let set = ObjectiveSet::accuracy_only();
        assert_eq!(set.scalar(&Measurement::infeasible("x")), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "unknown fitness metric")]
    fn unknown_metric_rejected() {
        let _ = ObjectiveSet::new(vec![Objective::maximize("nonsense")]);
    }

    #[test]
    #[should_panic(expected = "at least one objective")]
    fn empty_set_rejected() {
        let _ = ObjectiveSet::new(vec![]);
    }

    #[test]
    fn per_watt_metric_extracts() {
        let r = FitnessRegistry::with_builtins();
        let m = meas(0.9, 1e6);
        // 1e6 outputs/s at 50 W => 2e4 outputs per joule.
        assert!((r.get("outputs_per_joule").unwrap()(&m) - 2e4).abs() < 1e-6);
        let set = ObjectiveSet::new(vec![Objective::maximize("log_outputs_per_joule")]);
        assert!(set.scalar(&m) > 0.0);
    }

    #[test]
    fn names_are_sorted() {
        let names = FitnessRegistry::with_builtins().names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.contains(&"accuracy".to_string()));
    }
}
