//! Worker implementations.
//!
//! "The evolutionary search has three workers at its disposal to assess
//! the fitness of various hardware platforms" (§III-B):
//!
//! * the **simulation worker** trains the candidate MLP and, for GPU
//!   targets, times it on the analytical GPU model;
//! * the **hardware database worker** scores FPGA targets through the
//!   overlay model "in a relatively swift manner compared to running
//!   through synthesis tools";
//! * the **physical worker** adds synthesis-level estimates (resource
//!   utilization, power, Fmax).
//!
//! [`CodesignEvaluator`] composes the three into the single evaluation
//! the master dispatches per candidate. Candidates whose hardware genes
//! do not fit the device, or whose training diverges, come back as
//! [`Measurement::infeasible`] rather than an error — the engine scores
//! them at zero fitness and moves on.

use std::time::Instant;

use ecad_dataset::Dataset;
use ecad_hw::cpu::{CpuDevice, CpuModel};
use ecad_hw::fpga::{FpgaDevice, FpgaModel, GridConfig, PhysicalModel};
use ecad_hw::gpu::{GpuDevice, GpuModel};
use ecad_mlp::{TrainConfig, Trainer};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

use rt::obs::Obs;

use crate::genome::{CandidateGenome, HwGenome};
use crate::measurement::{HwMetrics, InfeasibleReason, Measurement};

/// Which hardware the search scores candidates against.
#[derive(Debug, Clone)]
pub enum HwTarget {
    /// An FPGA device evaluated through the hardware-database and
    /// physical workers.
    Fpga(FpgaDevice),
    /// A GPU device evaluated through the simulation worker.
    Gpu(GpuDevice),
    /// A CPU device evaluated through the simulation worker. CPU
    /// candidates use the batch-only [`HwGenome::GpuBatch`] genome —
    /// instruction-set targets have no structural genes, only the GEMM
    /// `m` dimension.
    Cpu(CpuDevice),
}

impl HwTarget {
    /// Display name of the underlying device.
    pub fn device_name(&self) -> &str {
        match self {
            HwTarget::Fpga(d) => &d.name,
            HwTarget::Gpu(d) => &d.name,
            HwTarget::Cpu(d) => &d.name,
        }
    }
}

/// Evaluates a co-design candidate into a [`Measurement`].
///
/// Object-safe and `Send + Sync` so the engine can share one evaluator
/// across its worker threads.
pub trait Evaluator: Send + Sync {
    /// Scores one candidate. Must not panic on infeasible candidates;
    /// return [`Measurement::infeasible`] instead.
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement;

    /// Name of the hardware this evaluator scores against.
    fn target_name(&self) -> String;
}

/// The production evaluator: trains the candidate topology on the
/// dataset (simulation worker) and scores its hardware genes on the
/// configured target (hardware database / physical / simulation worker).
#[derive(Debug, Clone)]
pub struct CodesignEvaluator {
    train: Dataset,
    test: Dataset,
    trainer: TrainConfig,
    target: HwTarget,
    seed: u64,
    obs: Obs,
}

impl CodesignEvaluator {
    /// Creates an evaluator over a fixed train/test split.
    ///
    /// Candidate training seeds derive from `seed ^ genome hash`, so a
    /// given candidate always trains identically within a search —
    /// required for the dedup cache to be sound.
    pub fn new(
        train: Dataset,
        test: Dataset,
        trainer: TrainConfig,
        target: HwTarget,
        seed: u64,
    ) -> Self {
        Self {
            train,
            test,
            trainer,
            target,
            seed,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: per-stage spans (`train`,
    /// `hw_model`), structured infeasibility events, and hardware-model
    /// telemetry all flow through it. Disabled by default.
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The train split.
    pub fn train_set(&self) -> &Dataset {
        &self.train
    }

    /// The test split.
    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    fn hw_metrics(
        &self,
        genome: &CandidateGenome,
        shapes: &[(usize, usize, usize)],
        biases: &[bool],
    ) -> HwMetrics {
        match (&self.target, &genome.hw) {
            (
                HwTarget::Fpga(device),
                HwGenome::FpgaGrid {
                    rows,
                    cols,
                    interleave_m,
                    interleave_n,
                    vec,
                    ..
                },
            ) => {
                let grid = match GridConfig::new(*rows, *cols, *interleave_m, *interleave_n, *vec) {
                    Ok(g) => g,
                    Err(e) => {
                        rt::warn!(self.obs, "fpga_unfit", detail = e.to_string());
                        return HwMetrics::Infeasible {
                            reason: InfeasibleReason::DeviceFit,
                        };
                    }
                };
                let model = FpgaModel::new(device.clone());
                let perf = match model.evaluate_observed(&grid, shapes, &self.obs) {
                    Ok(p) => p,
                    Err(_) => {
                        // evaluate_observed already narrated the error.
                        return HwMetrics::Infeasible {
                            reason: InfeasibleReason::DeviceFit,
                        };
                    }
                };
                let physical = match PhysicalModel::new(device.clone()).report(&grid) {
                    Ok(r) => r,
                    Err(e) => {
                        rt::warn!(self.obs, "fpga_unfit", detail = e.to_string());
                        return HwMetrics::Infeasible {
                            reason: InfeasibleReason::DeviceFit,
                        };
                    }
                };
                HwMetrics::Fpga {
                    outputs_per_s: perf.outputs_per_s,
                    efficiency: perf.efficiency,
                    latency_s: perf.latency_s,
                    potential_gflops: perf.potential_gflops,
                    effective_gflops: perf.effective_gflops,
                    bandwidth_bound: perf.bandwidth_bound,
                    power_w: physical.power_w,
                    fmax_mhz: physical.fmax_mhz,
                    dsp_util: physical.resources.dsp_util,
                }
            }
            (HwTarget::Gpu(device), HwGenome::GpuBatch { .. }) => {
                let perf = GpuModel::new(device.clone()).evaluate_observed(shapes, biases, &self.obs);
                HwMetrics::Gpu {
                    outputs_per_s: perf.outputs_per_s,
                    efficiency: perf.efficiency,
                    latency_s: perf.latency_s,
                    effective_gflops: perf.effective_gflops,
                    // The paper measured ~50 W average under MLP load on
                    // a 150 W-class board; scale that observation by
                    // achieved occupancy on top of an idle floor.
                    power_w: 0.25 * device.board_power_w
                        + 0.5 * device.board_power_w * perf.efficiency.min(1.0),
                }
            }
            (HwTarget::Cpu(device), HwGenome::GpuBatch { .. }) => {
                let perf = CpuModel::new(device.clone()).evaluate_observed(shapes, biases, &self.obs);
                HwMetrics::Cpu {
                    outputs_per_s: perf.outputs_per_s,
                    efficiency: perf.efficiency,
                    latency_s: perf.latency_s,
                    effective_gflops: perf.effective_gflops,
                    power_w: 0.35 * device.tdp_w + 0.65 * device.tdp_w * perf.efficiency.min(1.0),
                }
            }
            (HwTarget::Fpga(_), HwGenome::GpuBatch { .. })
            | (HwTarget::Gpu(_) | HwTarget::Cpu(_), HwGenome::FpgaGrid { .. }) => {
                HwMetrics::Infeasible {
                    reason: InfeasibleReason::TargetMismatch,
                }
            }
        }
    }
}

impl Evaluator for CodesignEvaluator {
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
        let start = Instant::now();
        let topology = genome
            .nna
            .to_topology(self.train.n_features(), self.train.n_classes());
        let mut rng = StdRng::seed_from_u64(self.seed ^ genome.cache_key());

        let train_start = Instant::now();
        let fit = {
            let _span = rt::span!(self.obs, "train", neurons = topology.total_neurons());
            Trainer::new(self.trainer).fit(&topology, &self.train, &self.test, &mut rng)
        };
        let train_time_s = train_start.elapsed().as_secs_f64();
        let report = match fit {
            Ok(r) => r,
            Err(e) => {
                rt::warn!(
                    self.obs,
                    "infeasible",
                    stage = "train",
                    reason = InfeasibleReason::TrainingFailure.kind(),
                    detail = e.to_string(),
                );
                let mut m = Measurement::infeasible(InfeasibleReason::TrainingFailure);
                m.eval_time_s = start.elapsed().as_secs_f64();
                m.train_time_s = train_time_s;
                return m;
            }
        };

        let batch = genome.hw.batch() as usize;
        let shapes = topology.gemm_shapes(batch);
        // Bias kernels: the hidden layers' bias genes plus the implicit
        // always-biased output head.
        let mut biases: Vec<bool> = genome.nna.layers.iter().map(|l| l.bias).collect();
        biases.push(true);
        let hw_start = Instant::now();
        let hw = {
            let _span = rt::span!(self.obs, "hw_model", batch = batch);
            self.hw_metrics(genome, &shapes, &biases)
        };
        let hw_time_s = hw_start.elapsed().as_secs_f64();
        if let HwMetrics::Infeasible { reason } = &hw {
            rt::warn!(
                self.obs,
                "infeasible",
                stage = "hw_model",
                reason = reason.kind(),
            );
        }

        Measurement {
            accuracy: report.test_accuracy,
            train_accuracy: report.train_accuracy,
            params: topology.param_count(),
            neurons: topology.total_neurons(),
            hw,
            eval_time_s: start.elapsed().as_secs_f64(),
            train_time_s,
            hw_time_s,
        }
    }

    fn target_name(&self) -> String {
        self.target.device_name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{LayerGene, NnaGenome};
    use ecad_dataset::synth::SyntheticSpec;
    use ecad_mlp::Activation;

    fn dataset() -> (Dataset, Dataset) {
        let ds = SyntheticSpec::new("worker-test", 160, 8, 2)
            .with_class_sep(3.0)
            .with_seed(0)
            .generate();
        let mut rng = StdRng::seed_from_u64(0);
        ds.split(0.25, &mut rng)
    }

    fn fpga_genome() -> CandidateGenome {
        CandidateGenome {
            nna: NnaGenome {
                layers: vec![LayerGene {
                    neurons: 16,
                    activation: Activation::Relu,
                    bias: true,
                }],
            },
            hw: HwGenome::FpgaGrid {
                rows: 4,
                cols: 4,
                interleave_m: 2,
                interleave_n: 2,
                vec: 4,
                batch: 8,
            },
        }
    }

    fn fpga_evaluator() -> CodesignEvaluator {
        let (train, test) = dataset();
        CodesignEvaluator::new(
            train,
            test,
            TrainConfig::fast(),
            HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
            42,
        )
    }

    #[test]
    fn fpga_candidate_gets_full_measurement() {
        let m = fpga_evaluator().evaluate(&fpga_genome());
        assert!(m.accuracy > 0.5, "accuracy {}", m.accuracy);
        assert!(m.hw.is_feasible());
        assert!(m.hw.outputs_per_s() > 0.0);
        assert!(m.eval_time_s > 0.0);
        assert_eq!(m.neurons, 16);
        match m.hw {
            HwMetrics::Fpga {
                power_w, fmax_mhz, ..
            } => {
                assert!(power_w > 20.0 && power_w < 35.0);
                assert!(fmax_mhz > 200.0);
            }
            other => panic!("expected FPGA metrics, got {other:?}"),
        }
    }

    #[test]
    fn gpu_candidate_gets_gpu_metrics() {
        let (train, test) = dataset();
        let eval = CodesignEvaluator::new(
            train,
            test,
            TrainConfig::fast(),
            HwTarget::Gpu(GpuDevice::titan_x()),
            42,
        );
        let mut g = fpga_genome();
        g.hw = HwGenome::GpuBatch { batch: 256 };
        let m = eval.evaluate(&g);
        assert!(matches!(m.hw, HwMetrics::Gpu { .. }));
        assert!(m.hw.outputs_per_s() > 0.0);
    }

    #[test]
    fn cpu_candidate_gets_cpu_metrics() {
        let (train, test) = dataset();
        let eval = CodesignEvaluator::new(
            train,
            test,
            TrainConfig::fast(),
            HwTarget::Cpu(CpuDevice::xeon_22c()),
            42,
        );
        let mut g = fpga_genome();
        g.hw = HwGenome::GpuBatch { batch: 128 };
        let m = eval.evaluate(&g);
        assert!(matches!(m.hw, HwMetrics::Cpu { .. }));
        assert!(m.hw.outputs_per_s() > 0.0);
        assert!(m.hw.power_w() > 0.0);
        assert!(m.hw.outputs_per_joule() > 0.0);
        assert_eq!(eval.target_name(), "Xeon 22-core");
    }

    #[test]
    fn oversized_grid_is_infeasible_not_panic() {
        let mut g = fpga_genome();
        g.hw = HwGenome::FpgaGrid {
            rows: 16,
            cols: 16,
            interleave_m: 2,
            interleave_n: 2,
            vec: 16, // 4096 DSPs > Arria 10's 1518
            batch: 8,
        };
        let m = fpga_evaluator().evaluate(&g);
        assert!(!m.hw.is_feasible());
        // Training succeeded, so accuracy is still reported.
        assert!(m.accuracy > 0.0);
    }

    #[test]
    fn cross_family_genome_is_infeasible() {
        let mut g = fpga_genome();
        g.hw = HwGenome::GpuBatch { batch: 64 };
        let m = fpga_evaluator().evaluate(&g);
        assert!(!m.hw.is_feasible());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let eval = fpga_evaluator();
        let g = fpga_genome();
        let a = eval.evaluate(&g);
        let b = eval.evaluate(&g);
        assert_eq!(a.accuracy, b.accuracy);
        assert_eq!(a.hw.outputs_per_s(), b.hw.outputs_per_s());
    }

    #[test]
    fn target_name_reports_device() {
        assert_eq!(fpga_evaluator().target_name(), "Arria 10 GX 1150");
    }
}
