//! Distributed coordinator/worker evaluation over TCP.
//!
//! The paper's master/worker split (§III-A) crosses machine boundaries
//! here: `ecad cluster worker --listen ADDR` turns a host into a
//! genome-evaluation server, and a coordinator search routes its
//! [`crate::protocol::DispatchLedger`] dispatches to those workers as
//! *remote supervised slots* — the fault-tolerance substrate from the
//! local engine (deadlines, retries, stale fencing, respawn) applies
//! unchanged, because a remote worker is just a slot whose evaluation
//! happens to traverse a socket.
//!
//! ## Wire protocol
//!
//! Messages are length-prefixed [`rt::json`] frames ([`rt::net`]) with
//! a versioned hello handshake. One connection is one *session*:
//!
//! ```text
//! coordinator                         worker
//!   ── hello {version, role} ──────────▶
//!   ◀───────── hello {version, role} ──
//!   ── Setup {datasets, trainer, …} ───▶
//!   ◀───────────────── Ready {stamp} ──
//!   ── Evaluate {id, stamp, genome} ───▶
//!   ◀── Evaluated {id, stamp, m, ev} ──     (repeated)
//!   ── Purge / KillAll ────────────────▶
//!   ◀───────────── Purged / Bye ───────
//! ```
//!
//! [`SetupPayload`] ships everything an evaluation needs — the
//! standardized train/test split, trainer hyperparameters, the catalog
//! device, the search space, and the objective set — so the worker
//! process needs no filesystem or configuration of its own. The
//! `stamp` is a per-session generation nonce: every `Evaluated` echoes
//! it, and the coordinator drops responses whose stamp (or job id)
//! does not match the current session — stale-result fencing one layer
//! below the ledger's own id fencing.
//!
//! ## Determinism
//!
//! The worker runs each evaluation under an [`Obs`] whose only sink is
//! a [`CaptureSink`]; the captured events (training/hardware-model
//! spans, infeasibility warnings) ride back in the `Evaluated`
//! response and are replayed verbatim on the coordinator inside its
//! own `evaluate` span. A seeded single-worker cluster run therefore
//! produces a Debug-level JSONL trace byte-identical to the local
//! engine's (absent an attached profiler, and with islands off).
//!
//! ## Islands
//!
//! With `island_every = N > 0`, each worker hosts an island: an elite
//! pool fed by the jobs it evaluates plus its own seeded local
//! evolution. Every N jobs it breeds and evaluates `island_k` children
//! and migrates the feasible ones to the coordinator, which folds them
//! into the population (never spending coordinator budget) and emits
//! `migration` trace events.

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ecad_dataset::Dataset;
use ecad_hw::cpu::CpuDevice;
use ecad_hw::fpga::FpgaDevice;
use ecad_hw::gpu::GpuDevice;
use ecad_mlp::{Activation, OptimizerKind, TrainConfig};
use ecad_tensor::Matrix;
use rt::json::Json;
use rt::net::{Conn, Listener, NetError};
use rt::obs::{CaptureSink, Event, Level, Obs};
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, SeedableRng};

use crate::checkpoint::{genome_from_json, genome_to_json, measurement_from_json, measurement_to_json};
use crate::fitness::{Objective, ObjectiveSet};
use crate::genome::CandidateGenome;
use crate::measurement::{InfeasibleReason, Measurement};
use crate::space::{HwFamily, SearchSpace};
use crate::workers::{CodesignEvaluator, Evaluator, HwTarget};

/// Role string the coordinator announces in its hello.
pub const COORDINATOR_ROLE: &str = "coordinator";
/// Role string a worker announces in its hello.
pub const WORKER_ROLE: &str = "worker";

/// Coordinator-side knobs for a cluster search.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Worker addresses (`host:port`), one remote slot each.
    pub workers: Vec<String>,
    /// Per-job network deadline: connect timeout, socket read/write
    /// deadline, and the longest the coordinator waits for an
    /// `Evaluated` response before classifying the exchange transient.
    pub net_timeout: Duration,
    /// Consecutive failed (re)connect attempts before a worker is
    /// declared lost and its slot retires.
    pub connect_retries: usize,
    /// Base reconnect backoff; doubles per attempt with seeded jitter.
    pub reconnect_backoff: Duration,
    /// Migrate worker-island elites every N jobs (`0` disables islands
    /// and preserves byte-identical traces).
    pub island_every: usize,
    /// Children each island breeds and evaluates per migration.
    pub island_k: usize,
    /// Frame-size ceiling for every connection.
    pub max_frame: usize,
    /// Workers piggyback a `Stats` telemetry frame after every N
    /// `Evaluated` responses (`0` disables periodic stats; a final
    /// frame still precedes `Bye` so profiles survive short runs).
    pub stats_every: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            workers: Vec::new(),
            net_timeout: Duration::from_secs(30),
            connect_retries: 3,
            reconnect_backoff: Duration::from_millis(50),
            island_every: 0,
            island_k: 2,
            max_frame: rt::net::DEFAULT_MAX_FRAME,
            stats_every: 4,
        }
    }
}

/// Everything the engine needs to run its slots remotely: the options
/// plus the prebuilt setup payload each session opens with.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// Coordinator-side knobs.
    pub options: ClusterOptions,
    /// The session-opening payload (datasets, trainer, device, space,
    /// objectives, seed, island config).
    pub setup: SetupPayload,
}

// ---------------------------------------------------------------------------
// Cluster health
// ---------------------------------------------------------------------------

/// Lifecycle state of one remote worker slot, as the coordinator sees
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Slot spawned, first connection not yet established.
    Connecting,
    /// Session live; jobs flow.
    Connected,
    /// Connection dropped; the slot is retrying with backoff.
    Reconnecting,
    /// Retries exhausted; the slot retired.
    Lost,
}

impl WorkerState {
    /// The lowercase label `/workers` serves.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Connecting => "connecting",
            WorkerState::Connected => "connected",
            WorkerState::Reconnecting => "reconnecting",
            WorkerState::Lost => "lost",
        }
    }
}

/// A point-in-time view of one worker, as served by `/workers`.
#[derive(Debug, Clone)]
pub struct WorkerHealthSnapshot {
    /// Worker address (`host:port`).
    pub addr: String,
    /// Lifecycle state.
    pub state: WorkerState,
    /// Seconds since the last frame arrived from this worker (`None`
    /// before the first).
    pub last_seen_s: Option<f64>,
    /// Jobs this worker has completed (from its latest `Stats` frame,
    /// so it trails the live count by up to the stats cadence).
    pub jobs: u64,
    /// Cumulative training wall seconds (latest `Stats`).
    pub train_s: f64,
    /// Cumulative hardware-model wall seconds (latest `Stats`).
    pub hw_s: f64,
    /// Worker-side panics (latest `Stats`).
    pub panics: u64,
    /// Island migrants shipped (latest `Stats`).
    pub migrants: u64,
}

#[derive(Debug)]
struct WorkerHealthCell {
    addr: String,
    state: WorkerState,
    last_seen: Option<Instant>,
    jobs: u64,
    train_s: f64,
    hw_s: f64,
    panics: u64,
    migrants: u64,
}

/// Shared per-worker health registry: the engine's remote slots write
/// state transitions and absorbed `Stats` counters; the `/workers`
/// endpoint reads snapshots. Read-only on the serving side, so `--serve`
/// keeps the byte-identity trace contract.
#[derive(Debug)]
pub struct ClusterHealth {
    cells: std::sync::Mutex<Vec<WorkerHealthCell>>,
    degraded: AtomicBool,
}

impl ClusterHealth {
    /// A registry with one `Connecting` cell per worker address.
    pub fn new(addrs: &[String]) -> Self {
        Self {
            cells: std::sync::Mutex::new(
                addrs
                    .iter()
                    .map(|addr| WorkerHealthCell {
                        addr: addr.clone(),
                        state: WorkerState::Connecting,
                        last_seen: None,
                        jobs: 0,
                        train_s: 0.0,
                        hw_s: 0.0,
                        panics: 0,
                        migrants: 0,
                    })
                    .collect(),
            ),
            degraded: AtomicBool::new(false),
        }
    }

    fn with_cell(&self, slot: usize, f: impl FnOnce(&mut WorkerHealthCell)) {
        let mut cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(cell) = cells.get_mut(slot) {
            f(cell);
        }
    }

    /// Records a state transition for `slot`.
    pub fn set_state(&self, slot: usize, state: WorkerState) {
        self.with_cell(slot, |c| c.state = state);
    }

    /// Marks a frame received from `slot` now.
    pub fn mark_seen(&self, slot: usize) {
        self.with_cell(slot, |c| c.last_seen = Some(Instant::now()));
    }

    /// Folds an absorbed `Stats` frame's counters into `slot`.
    pub fn record_stats(
        &self,
        slot: usize,
        jobs: u64,
        train_s: f64,
        hw_s: f64,
        panics: u64,
        migrants: u64,
    ) {
        self.with_cell(slot, |c| {
            c.jobs = jobs;
            c.train_s = train_s;
            c.hw_s = hw_s;
            c.panics = panics;
            c.migrants = migrants;
        });
    }

    /// Flags that every remote is gone and the engine fell back to
    /// local evaluation slots.
    pub fn set_degraded(&self) {
        self.degraded.store(true, Ordering::Release);
    }

    /// Whether the cluster degraded to local slots.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Snapshots every worker cell.
    pub fn snapshot(&self) -> Vec<WorkerHealthSnapshot> {
        let cells = self
            .cells
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        cells
            .iter()
            .map(|c| WorkerHealthSnapshot {
                addr: c.addr.clone(),
                state: c.state,
                last_seen_s: c.last_seen.map(|t| t.elapsed().as_secs_f64()),
                jobs: c.jobs,
                train_s: c.train_s,
                hw_s: c.hw_s,
                panics: c.panics,
                migrants: c.migrants,
            })
            .collect()
    }
}

/// A migrant an island shipped to the coordinator.
#[derive(Debug, Clone)]
pub struct Migrant {
    /// Remote slot index that produced the migrant.
    pub slot: usize,
    /// The migrant's genes.
    pub genome: CandidateGenome,
    /// Its worker-side measurement.
    pub measurement: Measurement,
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

fn wire_err(msg: impl Into<String>) -> NetError {
    NetError::Protocol(msg.into())
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, NetError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| wire_err(format!("missing or non-string field {key:?}")))
}

fn get_f64(j: &Json, key: &str) -> Result<f64, NetError> {
    j.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| wire_err(format!("missing or non-numeric field {key:?}")))
}

fn get_usize(j: &Json, key: &str) -> Result<usize, NetError> {
    let x = get_f64(j, key)?;
    if x < 0.0 || x.fract() != 0.0 {
        return Err(wire_err(format!("field {key:?} is not a non-negative integer")));
    }
    Ok(x as usize)
}

fn get_u64_hex(j: &Json, key: &str) -> Result<u64, NetError> {
    u64::from_str_radix(get_str(j, key)?, 16)
        .map_err(|_| wire_err(format!("field {key:?} is not a 64-bit hex string")))
}

fn get_array<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], NetError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| wire_err(format!("missing or non-array field {key:?}")))
}

fn u32s_to_json(xs: &[u32]) -> Json {
    Json::Array(xs.iter().map(|&x| Json::Number(x as f64)).collect())
}

fn u32s_from_json(j: &Json, key: &str) -> Result<Vec<u32>, NetError> {
    get_array(j, key)?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0 && *v <= u32::MAX as f64)
                .map(|v| v as u32)
                .ok_or_else(|| wire_err(format!("field {key:?} holds a non-u32 element")))
        })
        .collect()
}

fn dataset_to_json(d: &Dataset) -> Json {
    // f32 → f64 widening is exact, and rt::json renders f64 with
    // Rust's shortest round-trip formatting, so features survive the
    // wire bit-exactly.
    let features: Vec<Json> = d
        .features()
        .as_slice()
        .iter()
        .map(|&x| Json::Number(x as f64))
        .collect();
    let labels: Vec<Json> = d.labels().iter().map(|&l| Json::Number(l as f64)).collect();
    Json::object()
        .insert("name", d.name())
        .insert("rows", d.len())
        .insert("cols", d.n_features())
        .insert("n_classes", d.n_classes())
        .insert("features", Json::Array(features))
        .insert("labels", Json::Array(labels))
}

fn dataset_from_json(j: &Json) -> Result<Dataset, NetError> {
    let rows = get_usize(j, "rows")?;
    let cols = get_usize(j, "cols")?;
    let features = get_array(j, "features")?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|v| v as f32)
                .ok_or_else(|| wire_err("non-numeric feature"))
        })
        .collect::<Result<Vec<f32>, NetError>>()?;
    if features.len() != rows * cols {
        return Err(wire_err(format!(
            "feature count {} does not match {rows}x{cols}",
            features.len()
        )));
    }
    let labels = get_array(j, "labels")?
        .iter()
        .map(|x| {
            x.as_f64()
                .filter(|v| *v >= 0.0 && v.fract() == 0.0)
                .map(|v| v as usize)
                .ok_or_else(|| wire_err("non-integer label"))
        })
        .collect::<Result<Vec<usize>, NetError>>()?;
    let matrix = Matrix::from_vec(rows, cols, features);
    Dataset::new(get_str(j, "name")?.to_string(), matrix, labels, get_usize(j, "n_classes")?)
        .map_err(|e| wire_err(format!("bad dataset payload: {e}")))
}

fn trainer_to_json(t: &TrainConfig) -> Json {
    let optimizer = match t.optimizer {
        OptimizerKind::Sgd { lr, momentum } => Json::object()
            .insert("kind", "sgd")
            .insert("lr", lr as f64)
            .insert("momentum", momentum as f64),
        OptimizerKind::Adam { lr } => {
            Json::object().insert("kind", "adam").insert("lr", lr as f64)
        }
    };
    Json::object()
        .insert("epochs", t.epochs)
        .insert("batch_size", t.batch_size)
        .insert("optimizer", optimizer)
        .insert("patience", t.patience)
        .insert("min_delta", t.min_delta as f64)
        .insert("weight_decay", t.weight_decay as f64)
}

fn trainer_from_json(j: &Json) -> Result<TrainConfig, NetError> {
    let opt = j
        .get("optimizer")
        .ok_or_else(|| wire_err("trainer missing optimizer"))?;
    let optimizer = match get_str(opt, "kind")? {
        "sgd" => OptimizerKind::Sgd {
            lr: get_f64(opt, "lr")? as f32,
            momentum: get_f64(opt, "momentum")? as f32,
        },
        "adam" => OptimizerKind::Adam {
            lr: get_f64(opt, "lr")? as f32,
        },
        other => return Err(wire_err(format!("unknown optimizer kind {other:?}"))),
    };
    Ok(TrainConfig {
        epochs: get_usize(j, "epochs")?,
        batch_size: get_usize(j, "batch_size")?,
        optimizer,
        patience: get_usize(j, "patience")?,
        min_delta: get_f64(j, "min_delta")? as f32,
        weight_decay: get_f64(j, "weight_decay")? as f32,
    })
}

/// Serializes a catalog hardware target as its configuration-file name
/// (`arria10`, `stratix10`, `m5000`, `titanx`, `radeonvii`, `xeon`,
/// `desktop`) plus FPGA DDR bank count.
///
/// # Errors
///
/// [`NetError::Protocol`] for a non-catalog device: the wire format
/// identifies devices by name, so a custom device cannot cross it.
pub fn target_to_json(t: &HwTarget) -> Result<Json, NetError> {
    let (name, banks) = match t {
        HwTarget::Fpga(d) if d.name == "Arria 10 GX 1150" => ("arria10", d.ddr.banks),
        HwTarget::Fpga(d) if d.name == "Stratix 10 2800" => ("stratix10", d.ddr.banks),
        HwTarget::Gpu(d) if d.name == "Quadro M5000" => ("m5000", 0),
        HwTarget::Gpu(d) if d.name == "Titan X" => ("titanx", 0),
        HwTarget::Gpu(d) if d.name == "Radeon VII" => ("radeonvii", 0),
        HwTarget::Cpu(d) if d.name == "Xeon 22-core" => ("xeon", 0),
        HwTarget::Cpu(d) if d.name == "Desktop 8-core" => ("desktop", 0),
        other => {
            return Err(wire_err(format!(
                "cluster mode only ships catalog devices, not {:?}",
                other.device_name()
            )))
        }
    };
    Ok(Json::object().insert("device", name).insert("ddr_banks", banks))
}

/// Reconstructs a catalog hardware target from its wire form.
///
/// # Errors
///
/// [`NetError::Protocol`] for an unknown device name.
pub fn target_from_json(j: &Json) -> Result<HwTarget, NetError> {
    let banks = get_usize(j, "ddr_banks")?.max(1) as u32;
    Ok(match get_str(j, "device")? {
        "arria10" => HwTarget::Fpga(FpgaDevice::arria10_gx1150(banks)),
        "stratix10" => HwTarget::Fpga(FpgaDevice::stratix10_2800(banks)),
        "m5000" => HwTarget::Gpu(GpuDevice::quadro_m5000()),
        "titanx" => HwTarget::Gpu(GpuDevice::titan_x()),
        "radeonvii" => HwTarget::Gpu(GpuDevice::radeon_vii()),
        "xeon" => HwTarget::Cpu(CpuDevice::xeon_22c()),
        "desktop" => HwTarget::Cpu(CpuDevice::desktop_8c()),
        other => return Err(wire_err(format!("unknown device {other:?}"))),
    })
}

fn space_to_json(s: &SearchSpace) -> Json {
    Json::object()
        .insert(
            "family",
            match s.family {
                HwFamily::Fpga => "fpga",
                HwFamily::Gpu => "gpu",
            },
        )
        .insert("min_layers", s.min_layers)
        .insert("max_layers", s.max_layers)
        .insert("min_neurons", s.min_neurons)
        .insert("max_neurons", s.max_neurons)
        .insert(
            "activations",
            Json::Array(
                s.activations
                    .iter()
                    .map(|a| Json::String(a.name().to_string()))
                    .collect(),
            ),
        )
        .insert("grid_dims", u32s_to_json(&s.grid_dims))
        .insert("interleaves", u32s_to_json(&s.interleaves))
        .insert("vec_widths", u32s_to_json(&s.vec_widths))
        .insert("batches", u32s_to_json(&s.batches))
}

fn space_from_json(j: &Json) -> Result<SearchSpace, NetError> {
    let family = match get_str(j, "family")? {
        "fpga" => HwFamily::Fpga,
        "gpu" => HwFamily::Gpu,
        other => return Err(wire_err(format!("unknown hw family {other:?}"))),
    };
    let activations = get_array(j, "activations")?
        .iter()
        .map(|a| {
            a.as_str()
                .and_then(Activation::from_name)
                .ok_or_else(|| wire_err("unknown activation in space"))
        })
        .collect::<Result<Vec<_>, NetError>>()?;
    Ok(SearchSpace {
        family,
        min_layers: get_usize(j, "min_layers")?,
        max_layers: get_usize(j, "max_layers")?,
        min_neurons: get_usize(j, "min_neurons")?,
        max_neurons: get_usize(j, "max_neurons")?,
        activations,
        grid_dims: u32s_from_json(j, "grid_dims")?,
        interleaves: u32s_from_json(j, "interleaves")?,
        vec_widths: u32s_from_json(j, "vec_widths")?,
        batches: u32s_from_json(j, "batches")?,
    })
}

fn objectives_to_json(set: &ObjectiveSet) -> Json {
    Json::Array(
        set.objectives()
            .iter()
            .map(|o| {
                Json::object()
                    .insert("name", o.name.as_str())
                    .insert("weight", o.weight)
                    .insert("maximize", o.maximize)
            })
            .collect(),
    )
}

fn objectives_from_json(j: &Json, key: &str) -> Result<ObjectiveSet, NetError> {
    let objectives = get_array(j, key)?
        .iter()
        .map(|o| {
            Ok(Objective {
                name: get_str(o, "name")?.to_string(),
                weight: get_f64(o, "weight")?,
                maximize: o
                    .get("maximize")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| wire_err("objective missing maximize"))?,
            })
        })
        .collect::<Result<Vec<_>, NetError>>()?;
    // Workers rebuild with the builtin registry: custom registered
    // fitness functions cannot cross the wire.
    Ok(ObjectiveSet::new(objectives))
}

/// The session-opening payload: everything a worker needs to evaluate
/// genomes for this search, shipped so the worker process carries no
/// configuration of its own.
#[derive(Debug, Clone)]
pub struct SetupPayload {
    /// Search seed; candidate training seeds derive from it exactly as
    /// in the local engine, so remote measurements match local ones.
    pub seed: u64,
    /// Standardized training split.
    pub train: Dataset,
    /// Standardized test split.
    pub test: Dataset,
    /// Per-candidate training hyperparameters.
    pub trainer: TrainConfig,
    /// The catalog hardware target.
    pub target: HwTarget,
    /// The search space (used by worker islands to breed).
    pub space: SearchSpace,
    /// The objective set (used by worker islands to rank elites).
    pub objectives: ObjectiveSet,
    /// Island cadence (`0` = islands off).
    pub island_every: usize,
    /// Island brood size per migration.
    pub island_k: usize,
    /// When set (`"wall"` / `"ticks"`), the worker profiles each
    /// evaluation under a session-local `rt::prof` profiler with this
    /// clock and ships its subtree in `Stats` frames. The ticks clock
    /// makes the subtree deterministic for a fixed job stream.
    pub profile_clock: Option<String>,
    /// `Stats` cadence in jobs (`0` = final frame only).
    pub stats_every: usize,
}

impl SetupPayload {
    fn to_json(&self, stamp: u64) -> Result<Json, NetError> {
        let j = Json::object()
            .insert("seed", format!("{:016x}", self.seed))
            .insert("stamp", format!("{stamp:016x}"))
            .insert("train", dataset_to_json(&self.train))
            .insert("test", dataset_to_json(&self.test))
            .insert("trainer", trainer_to_json(&self.trainer))
            .insert("target", target_to_json(&self.target)?)
            .insert("space", space_to_json(&self.space))
            .insert("objectives", objectives_to_json(&self.objectives))
            .insert("island_every", self.island_every)
            .insert("island_k", self.island_k)
            .insert("stats_every", self.stats_every);
        Ok(match &self.profile_clock {
            Some(clock) => j.insert("profile_clock", clock.as_str()),
            None => j,
        })
    }

    fn from_json(j: &Json) -> Result<(Self, u64), NetError> {
        let payload = Self {
            seed: get_u64_hex(j, "seed")?,
            train: dataset_from_json(
                j.get("train").ok_or_else(|| wire_err("setup missing train"))?,
            )?,
            test: dataset_from_json(
                j.get("test").ok_or_else(|| wire_err("setup missing test"))?,
            )?,
            trainer: trainer_from_json(
                j.get("trainer").ok_or_else(|| wire_err("setup missing trainer"))?,
            )?,
            target: target_from_json(
                j.get("target").ok_or_else(|| wire_err("setup missing target"))?,
            )?,
            space: space_from_json(
                j.get("space").ok_or_else(|| wire_err("setup missing space"))?,
            )?,
            objectives: objectives_from_json(j, "objectives")?,
            island_every: get_usize(j, "island_every")?,
            island_k: get_usize(j, "island_k")?,
            // Optional so a newer worker accepts an older coordinator's
            // setup frame (absent = telemetry off).
            profile_clock: j
                .get("profile_clock")
                .and_then(Json::as_str)
                .map(str::to_string),
            stats_every: if j.get("stats_every").is_some() {
                get_usize(j, "stats_every")?
            } else {
                0
            },
        };
        Ok((payload, get_u64_hex(j, "stamp")?))
    }
}

/// Every message a coordinator sends on an established session.
#[derive(Debug, Clone)]
pub enum CoordinatorRequest {
    /// Opens the session: evaluation context plus the session stamp.
    Setup(Box<SetupPayload>, u64),
    /// Evaluate one genome. `id` is the ledger dispatch id; `stamp`
    /// must echo the session stamp.
    Evaluate {
        /// Ledger dispatch id.
        id: u64,
        /// Session generation stamp.
        stamp: u64,
        /// The candidate to score.
        genome: CandidateGenome,
    },
    /// Drop island/elite state but keep serving (sent on reconnect so
    /// a new session never inherits a stale island).
    Purge,
    /// Stop serving entirely: the worker replies `Bye` and its process
    /// exits the listen loop.
    KillAll,
}

impl CoordinatorRequest {
    /// Serializes for the wire.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when a setup payload holds a non-catalog
    /// device.
    pub fn to_json(&self) -> Result<Json, NetError> {
        Ok(match self {
            CoordinatorRequest::Setup(payload, stamp) => payload
                .to_json(*stamp)?
                .insert("req", "setup"),
            CoordinatorRequest::Evaluate { id, stamp, genome } => Json::object()
                .insert("req", "evaluate")
                .insert("id", *id)
                .insert("stamp", format!("{stamp:016x}"))
                .insert("genome", genome_to_json(genome)),
            CoordinatorRequest::Purge => Json::object().insert("req", "purge"),
            CoordinatorRequest::KillAll => Json::object().insert("req", "kill_all"),
        })
    }

    /// Parses a received request frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on structural problems.
    pub fn from_json(j: &Json) -> Result<Self, NetError> {
        Ok(match get_str(j, "req")? {
            "setup" => {
                let (payload, stamp) = SetupPayload::from_json(j)?;
                CoordinatorRequest::Setup(Box::new(payload), stamp)
            }
            "evaluate" => CoordinatorRequest::Evaluate {
                id: get_usize(j, "id")? as u64,
                stamp: get_u64_hex(j, "stamp")?,
                genome: genome_from_json(
                    j.get("genome").ok_or_else(|| wire_err("evaluate missing genome"))?,
                )
                .map_err(|e| wire_err(format!("bad genome: {e}")))?,
            },
            "purge" => CoordinatorRequest::Purge,
            "kill_all" => CoordinatorRequest::KillAll,
            other => return Err(wire_err(format!("unknown request {other:?}"))),
        })
    }
}

/// Every message a worker sends back.
#[derive(Debug, Clone)]
pub enum WorkerResponse {
    /// Setup accepted; echoes the session stamp.
    Ready {
        /// The session stamp being acknowledged.
        stamp: u64,
    },
    /// One evaluation finished.
    Evaluated {
        /// The dispatch id being answered.
        id: u64,
        /// The session stamp the job carried.
        stamp: u64,
        /// The measurement (worker panics arrive as worker-panic
        /// infeasible measurements, never as dropped connections).
        measurement: Measurement,
        /// Whether the evaluation panicked worker-side (the
        /// coordinator re-emits the local engine's panic warning).
        panicked: bool,
        /// Evaluation-time events captured worker-side, for replay.
        events: Vec<Event>,
        /// Island elites migrating to the coordinator (empty unless
        /// islands are on and this job crossed a migration boundary).
        migrants: Vec<(CandidateGenome, Measurement)>,
    },
    /// Island/elite state dropped.
    Purged,
    /// Periodic telemetry piggybacked on the session: cumulative
    /// session counters plus an optional `rt::prof` subtree export.
    /// Sent after every `stats_every`-th `Evaluated` and once more
    /// immediately before `Bye`; snapshots are cumulative, so the
    /// coordinator keeps only the latest per worker.
    Stats {
        /// Jobs evaluated this session.
        jobs: u64,
        /// Cumulative candidate-training wall seconds.
        train_s: f64,
        /// Cumulative hardware-model wall seconds.
        hw_s: f64,
        /// Evaluations that panicked worker-side.
        panics: u64,
        /// Island migrants shipped so far.
        migrants: u64,
        /// Profile subtree (`ProfileNode::to_json`) when the setup
        /// requested a profile clock.
        profile: Option<Json>,
    },
    /// Acknowledges `KillAll`; the worker is exiting.
    Bye,
}

impl WorkerResponse {
    /// Serializes for the wire.
    pub fn to_json(&self) -> Json {
        match self {
            WorkerResponse::Ready { stamp } => Json::object()
                .insert("resp", "ready")
                .insert("stamp", format!("{stamp:016x}")),
            WorkerResponse::Evaluated {
                id,
                stamp,
                measurement,
                panicked,
                events,
                migrants,
            } => Json::object()
                .insert("resp", "evaluated")
                .insert("id", *id)
                .insert("stamp", format!("{stamp:016x}"))
                .insert("measurement", measurement_to_json(measurement))
                .insert("panicked", *panicked)
                .insert(
                    "events",
                    Json::Array(events.iter().map(Event::to_wire_json).collect()),
                )
                .insert(
                    "migrants",
                    Json::Array(
                        migrants
                            .iter()
                            .map(|(g, m)| {
                                Json::object()
                                    .insert("genome", genome_to_json(g))
                                    .insert("measurement", measurement_to_json(m))
                            })
                            .collect(),
                    ),
                ),
            WorkerResponse::Purged => Json::object().insert("resp", "purged"),
            WorkerResponse::Stats {
                jobs,
                train_s,
                hw_s,
                panics,
                migrants,
                profile,
            } => {
                let j = Json::object()
                    .insert("resp", "stats")
                    .insert("jobs", *jobs)
                    .insert("train_s", *train_s)
                    .insert("hw_s", *hw_s)
                    .insert("panics", *panics)
                    .insert("migrants", *migrants);
                match profile {
                    Some(p) => j.insert("profile", p.clone()),
                    None => j,
                }
            }
            WorkerResponse::Bye => Json::object().insert("resp", "bye"),
        }
    }

    /// Parses a received response frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on structural problems.
    pub fn from_json(j: &Json) -> Result<Self, NetError> {
        Ok(match get_str(j, "resp")? {
            "ready" => WorkerResponse::Ready {
                stamp: get_u64_hex(j, "stamp")?,
            },
            "evaluated" => WorkerResponse::Evaluated {
                id: get_usize(j, "id")? as u64,
                stamp: get_u64_hex(j, "stamp")?,
                measurement: measurement_from_json(
                    j.get("measurement")
                        .ok_or_else(|| wire_err("evaluated missing measurement"))?,
                )
                .map_err(|e| wire_err(format!("bad measurement: {e}")))?,
                panicked: j.get("panicked").and_then(Json::as_bool).unwrap_or(false),
                events: get_array(j, "events")?
                    .iter()
                    .map(|e| Event::from_wire_json(e).map_err(wire_err))
                    .collect::<Result<Vec<_>, NetError>>()?,
                migrants: get_array(j, "migrants")?
                    .iter()
                    .map(|p| {
                        Ok((
                            genome_from_json(
                                p.get("genome")
                                    .ok_or_else(|| wire_err("migrant missing genome"))?,
                            )
                            .map_err(|e| wire_err(format!("bad migrant genome: {e}")))?,
                            measurement_from_json(
                                p.get("measurement")
                                    .ok_or_else(|| wire_err("migrant missing measurement"))?,
                            )
                            .map_err(|e| wire_err(format!("bad migrant measurement: {e}")))?,
                        ))
                    })
                    .collect::<Result<Vec<_>, NetError>>()?,
            },
            "purged" => WorkerResponse::Purged,
            "stats" => WorkerResponse::Stats {
                jobs: get_usize(j, "jobs")? as u64,
                train_s: get_f64(j, "train_s")?,
                hw_s: get_f64(j, "hw_s")?,
                panics: get_usize(j, "panics")? as u64,
                migrants: get_usize(j, "migrants")? as u64,
                profile: j.get("profile").cloned(),
            },
            "bye" => WorkerResponse::Bye,
            other => return Err(wire_err(format!("unknown response {other:?}"))),
        })
    }
}

// ---------------------------------------------------------------------------
// Worker server
// ---------------------------------------------------------------------------

/// Worker-side knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Frame-size ceiling (must cover the dataset-bearing setup frame).
    pub max_frame: usize,
    /// Socket write deadline and connect-phase read deadline.
    pub io_timeout: Duration,
    /// How long an established session may sit idle between requests
    /// before the worker drops it back to accepting (a coordinator
    /// reconnects transparently on its next job).
    pub idle_timeout: Duration,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            max_frame: rt::net::DEFAULT_MAX_FRAME,
            io_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(600),
        }
    }
}

/// How a worker session ended.
enum SessionEnd {
    /// Connection dropped or errored; go back to accepting.
    Disconnected,
    /// The coordinator sent `kill_all`; stop serving entirely.
    Killed,
}

/// Worker-island state: an elite pool plus seeded local evolution.
struct Island {
    space: SearchSpace,
    objectives: ObjectiveSet,
    rng: StdRng,
    /// `(genome, measurement, fitness)` sorted best-first; keys
    /// deduplicated.
    elites: Vec<(CandidateGenome, Measurement, f64)>,
    every: usize,
    k: usize,
    pool: usize,
    jobs_since: usize,
}

impl Island {
    fn new(setup: &SetupPayload, stamp: u64) -> Option<Self> {
        if setup.island_every == 0 || setup.island_k == 0 {
            return None;
        }
        Some(Self {
            space: setup.space.clone(),
            objectives: setup.objectives.clone(),
            // Stamp-salted: a re-established session explores a fresh
            // island trajectory instead of replaying the lost one.
            rng: StdRng::seed_from_u64(setup.seed ^ stamp ^ 0x15_1A_4D),
            elites: Vec::new(),
            every: setup.island_every,
            k: setup.island_k,
            pool: (2 * setup.island_k).max(8),
            jobs_since: 0,
        })
    }

    fn observe(&mut self, genome: &CandidateGenome, m: &Measurement) {
        let fitness = self.objectives.scalar(m);
        if !fitness.is_finite() {
            return;
        }
        let key = genome.cache_key();
        if self.elites.iter().any(|(g, _, _)| g.cache_key() == key) {
            return;
        }
        let at = self
            .elites
            .partition_point(|(_, _, f)| *f >= fitness);
        self.elites.insert(at, (genome.clone(), m.clone(), fitness));
        self.elites.truncate(self.pool);
    }

    /// Advances the island by one coordinator job; on a migration
    /// boundary, breeds and evaluates `k` children and returns the
    /// feasible ones.
    fn step(&mut self, evaluator: &CodesignEvaluator) -> Vec<(CandidateGenome, Measurement)> {
        self.jobs_since += 1;
        if self.jobs_since < self.every || self.elites.is_empty() {
            return Vec::new();
        }
        self.jobs_since = 0;
        let mut migrants = Vec::new();
        for _ in 0..self.k {
            let child = self.breed();
            let m = catch_unwind(AssertUnwindSafe(|| evaluator.evaluate(&child)))
                .unwrap_or_else(|_| Measurement::infeasible(InfeasibleReason::WorkerPanic));
            self.observe(&child, &m);
            if m.hw.is_feasible() {
                migrants.push((child, m));
            }
        }
        migrants
    }

    fn breed(&mut self) -> CandidateGenome {
        let a = &self.elites[self.rng.gen_range(0..self.elites.len())].0.clone();
        let child = if self.elites.len() >= 2 && self.rng.gen_range(0.0..1.0) < 0.5 {
            let b = &self.elites[self.rng.gen_range(0..self.elites.len())].0.clone();
            self.space.crossover(a, b, &mut self.rng)
        } else {
            a.clone()
        };
        self.space.mutate(&child, &mut self.rng)
    }
}

/// One established session's evaluation context.
struct WorkerSession {
    evaluator: CodesignEvaluator,
    capture: Arc<CaptureSink>,
    stamp: u64,
    island: Option<Island>,
    /// Session-local profiler (own tick domain, never attached to the
    /// capture `Obs`, so replayed events are unaffected); its subtree
    /// ships in `Stats` frames.
    profiler: Option<rt::prof::Profiler>,
    stats_every: usize,
    jobs_since_stats: usize,
    jobs: u64,
    train_s: f64,
    hw_s: f64,
    panics: u64,
    migrants_sent: u64,
}

impl WorkerSession {
    fn from_setup(setup: &SetupPayload, stamp: u64) -> Self {
        let capture = CaptureSink::new(Level::Trace);
        let capture_obs = Obs::builder().sink(Arc::clone(&capture)).build();
        let evaluator = CodesignEvaluator::new(
            setup.train.clone(),
            setup.test.clone(),
            setup.trainer,
            setup.target.clone(),
            setup.seed,
        )
        .with_obs(capture_obs);
        let island = Island::new(setup, stamp);
        let profiler = setup
            .profile_clock
            .as_deref()
            .and_then(rt::prof::ClockKind::parse)
            .map(|clock| rt::prof::Profiler::with_root(clock, "worker"));
        Self {
            evaluator,
            capture,
            stamp,
            island,
            profiler,
            stats_every: setup.stats_every,
            jobs_since_stats: 0,
            jobs: 0,
            train_s: 0.0,
            hw_s: 0.0,
            panics: 0,
            migrants_sent: 0,
        }
    }

    fn evaluate(&mut self, id: u64, stamp: u64, genome: &CandidateGenome) -> WorkerResponse {
        let started = Instant::now();
        // Ambient install: kernel/model `prof_span!`s inside the
        // evaluator nest under an `evaluate` phase of the session tree.
        let install = self.profiler.as_ref().map(rt::prof::Profiler::install);
        let eval_span = self.profiler.as_ref().map(|p| p.enter("evaluate"));
        let (measurement, panicked) =
            match catch_unwind(AssertUnwindSafe(|| self.evaluator.evaluate(genome))) {
                Ok(m) => (m, false),
                Err(_) => {
                    let mut m = Measurement::infeasible(InfeasibleReason::WorkerPanic);
                    m.eval_time_s = started.elapsed().as_secs_f64();
                    (m, true)
                }
            };
        drop(eval_span);
        // The job's own events, drained before any island work so
        // island-local evaluations never leak into the replay stream.
        let events = self.capture.take();
        let migrants = match &mut self.island {
            Some(island) => {
                let island_span = self.profiler.as_ref().map(|p| p.enter("island"));
                island.observe(genome, &measurement);
                let migrants = island.step(&self.evaluator);
                drop(island_span);
                self.capture.take(); // discard island-local events
                migrants
            }
            None => Vec::new(),
        };
        drop(install);
        self.jobs += 1;
        self.jobs_since_stats += 1;
        self.train_s += measurement.train_time_s;
        self.hw_s += measurement.hw_time_s;
        self.panics += u64::from(panicked);
        self.migrants_sent += migrants.len() as u64;
        WorkerResponse::Evaluated {
            id,
            stamp,
            measurement,
            panicked,
            events,
            migrants,
        }
    }

    /// The cumulative telemetry frame for this session.
    fn stats(&self) -> WorkerResponse {
        WorkerResponse::Stats {
            jobs: self.jobs,
            train_s: self.train_s,
            hw_s: self.hw_s,
            panics: self.panics,
            migrants: self.migrants_sent,
            profile: self
                .profiler
                .as_ref()
                .map(|p| p.report().to_json()),
        }
    }

    /// A `Stats` frame when the periodic cadence is due (resets the
    /// cadence counter).
    fn periodic_stats(&mut self) -> Option<WorkerResponse> {
        if self.stats_every == 0 || self.jobs_since_stats < self.stats_every {
            return None;
        }
        self.jobs_since_stats = 0;
        Some(self.stats())
    }
}

/// A bound cluster worker: accepts one coordinator session at a time
/// and serves evaluation jobs until killed.
pub struct WorkerServer {
    listener: Listener,
    options: WorkerOptions,
    obs: Obs,
    stop: Arc<AtomicBool>,
}

impl WorkerServer {
    /// Binds `addr` (`host:port`; port `0` picks an ephemeral port —
    /// read it back with [`WorkerServer::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn bind(addr: &str, options: WorkerOptions, obs: Obs) -> io::Result<Self> {
        Ok(Self {
            listener: Listener::bind(addr)?,
            options,
            obs,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A flag that stops [`WorkerServer::run`] at the next accept poll
    /// (for embedding a worker in tests or alongside other work).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Serves sessions until a coordinator sends `kill_all` or the
    /// stop handle trips. Connection-level failures (disconnects,
    /// malformed frames, version skew) drop the session and return to
    /// accepting — a worker outlives its coordinators.
    ///
    /// # Errors
    ///
    /// Only accept-loop failures; per-session errors are survived.
    pub fn run(&self) -> io::Result<()> {
        rt::info!(
            self.obs,
            "worker_listen",
            addr = self
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_default(),
        );
        loop {
            if self.stop.load(Ordering::Acquire) {
                return Ok(());
            }
            let Some((stream, peer)) = self.listener.accept_timeout(Duration::from_millis(200))?
            else {
                continue;
            };
            rt::info!(self.obs, "session_accept", peer = peer.to_string());
            let end = Conn::from_stream(stream, self.options.max_frame, Some(self.options.io_timeout))
                .map_err(|e| (e, SessionEnd::Disconnected))
                .and_then(|mut conn| match self.serve_session(&mut conn) {
                    Ok(end) => Ok(end),
                    Err(e) => Err((e, SessionEnd::Disconnected)),
                });
            match end {
                Ok(SessionEnd::Killed) => {
                    rt::info!(self.obs, "worker_killed");
                    return Ok(());
                }
                Ok(SessionEnd::Disconnected) => {
                    rt::info!(self.obs, "session_end", reason = "disconnect");
                }
                Err((e, _)) => {
                    rt::warn!(
                        self.obs,
                        "session_error",
                        error = e.to_string(),
                        transient = e.is_transient(),
                    );
                }
            }
        }
    }

    fn serve_session(&self, conn: &mut Conn) -> Result<SessionEnd, NetError> {
        conn.handshake_server(WORKER_ROLE, Some(COORDINATOR_ROLE))?;
        let mut session: Option<WorkerSession> = None;
        loop {
            if self.stop.load(Ordering::Acquire) {
                return Ok(SessionEnd::Disconnected);
            }
            // Idle sessions time out back to the accept loop; the
            // coordinator reconnects on its next dispatch.
            conn.set_io_timeout(Some(self.options.idle_timeout))?;
            let frame = match conn.recv() {
                Ok(f) => f,
                Err(NetError::Closed) => return Ok(SessionEnd::Disconnected),
                Err(e) => return Err(e),
            };
            conn.set_io_timeout(Some(self.options.io_timeout))?;
            match CoordinatorRequest::from_json(&frame)? {
                CoordinatorRequest::Setup(payload, stamp) => {
                    rt::info!(
                        self.obs,
                        "session_setup",
                        stamp = format!("{stamp:016x}"),
                        train_rows = payload.train.len(),
                        test_rows = payload.test.len(),
                        device = payload.target.device_name(),
                        island_every = payload.island_every,
                    );
                    session = Some(WorkerSession::from_setup(&payload, stamp));
                    conn.send(&WorkerResponse::Ready { stamp }.to_json())?;
                }
                CoordinatorRequest::Evaluate { id, stamp, genome } => {
                    let s = session
                        .as_mut()
                        .ok_or_else(|| wire_err("evaluate before setup"))?;
                    if stamp != s.stamp {
                        return Err(wire_err(format!(
                            "job stamp {stamp:016x} does not match session {:016x}",
                            s.stamp
                        )));
                    }
                    rt::debug!(self.obs, "job", id = id as usize);
                    let response = s.evaluate(id, stamp, &genome);
                    if let WorkerResponse::Evaluated {
                        measurement,
                        panicked,
                        migrants,
                        ..
                    } = &response
                    {
                        self.obs.counter("worker.jobs").inc();
                        self.obs.histogram("worker.eval_s").record(measurement.eval_time_s);
                        self.obs.gauge("worker.train_wall_s").set(s.train_s);
                        self.obs.gauge("worker.hw_wall_s").set(s.hw_s);
                        if *panicked {
                            self.obs.counter("worker.panics").inc();
                        }
                        if !migrants.is_empty() {
                            self.obs.counter("worker.migrants").add(migrants.len() as u64);
                        }
                    }
                    conn.send(&response.to_json())?;
                    // Piggyback cumulative telemetry every N jobs; the
                    // coordinator absorbs it while draining replies.
                    if let Some(stats) = s.periodic_stats() {
                        conn.send(&stats.to_json())?;
                    }
                }
                CoordinatorRequest::Purge => {
                    if let Some(s) = session.as_mut() {
                        if let Some(island) = s.island.as_mut() {
                            island.elites.clear();
                            island.jobs_since = 0;
                        }
                    }
                    rt::info!(self.obs, "session_purge");
                    conn.send(&WorkerResponse::Purged.to_json())?;
                }
                CoordinatorRequest::KillAll => {
                    // Final cumulative stats precede the goodbye so the
                    // coordinator's master profile always includes this
                    // worker's full subtree, even on short runs.
                    if let Some(s) = session.as_ref() {
                        conn.send(&s.stats().to_json())?;
                    }
                    conn.send(&WorkerResponse::Bye.to_json())?;
                    return Ok(SessionEnd::Killed);
                }
            }
        }
    }
}

/// Convenience: bind and serve in one call (the CLI worker entry
/// point).
///
/// # Errors
///
/// Bind or accept-loop failures.
pub fn run_worker(addr: &str, options: WorkerOptions, obs: Obs) -> io::Result<()> {
    WorkerServer::bind(addr, options, obs)?.run()
}

/// FNV-1a over an address string — the per-worker salt for seeded
/// reconnect backoff jitter.
pub(crate) fn addr_salt(addr: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in addr.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;
    use ecad_dataset::synth::SyntheticSpec;

    fn tiny_dataset(seed: u64) -> Dataset {
        SyntheticSpec::new("tiny", 24, 4, 3).with_seed(seed).generate()
    }

    fn setup_payload(island_every: usize) -> SetupPayload {
        SetupPayload {
            seed: 7,
            train: tiny_dataset(1),
            test: tiny_dataset(2),
            trainer: TrainConfig::fast(),
            target: HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
            space: SearchSpace::fpga_default(),
            objectives: ObjectiveSet::accuracy_only(),
            island_every,
            island_k: 2,
            profile_clock: None,
            stats_every: 0,
        }
    }

    #[test]
    fn dataset_round_trips_bit_exactly() {
        let d = tiny_dataset(42);
        let wire = dataset_to_json(&d);
        let reparsed = Json::parse(&wire.to_string()).unwrap();
        let back = dataset_from_json(&reparsed).unwrap();
        assert_eq!(back.name(), d.name());
        assert_eq!(back.n_classes(), d.n_classes());
        assert_eq!(back.labels(), d.labels());
        assert_eq!(back.features().as_slice(), d.features().as_slice());
    }

    #[test]
    fn setup_round_trips() {
        let mut setup = setup_payload(3);
        setup.profile_clock = Some("ticks".to_string());
        setup.stats_every = 5;
        let wire = setup.to_json(0xDEAD_BEEF).unwrap();
        let reparsed = Json::parse(&wire.to_string()).unwrap();
        let (back, stamp) = SetupPayload::from_json(&reparsed).unwrap();
        assert_eq!(stamp, 0xDEAD_BEEF);
        assert_eq!(back.seed, setup.seed);
        assert_eq!(back.trainer, setup.trainer);
        assert_eq!(back.space, setup.space);
        assert_eq!(back.island_every, 3);
        assert_eq!(back.profile_clock.as_deref(), Some("ticks"));
        assert_eq!(back.stats_every, 5);
        assert_eq!(back.target.device_name(), setup.target.device_name());
        assert_eq!(
            back.objectives.objectives().len(),
            setup.objectives.objectives().len()
        );

        // Telemetry fields are optional on the wire: a frame without
        // them (older coordinator) still parses with telemetry off.
        let stripped = setup_payload(0).to_json(0x1).unwrap();
        let text = stripped.to_string().replace(",\"stats_every\":0", "");
        assert!(!text.contains("stats_every"), "field stripped: {text}");
        let (legacy, _) = SetupPayload::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(legacy.profile_clock, None);
        assert_eq!(legacy.stats_every, 0);
    }

    #[test]
    fn requests_and_responses_round_trip() {
        let genome = SearchSpace::fpga_default().sample(&mut StdRng::seed_from_u64(3));
        let req = CoordinatorRequest::Evaluate {
            id: 12,
            stamp: 0xABC,
            genome: genome.clone(),
        };
        let wire = Json::parse(&req.to_json().unwrap().to_string()).unwrap();
        match CoordinatorRequest::from_json(&wire).unwrap() {
            CoordinatorRequest::Evaluate { id, stamp, genome: g } => {
                assert_eq!(id, 12);
                assert_eq!(stamp, 0xABC);
                assert_eq!(g.cache_key(), genome.cache_key());
            }
            other => panic!("wrong variant {other:?}"),
        }
        for (req, name) in [
            (CoordinatorRequest::Purge, "purge"),
            (CoordinatorRequest::KillAll, "kill_all"),
        ] {
            let wire = req.to_json().unwrap();
            assert_eq!(wire.get("req").and_then(Json::as_str), Some(name));
            assert!(CoordinatorRequest::from_json(&wire).is_ok());
        }

        let m = Measurement::infeasible(InfeasibleReason::Transient("net".into()));
        let resp = WorkerResponse::Evaluated {
            id: 9,
            stamp: 0x1,
            measurement: m,
            panicked: true,
            events: vec![Event {
                level: Level::Warn,
                target: "ecad_core::workers",
                name: "infeasible",
                fields: vec![("stage", rt::obs::Value::Str("train".into()))],
                elapsed_s: None,
            }],
            migrants: vec![(genome, Measurement::infeasible(InfeasibleReason::DeviceFit))],
        };
        let wire = Json::parse(&resp.to_json().to_string()).unwrap();
        match WorkerResponse::from_json(&wire).unwrap() {
            WorkerResponse::Evaluated {
                id,
                stamp,
                panicked,
                events,
                migrants,
                measurement,
            } => {
                assert_eq!((id, stamp, panicked), (9, 1, true));
                assert_eq!(events.len(), 1);
                assert_eq!(events[0].name, "infeasible");
                assert_eq!(migrants.len(), 1);
                assert!(matches!(
                    measurement.failure_kind(),
                    Some(crate::measurement::FailureKind::Transient)
                ));
            }
            other => panic!("wrong variant {other:?}"),
        }

        let profile = rt::prof::ProfileNode {
            name: "worker".to_string(),
            total_ns: 3000,
            self_ns: 1000,
            calls: 2,
            children: Vec::new(),
        };
        let stats = WorkerResponse::Stats {
            jobs: 8,
            train_s: 1.5,
            hw_s: 0.25,
            panics: 1,
            migrants: 4,
            profile: Some(profile.to_json()),
        };
        let wire = Json::parse(&stats.to_json().to_string()).unwrap();
        match WorkerResponse::from_json(&wire).unwrap() {
            WorkerResponse::Stats {
                jobs,
                train_s,
                hw_s,
                panics,
                migrants,
                profile,
            } => {
                assert_eq!((jobs, panics, migrants), (8, 1, 4));
                assert_eq!((train_s, hw_s), (1.5, 0.25));
                let node = rt::prof::ProfileNode::from_json(&profile.expect("profile"))
                    .expect("profile parses");
                assert_eq!((node.name.as_str(), node.total_ns), ("worker", 3000));
            }
            other => panic!("wrong variant {other:?}"),
        }
        // Profile-less stats (no profiler requested) round-trip too.
        let bare = WorkerResponse::Stats {
            jobs: 0,
            train_s: 0.0,
            hw_s: 0.0,
            panics: 0,
            migrants: 0,
            profile: None,
        };
        let wire = Json::parse(&bare.to_json().to_string()).unwrap();
        match WorkerResponse::from_json(&wire).unwrap() {
            WorkerResponse::Stats { profile, .. } => assert!(profile.is_none()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn malformed_frames_are_protocol_errors() {
        for bad in [
            Json::object(),
            Json::object().insert("req", "explode"),
            Json::object().insert("req", "evaluate").insert("id", 1),
            Json::object().insert("resp", "nope"),
            Json::object().insert("resp", "evaluated").insert("id", 1),
        ] {
            let req_err = CoordinatorRequest::from_json(&bad).is_err();
            let resp_err = WorkerResponse::from_json(&bad).is_err();
            assert!(req_err && resp_err, "accepted {bad}");
        }
    }

    #[test]
    fn target_codec_covers_the_catalog() {
        for t in [
            HwTarget::Fpga(FpgaDevice::arria10_gx1150(4)),
            HwTarget::Fpga(FpgaDevice::stratix10_2800(2)),
            HwTarget::Gpu(GpuDevice::quadro_m5000()),
            HwTarget::Gpu(GpuDevice::titan_x()),
            HwTarget::Gpu(GpuDevice::radeon_vii()),
            HwTarget::Cpu(CpuDevice::xeon_22c()),
            HwTarget::Cpu(CpuDevice::desktop_8c()),
        ] {
            let wire = target_to_json(&t).unwrap();
            let back = target_from_json(&wire).unwrap();
            assert_eq!(back.device_name(), t.device_name());
            if let (HwTarget::Fpga(a), HwTarget::Fpga(b)) = (&t, &back) {
                assert_eq!(a.ddr.banks, b.ddr.banks);
            }
        }
        let custom = HwTarget::Fpga(FpgaDevice {
            name: "Bespoke".to_string(),
            ..FpgaDevice::arria10_gx1150(1)
        });
        assert!(target_to_json(&custom).is_err());
    }

    #[test]
    fn island_migrates_on_cadence_and_dedups_elites() {
        let setup = setup_payload(2);
        let mut island = Island::new(&setup, 0x5).expect("islands on");
        let evaluator = CodesignEvaluator::new(
            setup.train.clone(),
            setup.test.clone(),
            setup.trainer,
            setup.target.clone(),
            setup.seed,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let g1 = setup.space.sample(&mut rng);
        let m1 = evaluator.evaluate(&g1);
        island.observe(&g1, &m1);
        island.observe(&g1, &m1); // duplicate key must not double up
        let observed = island.elites.len();
        assert!(observed <= 1);

        assert!(island.step(&evaluator).is_empty(), "below cadence");
        let migrants = island.step(&evaluator);
        if !island.elites.is_empty() {
            assert!(migrants.len() <= setup.island_k);
            for (_, m) in &migrants {
                assert!(m.hw.is_feasible(), "only feasible migrants ship");
            }
        }
        assert_eq!(island.jobs_since, 0, "cadence counter reset");
    }

    #[test]
    fn islands_off_when_cadence_zero() {
        assert!(Island::new(&setup_payload(0), 0x5).is_none());
    }

    #[test]
    fn worker_session_serves_evaluate_loopback() {
        let server = WorkerServer::bind(
            "127.0.0.1:0",
            WorkerOptions::default(),
            Obs::disabled(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || server.run().unwrap());

        let mut conn = Conn::connect(&addr, Duration::from_secs(10), rt::net::DEFAULT_MAX_FRAME)
            .unwrap();
        conn.handshake_client(COORDINATOR_ROLE, Some(WORKER_ROLE)).unwrap();
        let setup = setup_payload(0);
        let stamp = 0x77;
        conn.send(
            &CoordinatorRequest::Setup(Box::new(setup.clone()), stamp)
                .to_json()
                .unwrap(),
        )
        .unwrap();
        match WorkerResponse::from_json(&conn.recv().unwrap()).unwrap() {
            WorkerResponse::Ready { stamp: s } => assert_eq!(s, stamp),
            other => panic!("expected ready, got {other:?}"),
        }

        let genome = setup.space.sample(&mut StdRng::seed_from_u64(1));
        conn.send(
            &CoordinatorRequest::Evaluate {
                id: 0,
                stamp,
                genome: genome.clone(),
            }
            .to_json()
            .unwrap(),
        )
        .unwrap();
        let (remote_m, events) =
            match WorkerResponse::from_json(&conn.recv().unwrap()).unwrap() {
                WorkerResponse::Evaluated {
                    id,
                    stamp: s,
                    measurement,
                    events,
                    ..
                } => {
                    assert_eq!((id, s), (0, stamp));
                    (measurement, events)
                }
                other => panic!("expected evaluated, got {other:?}"),
            };

        // The remote measurement matches a local evaluation exactly —
        // the property the dedup cache and byte-identity both rest on.
        let local = CodesignEvaluator::new(
            setup.train.clone(),
            setup.test.clone(),
            setup.trainer,
            setup.target.clone(),
            setup.seed,
        )
        .evaluate(&genome);
        assert_eq!(remote_m.accuracy, local.accuracy);
        assert_eq!(remote_m.params, local.params);
        // Evaluation-time span closes (train, hw_model) were captured
        // for replay.
        assert!(
            events.iter().any(|e| e.name == "train"),
            "expected a captured train span close, got {:?}",
            events.iter().map(|e| e.name).collect::<Vec<_>>()
        );

        // A mismatched stamp is fenced with a protocol error (the
        // session drops; the worker keeps serving).
        conn.send(
            &CoordinatorRequest::Evaluate {
                id: 1,
                stamp: stamp + 1,
                genome: genome.clone(),
            }
            .to_json()
            .unwrap(),
        )
        .unwrap();
        assert!(conn.recv().is_err(), "stale-stamp job must not be answered");

        // Reconnect and kill: the worker exits its accept loop.
        let mut conn2 =
            Conn::connect(&addr, Duration::from_secs(10), rt::net::DEFAULT_MAX_FRAME).unwrap();
        conn2.handshake_client(COORDINATOR_ROLE, Some(WORKER_ROLE)).unwrap();
        conn2.send(&CoordinatorRequest::KillAll.to_json().unwrap()).unwrap();
        match WorkerResponse::from_json(&conn2.recv().unwrap()).unwrap() {
            WorkerResponse::Bye => {}
            other => panic!("expected bye, got {other:?}"),
        }
        handle.join().unwrap();
    }

    #[test]
    fn addr_salt_distinguishes_addresses() {
        assert_ne!(addr_salt("127.0.0.1:7001"), addr_salt("127.0.0.1:7002"));
        assert_eq!(addr_salt("a:1"), addr_salt("a:1"));
    }
}
