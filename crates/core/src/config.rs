//! Configuration-file front end.
//!
//! The ECAD flow's entry point is a dataset CSV plus "a configuration
//! file ... containing information on (a) the general NNA structure
//! ... (b) Hardware target including reconfigurable hardware device
//! type, DSP count, memory size ... (c) optimization targets such as
//! accuracy, throughput, latency" (§III). This module parses that file —
//! a small INI dialect, hand-rolled to avoid a dependency — into a
//! [`FlowConfig`].
//!
//! ```ini
//! ; comments start with ; or #
//! [nna]
//! max_layers = 4
//! max_neurons = 512
//!
//! [hardware]
//! target = fpga          ; fpga | gpu
//! device = arria10       ; arria10 | stratix10 | m5000 | titanx | radeonvii
//! ddr_banks = 1
//!
//! [optimization]
//! objectives = accuracy, log_throughput
//! weights = 1.0, 0.08
//! evaluations = 200
//! population = 16
//! seed = 7
//! ```
//!
//! Unspecified keys fall back to defaults, so the minimal configuration
//! is an empty file.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ecad_hw::fpga::FpgaDevice;
use ecad_hw::gpu::GpuDevice;
use ecad_mlp::{OptimizerKind, TrainConfig};

use crate::engine::EvolutionConfig;
use crate::fitness::Objective;
use crate::space::{HwFamily, SearchSpace};
use crate::workers::HwTarget;

/// Error produced while parsing a configuration file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A line was not a section header, key=value pair, or comment.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A value could not be parsed for its key.
    BadValue {
        /// The key.
        key: String,
        /// The raw value.
        value: String,
        /// 1-based line number the key was set on (0 when the value
        /// did not come from a file line, e.g. a CLI override).
        line: usize,
    },
    /// An unknown hardware target kind (`target =` accepts `fpga`,
    /// `gpu`, or `cpu`).
    UnknownTarget {
        /// The raw value.
        value: String,
        /// 1-based line number.
        line: usize,
    },
    /// An unknown device name.
    UnknownDevice(String),
    /// Objectives and weights lists have different lengths.
    ObjectiveWeightMismatch {
        /// Number of objectives listed.
        objectives: usize,
        /// Number of weights listed.
        weights: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, text } => {
                write!(f, "line {line}: cannot parse {text:?}")
            }
            ConfigError::BadValue { key, value, line } => {
                if *line > 0 {
                    write!(f, "line {line}: invalid value {value:?} for key {key:?}")
                } else {
                    write!(f, "invalid value {value:?} for key {key:?}")
                }
            }
            ConfigError::UnknownTarget { value, line } => {
                write!(
                    f,
                    "line {line}: unknown target {value:?} (expected fpga, gpu, or cpu)"
                )
            }
            ConfigError::UnknownDevice(d) => write!(
                f,
                "unknown device {d:?} (expected arria10, stratix10, m5000, titanx, radeonvii, xeon, or desktop)"
            ),
            ConfigError::ObjectiveWeightMismatch { objectives, weights } => {
                write!(f, "{objectives} objectives but {weights} weights")
            }
        }
    }
}

impl Error for ConfigError {}

/// A parsed value plus the 1-based line it was set on, so downstream
/// validation errors can point back into the file.
type SpannedSection = HashMap<String, (String, usize)>;

/// Parses INI text into `section -> key -> (value, line)`. Keys before
/// any section header land in the `""` section.
fn parse_ini_spanned(text: &str) -> Result<HashMap<String, SpannedSection>, ConfigError> {
    let mut out: HashMap<String, SpannedSection> = HashMap::new();
    let mut section = String::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            section = name.trim().to_ascii_lowercase();
            out.entry(section.clone()).or_default();
            continue;
        }
        match line.split_once('=') {
            Some((k, v)) => {
                out.entry(section.clone())
                    .or_default()
                    .insert(k.trim().to_ascii_lowercase(), (v.trim().to_string(), i + 1));
            }
            None => {
                return Err(ConfigError::Syntax {
                    line: i + 1,
                    text: raw.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// Parses INI text into `section -> key -> value`. Keys before any
/// section header land in the `""` section.
///
/// # Errors
///
/// Returns [`ConfigError::Syntax`] for malformed lines.
pub fn parse_ini(text: &str) -> Result<HashMap<String, HashMap<String, String>>, ConfigError> {
    Ok(parse_ini_spanned(text)?
        .into_iter()
        .map(|(section, kv)| {
            (
                section,
                kv.into_iter().map(|(k, (v, _))| (k, v)).collect(),
            )
        })
        .collect())
}

/// A fully resolved flow configuration.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Search-space bounds.
    pub space: SearchSpace,
    /// Hardware target (device model).
    pub target: HwTarget,
    /// Evolution hyperparameters.
    pub evolution: EvolutionConfig,
    /// Per-candidate training configuration.
    pub trainer: TrainConfig,
    /// Optimization objectives.
    pub objectives: Vec<Objective>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            space: SearchSpace::fpga_default(),
            target: HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
            evolution: EvolutionConfig::small(),
            trainer: TrainConfig::fast(),
            objectives: vec![Objective::maximize("accuracy")],
        }
    }
}

fn get_parse<T: std::str::FromStr>(
    section: &SpannedSection,
    key: &str,
    default: T,
) -> Result<T, ConfigError> {
    match section.get(key) {
        None => Ok(default),
        Some((v, line)) => v.parse().map_err(|_| ConfigError::BadValue {
            key: key.to_string(),
            value: v.clone(),
            line: *line,
        }),
    }
}

impl FlowConfig {
    /// Parses a configuration file's text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] on syntax errors, unparseable values,
    /// unknown devices, or mismatched objective/weight lists.
    pub fn from_ini(text: &str) -> Result<Self, ConfigError> {
        let ini = parse_ini_spanned(text)?;
        let empty = SpannedSection::new();
        let nna = ini.get("nna").unwrap_or(&empty);
        let hw = ini.get("hardware").unwrap_or(&empty);
        let opt = ini.get("optimization").unwrap_or(&empty);

        // Hardware target first: it decides the space family. An
        // unrecognized kind is an error, not a silent FPGA default.
        let target_kind = match hw.get("target") {
            None => "fpga",
            Some((v, line)) => match v.as_str() {
                "fpga" | "gpu" | "cpu" => v.as_str(),
                other => {
                    return Err(ConfigError::UnknownTarget {
                        value: other.to_string(),
                        line: *line,
                    })
                }
            },
        };
        let ddr_banks: u32 = get_parse(hw, "ddr_banks", 1)?;
        let device_name = hw
            .get("device")
            .map(|(v, _)| v.as_str())
            .unwrap_or(match target_kind {
                "gpu" => "titanx",
                "cpu" => "xeon",
                _ => "arria10",
            });
        let target = match device_name {
            "arria10" => HwTarget::Fpga(FpgaDevice::arria10_gx1150(ddr_banks)),
            "stratix10" => HwTarget::Fpga(FpgaDevice::stratix10_2800(ddr_banks)),
            "m5000" => HwTarget::Gpu(GpuDevice::quadro_m5000()),
            "titanx" => HwTarget::Gpu(GpuDevice::titan_x()),
            "radeonvii" => HwTarget::Gpu(GpuDevice::radeon_vii()),
            "xeon" => HwTarget::Cpu(ecad_hw::cpu::CpuDevice::xeon_22c()),
            "desktop" => HwTarget::Cpu(ecad_hw::cpu::CpuDevice::desktop_8c()),
            other => return Err(ConfigError::UnknownDevice(other.to_string())),
        };
        let family = match target {
            HwTarget::Fpga(_) => HwFamily::Fpga,
            HwTarget::Gpu(_) | HwTarget::Cpu(_) => HwFamily::Gpu,
        };
        let mut space = match family {
            HwFamily::Fpga => SearchSpace::fpga_default(),
            HwFamily::Gpu => SearchSpace::gpu_default(),
        };
        space.min_layers = get_parse(nna, "min_layers", space.min_layers)?;
        space.max_layers = get_parse(nna, "max_layers", space.max_layers)?;
        space.min_neurons = get_parse(nna, "min_neurons", space.min_neurons)?;
        space.max_neurons = get_parse(nna, "max_neurons", space.max_neurons)?;

        let mut evolution = EvolutionConfig::small();
        evolution.population = get_parse(opt, "population", evolution.population)?;
        evolution.evaluations = get_parse(opt, "evaluations", evolution.evaluations)?;
        evolution.tournament = get_parse(opt, "tournament", evolution.tournament)?;
        evolution.crossover_rate = get_parse(opt, "crossover_rate", evolution.crossover_rate)?;
        evolution.seed = get_parse(opt, "seed", evolution.seed)?;
        evolution.threads = get_parse(opt, "threads", evolution.threads)?;
        if let Some((sel, line)) = opt.get("selection") {
            evolution.selection = match sel.as_str() {
                "scalar" | "weighted" => crate::engine::SelectionMode::WeightedScalar,
                "nsga2" => crate::engine::SelectionMode::Nsga2,
                other => {
                    return Err(ConfigError::BadValue {
                        key: "selection".to_string(),
                        value: other.to_string(),
                        line: *line,
                    })
                }
            };
        }

        // Fault tolerance: a per-evaluation deadline (seconds; 0 or
        // absent disables it), the transient-failure retry budget, and
        // the base backoff between retries.
        if let Some((v, line)) = opt.get("eval_timeout_s") {
            let secs: f64 = v.parse().map_err(|_| ConfigError::BadValue {
                key: "eval_timeout_s".to_string(),
                value: v.clone(),
                line: *line,
            })?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(ConfigError::BadValue {
                    key: "eval_timeout_s".to_string(),
                    value: v.clone(),
                    line: *line,
                });
            }
            evolution.eval_timeout = if secs > 0.0 {
                Some(std::time::Duration::from_secs_f64(secs))
            } else {
                None
            };
        }
        evolution.max_retries = get_parse(opt, "max_retries", evolution.max_retries)?;

        // Search-observatory analytics: the epoch cadence (evaluations
        // per population snapshot; 0 or absent means one population),
        // the stall-detector window in epochs, and its flatness epsilon.
        evolution.analytics.epoch_size =
            get_parse(opt, "epoch_size", evolution.analytics.epoch_size)?;
        evolution.analytics.stall_window =
            get_parse(opt, "stall_window", evolution.analytics.stall_window)?;
        if let Some((v, line)) = opt.get("stall_epsilon") {
            let eps: f64 = v.parse().map_err(|_| ConfigError::BadValue {
                key: "stall_epsilon".to_string(),
                value: v.clone(),
                line: *line,
            })?;
            if !eps.is_finite() || eps < 0.0 {
                return Err(ConfigError::BadValue {
                    key: "stall_epsilon".to_string(),
                    value: v.clone(),
                    line: *line,
                });
            }
            evolution.analytics.stall_epsilon = eps;
        }
        let backoff_ms: u64 = get_parse(
            opt,
            "retry_backoff_ms",
            evolution.retry_backoff.as_millis() as u64,
        )?;
        evolution.retry_backoff = std::time::Duration::from_millis(backoff_ms);

        let mut trainer = TrainConfig::fast();
        trainer.epochs = get_parse(opt, "epochs", trainer.epochs)?;
        trainer.batch_size = get_parse(opt, "batch_size", trainer.batch_size)?;
        if let Some((lr, line)) = opt.get("learning_rate") {
            let lr: f32 = lr.parse().map_err(|_| ConfigError::BadValue {
                key: "learning_rate".to_string(),
                value: lr.clone(),
                line: *line,
            })?;
            trainer.optimizer = OptimizerKind::Adam { lr };
        }

        // Objectives: comma-separated names; optional parallel weights;
        // a leading '-' requests minimization (e.g. `-latency`).
        let names: Vec<String> = opt
            .get("objectives")
            .map(|(s, _)| s.split(',').map(|x| x.trim().to_string()).collect())
            .unwrap_or_else(|| vec!["accuracy".to_string()]);
        let weights: Vec<f64> = match opt.get("weights") {
            None => vec![1.0; names.len()],
            Some((w, line)) => w
                .split(',')
                .map(|x| {
                    x.trim().parse().map_err(|_| ConfigError::BadValue {
                        key: "weights".to_string(),
                        value: x.trim().to_string(),
                        line: *line,
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        if names.len() != weights.len() {
            return Err(ConfigError::ObjectiveWeightMismatch {
                objectives: names.len(),
                weights: weights.len(),
            });
        }
        let objectives = names
            .iter()
            .zip(&weights)
            .map(|(n, &w)| {
                let (name, maximize) = match n.strip_prefix('-') {
                    Some(stripped) => (stripped.to_string(), false),
                    None => (n.clone(), true),
                };
                Objective {
                    name,
                    weight: w,
                    maximize,
                }
            })
            .collect();

        Ok(Self {
            space,
            target,
            evolution,
            trainer,
            objectives,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_config_gives_defaults() {
        let c = FlowConfig::from_ini("").unwrap();
        assert!(matches!(c.target, HwTarget::Fpga(_)));
        assert_eq!(c.evolution.population, EvolutionConfig::small().population);
        assert_eq!(c.objectives.len(), 1);
        assert_eq!(c.objectives[0].name, "accuracy");
    }

    #[test]
    fn parse_ini_sections_and_comments() {
        let ini = parse_ini("; top\n[a]\nx = 1\n# c\n[b]\ny = hello world\n").unwrap();
        assert_eq!(ini["a"]["x"], "1");
        assert_eq!(ini["b"]["y"], "hello world");
    }

    #[test]
    fn parse_ini_rejects_garbage() {
        let err = parse_ini("[a]\nnot a pair\n").unwrap_err();
        assert!(matches!(err, ConfigError::Syntax { line: 2, .. }));
    }

    #[test]
    fn full_config_round_trip() {
        let text = "
[nna]
max_layers = 2
max_neurons = 64

[hardware]
target = fpga
device = stratix10
ddr_banks = 4

[optimization]
objectives = accuracy, log_throughput
weights = 1.0, 0.08
evaluations = 77
population = 9
seed = 123
threads = 2
epochs = 10
";
        let c = FlowConfig::from_ini(text).unwrap();
        assert_eq!(c.space.max_layers, 2);
        assert_eq!(c.space.max_neurons, 64);
        match &c.target {
            HwTarget::Fpga(d) => {
                assert_eq!(d.name, "Stratix 10 2800");
                assert_eq!(d.ddr.banks, 4);
            }
            other => panic!("wrong target {other:?}"),
        }
        assert_eq!(c.evolution.evaluations, 77);
        assert_eq!(c.evolution.population, 9);
        assert_eq!(c.evolution.seed, 123);
        assert_eq!(c.trainer.epochs, 10);
        assert_eq!(c.objectives.len(), 2);
        assert_eq!(c.objectives[1].name, "log_throughput");
        assert!((c.objectives[1].weight - 0.08).abs() < 1e-12);
    }

    #[test]
    fn gpu_target_selects_gpu_space() {
        let c = FlowConfig::from_ini("[hardware]\ntarget = gpu\ndevice = m5000\n").unwrap();
        assert!(matches!(c.target, HwTarget::Gpu(_)));
        assert_eq!(c.space.family, HwFamily::Gpu);
    }

    #[test]
    fn gpu_target_defaults_to_titanx() {
        let c = FlowConfig::from_ini("[hardware]\ntarget = gpu\n").unwrap();
        match c.target {
            HwTarget::Gpu(d) => assert_eq!(d.name, "Titan X"),
            other => panic!("wrong target {other:?}"),
        }
    }

    #[test]
    fn minimization_prefix() {
        let c = FlowConfig::from_ini("[optimization]\nobjectives = accuracy, -latency\n").unwrap();
        assert!(c.objectives[0].maximize);
        assert!(!c.objectives[1].maximize);
        assert_eq!(c.objectives[1].name, "latency");
    }

    #[test]
    fn cpu_target_parses() {
        let c = FlowConfig::from_ini("[hardware]\ntarget = cpu\n").unwrap();
        match &c.target {
            HwTarget::Cpu(d) => assert_eq!(d.name, "Xeon 22-core"),
            other => panic!("wrong target {other:?}"),
        }
        assert_eq!(c.space.family, HwFamily::Gpu);
        let d = FlowConfig::from_ini("[hardware]\ntarget = cpu\ndevice = desktop\n").unwrap();
        assert!(matches!(d.target, HwTarget::Cpu(_)));
    }

    #[test]
    fn unknown_device_is_error() {
        let err = FlowConfig::from_ini("[hardware]\ndevice = tpu\n").unwrap_err();
        assert_eq!(err, ConfigError::UnknownDevice("tpu".to_string()));
    }

    #[test]
    fn bad_numeric_value_is_error() {
        let err = FlowConfig::from_ini("[optimization]\npopulation = many\n").unwrap_err();
        assert!(matches!(err, ConfigError::BadValue { .. }));
    }

    #[test]
    fn bad_value_reports_its_line() {
        let err =
            FlowConfig::from_ini("[optimization]\nseed = 1\npopulation = many\n").unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadValue {
                key: "population".to_string(),
                value: "many".to_string(),
                line: 3,
            }
        );
        assert!(err.to_string().starts_with("line 3:"));
    }

    #[test]
    fn unknown_target_kind_is_error() {
        let err = FlowConfig::from_ini("[hardware]\n\ntarget = asic\n").unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownTarget {
                value: "asic".to_string(),
                line: 3,
            }
        );
        assert!(err.to_string().contains("expected fpga, gpu, or cpu"));
    }

    #[test]
    fn fault_tolerance_keys_parse() {
        let c = FlowConfig::from_ini(
            "[optimization]\neval_timeout_s = 2.5\nmax_retries = 7\nretry_backoff_ms = 40\n",
        )
        .unwrap();
        assert_eq!(
            c.evolution.eval_timeout,
            Some(std::time::Duration::from_secs_f64(2.5))
        );
        assert_eq!(c.evolution.max_retries, 7);
        assert_eq!(
            c.evolution.retry_backoff,
            std::time::Duration::from_millis(40)
        );

        // 0 disables the deadline; negatives are rejected with a line.
        let off = FlowConfig::from_ini("[optimization]\neval_timeout_s = 0\n").unwrap();
        assert_eq!(off.evolution.eval_timeout, None);
        let err = FlowConfig::from_ini("[optimization]\neval_timeout_s = -1\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::BadValue { ref key, line: 2, .. } if key == "eval_timeout_s")
        );
    }

    #[test]
    fn analytics_keys_parse() {
        let c = FlowConfig::from_ini(
            "[optimization]\nepoch_size = 25\nstall_window = 3\nstall_epsilon = 0.001\n",
        )
        .unwrap();
        assert_eq!(c.evolution.analytics.epoch_size, 25);
        assert_eq!(c.evolution.analytics.stall_window, 3);
        assert!((c.evolution.analytics.stall_epsilon - 0.001).abs() < 1e-12);

        // Defaults when absent.
        let d = FlowConfig::from_ini("").unwrap();
        assert_eq!(d.evolution.analytics, crate::analytics::AnalyticsConfig::default());

        // Negative epsilon is rejected with its line.
        let err = FlowConfig::from_ini("[optimization]\nstall_epsilon = -1\n").unwrap_err();
        assert!(
            matches!(err, ConfigError::BadValue { ref key, line: 2, .. } if key == "stall_epsilon")
        );
    }

    #[test]
    fn weight_count_mismatch_is_error() {
        let err =
            FlowConfig::from_ini("[optimization]\nobjectives = a, b\nweights = 1.0\n").unwrap_err();
        assert!(matches!(err, ConfigError::ObjectiveWeightMismatch { .. }));
    }

    #[test]
    fn learning_rate_sets_adam() {
        let c = FlowConfig::from_ini("[optimization]\nlearning_rate = 0.01\n").unwrap();
        assert!(
            matches!(c.trainer.optimizer, OptimizerKind::Adam { lr } if (lr - 0.01).abs() < 1e-9)
        );
    }
}
