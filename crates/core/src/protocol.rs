//! The master loop's dispatch bookkeeping, extracted into a pure state
//! machine.
//!
//! [`DispatchLedger`] owns the three structures the engine's master
//! loop threads through every scheduling decision: the in-flight map
//! (id → job + optional deadline), the stale-id set (timed-out
//! dispatches whose late results must be dropped), and the retry queue
//! (jobs waiting out a backoff). Extracting them serves two purposes:
//!
//! * the engine's hot loop reads as protocol operations (`dispatch`,
//!   `take_result`, `expire`, `next_wake`) instead of raw map/set/queue
//!   manipulation, and
//! * the protocol becomes checkable in isolation: the ledger is generic
//!   over its clock type `T: Ord + Copy`, so `rt::sched` model checks
//!   drive it under virtual-time ticks (`u64`) while the engine uses
//!   [`std::time::Instant`] — the exact same transition code in both.
//!
//! [`ProtocolFaults`] deliberately re-introduces two historical bug
//! classes (accepting stale results, dropping queued retries from
//! checkpoints) so the model-check suites can assert the checker
//! *finds* them; production paths always run with faults disabled.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A dispatched unit of work: the caller's payload plus the attempt
/// number (0 = first try) the protocol tracks for retry budgeting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job<P> {
    /// Caller-owned data carried through the ledger untouched.
    pub payload: P,
    /// 0 for a first dispatch, incremented per retry.
    pub attempt: usize,
}

/// How [`DispatchLedger::take_result`] classified an arriving result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResultClass<P> {
    /// The id is in flight: here is its job, now removed from the
    /// ledger. The caller decides retry vs. finalize.
    Fresh(Job<P>),
    /// The id timed out earlier; its verdict was already decided and
    /// this late report must be dropped.
    Stale,
    /// The id was never dispatched or was already resolved — a
    /// protocol violation on the caller's side.
    Unknown,
}

/// Deliberate protocol mutations for the model-check mutation harness.
/// All-false (the [`Default`]) is the shipped behavior; each flag
/// re-creates a specific bug class the checker must be able to find.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolFaults {
    /// Skip the stale-set check in [`DispatchLedger::take_result`]:
    /// a late result for a timed-out dispatch classifies as
    /// [`ResultClass::Unknown`] instead of [`ResultClass::Stale`],
    /// modeling an engine that lost track of abandoned work.
    pub ignore_stale_results: bool,
    /// Omit the retry queue from [`DispatchLedger::pending_jobs`]:
    /// a checkpoint taken while a retry waits out its backoff silently
    /// loses that job.
    pub drop_retry_queue_from_pending: bool,
}

struct Entry<P, T> {
    payload: P,
    attempt: usize,
    deadline: Option<T>,
}

/// Dispatch/deadline/retry/stale bookkeeping for a master loop.
///
/// `P` is the caller's per-job payload (the engine uses
/// `(CandidateGenome, OperatorKind)`); `T` is the clock — any totally
/// ordered `Copy` type, so both `Instant` and virtual-time ticks work.
///
/// Iteration order everywhere is deterministic: the in-flight map and
/// stale set are B-trees keyed by id, and the retry queue preserves
/// insertion order (FIFO gated on readiness, matching the engine's
/// historical `VecDeque` semantics).
pub struct DispatchLedger<P, T> {
    in_flight: BTreeMap<u64, Entry<P, T>>,
    stale: BTreeSet<u64>,
    retry_q: VecDeque<(T, usize, P)>,
    faults: ProtocolFaults,
}

impl<P, T: Ord + Copy> DispatchLedger<P, T> {
    /// An empty ledger with shipped (fault-free) behavior.
    pub fn new() -> Self {
        Self::with_faults(ProtocolFaults::default())
    }

    /// An empty ledger with the given fault mutations — test-only in
    /// spirit, but kept callable so integration suites can reach it.
    pub fn with_faults(faults: ProtocolFaults) -> Self {
        DispatchLedger {
            in_flight: BTreeMap::new(),
            stale: BTreeSet::new(),
            retry_q: VecDeque::new(),
            faults,
        }
    }

    /// Records `id` as in flight. `deadline` is the instant after
    /// which [`DispatchLedger::expire`] may abandon it; `None` means
    /// the dispatch can wait forever.
    ///
    /// # Panics
    ///
    /// If `id` is already in flight — ids must be unique for the
    /// stale-drop protocol to be sound.
    pub fn dispatch(&mut self, id: u64, payload: P, attempt: usize, deadline: Option<T>) {
        let prior = self.in_flight.insert(
            id,
            Entry {
                payload,
                attempt,
                deadline,
            },
        );
        assert!(prior.is_none(), "dispatch id {id} reused while in flight");
    }

    /// Classifies an arriving result for `id` and removes the
    /// corresponding bookkeeping.
    pub fn take_result(&mut self, id: u64) -> ResultClass<P> {
        if !self.faults.ignore_stale_results && self.stale.remove(&id) {
            return ResultClass::Stale;
        }
        match self.in_flight.remove(&id) {
            Some(e) => ResultClass::Fresh(Job {
                payload: e.payload,
                attempt: e.attempt,
            }),
            None => ResultClass::Unknown,
        }
    }

    /// Queues a job to be re-dispatched once the clock reaches
    /// `ready`. FIFO across entries: an earlier-queued retry is always
    /// offered first, even if a later one became ready sooner.
    pub fn schedule_retry(&mut self, ready: T, attempt: usize, payload: P) {
        self.retry_q.push_back((ready, attempt, payload));
    }

    /// Pops the front retry if its backoff has elapsed at `now`.
    pub fn pop_ready_retry(&mut self, now: T) -> Option<(usize, P)> {
        if self.retry_q.front().is_some_and(|&(ready, _, _)| ready <= now) {
            let (_, attempt, payload) = self.retry_q.pop_front().expect("front checked");
            Some((attempt, payload))
        } else {
            None
        }
    }

    /// Abandons every in-flight dispatch whose deadline has passed at
    /// `now`, marking each id stale so its late result (if one ever
    /// arrives) is dropped. Returns the abandoned jobs in ascending id
    /// order; the caller decides retry vs. final verdict per job.
    pub fn expire(&mut self, now: T) -> Vec<(u64, Job<P>)> {
        let overdue: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|(_, e)| e.deadline.is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect();
        overdue
            .into_iter()
            .map(|id| {
                let e = self.in_flight.remove(&id).expect("overdue id in flight");
                self.stale.insert(id);
                (
                    id,
                    Job {
                        payload: e.payload,
                        attempt: e.attempt,
                    },
                )
            })
            .collect()
    }

    /// The earliest instant anything needs attention: the soonest
    /// in-flight deadline or retry-ready time. `None` when the caller
    /// can block indefinitely on the result channel.
    pub fn next_wake(&self) -> Option<T> {
        self.in_flight
            .values()
            .filter_map(|e| e.deadline)
            .chain(self.retry_q.iter().map(|&(ready, _, _)| ready))
            .min()
    }

    /// Number of dispatches awaiting results.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// True when no work is in flight and no retry is queued — stale
    /// ids don't count, since their verdicts are already decided.
    pub fn quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.retry_q.is_empty()
    }

    /// Every job a checkpoint must preserve: in-flight jobs in
    /// ascending id order, then queued retries in FIFO order, as
    /// `(attempt, payload)` pairs.
    pub fn pending_jobs(&self) -> Vec<(usize, &P)> {
        let mut out: Vec<(usize, &P)> = self
            .in_flight
            .values()
            .map(|e| (e.attempt, &e.payload))
            .collect();
        if !self.faults.drop_retry_queue_from_pending {
            out.extend(self.retry_q.iter().map(|(_, attempt, p)| (*attempt, p)));
        }
        out
    }
}

impl<P, T: Ord + Copy> Default for DispatchLedger<P, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_result_round_trip() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        ledger.dispatch(7, "job", 0, Some(100));
        assert_eq!(ledger.in_flight_len(), 1);
        assert!(!ledger.quiescent());
        match ledger.take_result(7) {
            ResultClass::Fresh(job) => {
                assert_eq!(job.payload, "job");
                assert_eq!(job.attempt, 0);
            }
            other => panic!("expected fresh, got {other:?}"),
        }
        assert!(ledger.quiescent());
    }

    #[test]
    fn expired_dispatch_goes_stale_exactly_once() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        ledger.dispatch(1, "slow", 0, Some(50));
        ledger.dispatch(2, "fast", 0, Some(500));
        assert!(ledger.expire(10).is_empty());
        let expired = ledger.expire(50);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].0, 1);
        // The late result for the abandoned id drops as stale — once.
        assert_eq!(ledger.take_result(1), ResultClass::Stale);
        assert_eq!(ledger.take_result(1), ResultClass::Unknown);
        // The other dispatch is unaffected.
        assert!(matches!(ledger.take_result(2), ResultClass::Fresh(_)));
    }

    #[test]
    fn retry_queue_is_fifo_gated_on_readiness() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        ledger.schedule_retry(100, 1, "first");
        ledger.schedule_retry(10, 2, "second");
        // "second" is ready at t=10, but "first" heads the queue.
        assert_eq!(ledger.pop_ready_retry(99), None);
        assert_eq!(ledger.pop_ready_retry(100), Some((1, "first")));
        assert_eq!(ledger.pop_ready_retry(100), Some((2, "second")));
        assert_eq!(ledger.pop_ready_retry(100), None);
    }

    #[test]
    fn next_wake_spans_deadlines_and_retries() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        assert_eq!(ledger.next_wake(), None);
        ledger.dispatch(1, "a", 0, Some(300));
        ledger.dispatch(2, "b", 0, None);
        assert_eq!(ledger.next_wake(), Some(300));
        ledger.schedule_retry(120, 1, "r");
        assert_eq!(ledger.next_wake(), Some(120));
    }

    #[test]
    fn pending_jobs_cover_in_flight_and_retries() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        ledger.dispatch(5, "b", 0, None);
        ledger.dispatch(3, "a", 1, None);
        ledger.schedule_retry(10, 2, "r");
        let pending: Vec<(usize, &str)> = ledger
            .pending_jobs()
            .into_iter()
            .map(|(attempt, p)| (attempt, *p))
            .collect();
        assert_eq!(pending, vec![(1, "a"), (0, "b"), (2, "r")]);
    }

    #[test]
    fn fault_ignore_stale_misclassifies_late_result() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::with_faults(ProtocolFaults {
            ignore_stale_results: true,
            ..Default::default()
        });
        ledger.dispatch(1, "slow", 0, Some(5));
        ledger.expire(5);
        // Shipped behavior would say Stale; the mutant loses track.
        assert_eq!(ledger.take_result(1), ResultClass::Unknown);
    }

    #[test]
    fn fault_drop_retry_queue_loses_pending_work() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::with_faults(ProtocolFaults {
            drop_retry_queue_from_pending: true,
            ..Default::default()
        });
        ledger.schedule_retry(10, 1, "r");
        assert!(ledger.pending_jobs().is_empty());
        assert!(!ledger.quiescent());
    }

    #[test]
    #[should_panic(expected = "reused while in flight")]
    fn duplicate_dispatch_id_panics() {
        let mut ledger: DispatchLedger<&str, u64> = DispatchLedger::new();
        ledger.dispatch(1, "a", 0, None);
        ledger.dispatch(1, "b", 0, None);
    }
}
