//! Property tests for checkpoint/resume determinism: a seeded
//! single-thread search halted at *any* cut point and resumed from its
//! checkpoint must reproduce the uninterrupted run's trace, fitness
//! sequence, and final population exactly — including across chained
//! interruptions (halt → resume → halt → resume).

use std::sync::Arc;

use ecad_core::checkpoint::{CheckpointPolicy, CheckpointState};
use ecad_core::engine::{Engine, EngineOutcome, EvolutionConfig, SelectionMode};
use ecad_core::fitness::ObjectiveSet;
use ecad_core::genome::CandidateGenome;
use ecad_core::measurement::{HwMetrics, Measurement};
use ecad_core::space::SearchSpace;
use ecad_core::workers::Evaluator;
use rt::prop_assert;

/// Fast deterministic evaluator: "accuracy" peaks as total neurons
/// approach 256, all timing fields constant so full measurements can be
/// compared across runs.
struct ToyEvaluator;

impl Evaluator for ToyEvaluator {
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
        let neurons = genome.nna.total_neurons() as f32;
        let accuracy = 1.0 - ((neurons - 256.0).abs() / 512.0).min(1.0);
        Measurement {
            accuracy,
            train_accuracy: accuracy,
            params: neurons as usize * 10,
            neurons: neurons as usize,
            hw: HwMetrics::Gpu {
                outputs_per_s: 1e6 / (1.0 + neurons as f64),
                efficiency: 0.01,
                latency_s: 1e-4,
                effective_gflops: 1.0,
                power_w: 50.0,
            },
            eval_time_s: 1e-6,
            train_time_s: 6e-7,
            hw_time_s: 4e-7,
        }
    }

    fn target_name(&self) -> String {
        "toy".to_string()
    }
}

const EVALS: usize = 16;

fn engine(seed: u64) -> Engine {
    let cfg = EvolutionConfig {
        population: 6,
        evaluations: EVALS,
        tournament: 2,
        crossover_rate: 0.5,
        seed,
        threads: 1,
        selection: SelectionMode::WeightedScalar,
        ..EvolutionConfig::small()
    };
    Engine::new(
        Arc::new(ToyEvaluator),
        SearchSpace::gpu_default(),
        ObjectiveSet::accuracy_only(),
        cfg,
    )
}

fn tmp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ecad-checkpoint-prop");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

fn fingerprint(o: &EngineOutcome) -> (Vec<String>, Vec<f64>, Vec<String>) {
    (
        o.trace.iter().map(|e| e.genome.describe()).collect(),
        o.trace.iter().map(|e| e.fitness).collect(),
        o.population.iter().map(|e| e.genome.describe()).collect(),
    )
}

rt::prop! {
    #![cases(24)]

    /// Halting at any cut point in the budget and resuming from the
    /// checkpoint written there converges to the same final state as
    /// never having been interrupted.
    fn resume_at_any_cut_matches_uninterrupted(cut in 1usize..EVALS, seed in 0u64..1_000) {
        let uninterrupted = engine(seed).run();

        let path = tmp_path(&format!("cut{cut}-seed{seed}.json"));
        let halted = engine(seed)
            .with_checkpoint(CheckpointPolicy::new(&path, 1))
            .with_halt_after(cut)
            .run();
        prop_assert!(halted.halted);
        prop_assert!(halted.stats.models_evaluated == cut);

        let state = CheckpointState::load(&path).expect("checkpoint loads");
        let resumed = engine(seed).resume(state).expect("checkpoint matches config");
        prop_assert!(!resumed.halted);
        prop_assert!(resumed.stats.models_evaluated == EVALS);
        prop_assert!(fingerprint(&resumed) == fingerprint(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }

    /// Chained interruptions: halt, resume into a second halt, resume
    /// again. Two cuts deep, the final state still matches the
    /// uninterrupted run, and the intermediate checkpoint's trace
    /// prefix agrees with it.
    fn double_interruption_still_converges(
        first in 1usize..(EVALS - 1),
        extra in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let second = (first + extra).min(EVALS - 1);
        let uninterrupted = engine(seed).run();

        let path = tmp_path(&format!("double-{first}-{second}-{seed}.json"));
        let a = engine(seed)
            .with_checkpoint(CheckpointPolicy::new(&path, 1))
            .with_halt_after(first)
            .run();
        prop_assert!(a.halted);

        let state = CheckpointState::load(&path).expect("first checkpoint loads");
        let b = engine(seed)
            .with_checkpoint(CheckpointPolicy::new(&path, 1))
            .with_halt_after(second)
            .resume(state)
            .expect("first checkpoint matches config");
        prop_assert!(b.halted);
        prop_assert!(b.stats.models_evaluated == second);
        let (names, _, _) = fingerprint(&b);
        let (full_names, _, _) = fingerprint(&uninterrupted);
        prop_assert!(names[..] == full_names[..second]);

        let state = CheckpointState::load(&path).expect("second checkpoint loads");
        let c = engine(seed).resume(state).expect("second checkpoint matches config");
        prop_assert!(!c.halted);
        prop_assert!(fingerprint(&c) == fingerprint(&uninterrupted));
        std::fs::remove_file(&path).ok();
    }
}
