//! End-to-end cluster tests over loopback TCP: a seeded single-worker
//! cluster run must be byte-identical to the local engine (the event
//! capture/replay contract), a coordinator that loses every worker must
//! degrade to local evaluation and still finish, and a worker killed
//! mid-search must cost only retries — never the result.

use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ecad_core::cluster::{ClusterOptions, WorkerOptions, WorkerServer};
use ecad_core::prelude::*;
use ecad_core::search::SearchResult;
use ecad_core::space::SearchSpace;
use ecad_dataset::synth::SyntheticSpec;
use ecad_dataset::Dataset;
use ecad_mlp::TrainConfig;
use rt::obs::{JsonlSink, Level, MetricValue, Obs};

/// A `Write` target shared with the test so the sink's output can be
/// inspected after the search drops it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Equality modulo wall-clock timing: `eval_time_s`/`train_time_s`/
/// `hw_time_s` are measured durations and legitimately differ between
/// any two runs, local or remote. Everything else is deterministic.
fn assert_same_measurement(a: &ecad_core::measurement::Measurement, b: &ecad_core::measurement::Measurement) {
    let mut a = a.clone();
    let mut b = b.clone();
    a.eval_time_s = 0.0;
    a.train_time_s = 0.0;
    a.hw_time_s = 0.0;
    b.eval_time_s = 0.0;
    b.train_time_s = 0.0;
    b.hw_time_s = 0.0;
    assert_eq!(a, b);
}

fn dataset() -> Dataset {
    SyntheticSpec::new("cluster-test", 120, 6, 2)
        .with_class_sep(3.0)
        .with_seed(0)
        .generate()
}

fn base_search(ds: &Dataset, obs: Obs) -> Search {
    let mut trainer = TrainConfig::fast();
    trainer.epochs = 6;
    Search::on_dataset(ds)
        .space(
            SearchSpace::fpga_default()
                .with_neurons(4, 24)
                .with_layers(1, 2),
        )
        .evaluations(14)
        .population(6)
        .seed(11)
        .threads(1)
        .trainer(trainer)
        // Zero backoff keeps the dispatch stream identical under
        // faults: a transient failure re-dispatches immediately, before
        // the master can breed (and therefore reorder) new candidates.
        .retry_backoff(Duration::ZERO)
        .obs(obs)
}

fn spawn_worker() -> (String, std::thread::JoinHandle<()>, Arc<std::sync::atomic::AtomicBool>) {
    let server = WorkerServer::bind("127.0.0.1:0", WorkerOptions::default(), Obs::disabled())
        .expect("bind loopback worker");
    let addr = server.local_addr().expect("bound addr").to_string();
    let stop = server.stop_handle();
    let handle = std::thread::spawn(move || server.run().expect("worker serve loop"));
    (addr, handle, stop)
}

fn traced(run: impl FnOnce(Obs) -> SearchResult) -> (String, SearchResult) {
    let buf = SharedBuf::default();
    let obs = Obs::builder()
        .sink(JsonlSink::to_writer(Level::Debug, Box::new(buf.clone())))
        .build();
    let result = run(obs.clone());
    obs.flush();
    (buf.contents(), result)
}

#[test]
fn single_worker_cluster_trace_is_byte_identical_to_local() {
    let ds = dataset();
    let (local_trace, local) = traced(|obs| base_search(&ds, obs).run());

    let (addr, worker, _stop) = spawn_worker();
    let (cluster_trace, cluster) = traced(|obs| {
        base_search(&ds, obs)
            .cluster(ClusterOptions {
                workers: vec![addr.clone()],
                net_timeout: Duration::from_secs(30),
                ..ClusterOptions::default()
            })
            .run()
    });
    worker.join().expect("worker exits after kill_all");

    assert!(!local_trace.is_empty());
    for (i, (l, c)) in local_trace.lines().zip(cluster_trace.lines()).enumerate() {
        if l != c {
            eprintln!("line {i}:\n  local:   {l}\n  cluster: {c}");
            break;
        }
    }
    eprintln!(
        "local {} lines, cluster {} lines",
        local_trace.lines().count(),
        cluster_trace.lines().count()
    );
    assert_eq!(
        local_trace, cluster_trace,
        "single-worker cluster JSONL must match the local engine byte-for-byte"
    );
    let (lb, cb) = (local.best().unwrap(), cluster.best().unwrap());
    assert_eq!(lb.genome.cache_key(), cb.genome.cache_key());
    assert_same_measurement(&lb.measurement, &cb.measurement);
    assert_eq!(local.stats().models_evaluated, cluster.stats().models_evaluated);
    assert_eq!(local.stats().cache_hits, cluster.stats().cache_hits);
    assert_eq!(cluster.stats().retry_count, 0, "healthy run needs no retries");
}

#[test]
fn served_cluster_run_exposes_worker_telemetry_and_keeps_trace_bytes() {
    let ds = dataset();
    let (local_trace, _) = traced(|obs| base_search(&ds, obs).run());

    let (addr, worker, _stop) = spawn_worker();
    let health = Arc::new(ecad_core::cluster::ClusterHealth::new(std::slice::from_ref(
        &addr,
    )));
    let buf = SharedBuf::default();
    let obs = Obs::builder()
        .sink(rt::obs::JsonlSink::to_writer(
            Level::Debug,
            Box::new(buf.clone()),
        ))
        .build();
    let handle = ecad_core::analytics::cluster_observatory(
        &obs,
        &ecad_core::analytics::StatusCell::new(),
        Arc::clone(&health),
    )
    .bind("127.0.0.1:0")
    .expect("bind cluster observatory");
    let http_addr = handle.addr();
    fn http_get(addr: std::net::SocketAddr, target: &str) -> String {
        use std::io::{Read as _, Write as _};
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut text = String::new();
        s.read_to_string(&mut text).unwrap();
        text.split_once("\r\n\r\n").map(|x| x.1.to_string()).unwrap()
    }

    // Scrape mid-run: once a few models are in, the labeled families
    // and the live worker entry must already be visible.
    let models = obs.counter("engine.models_evaluated");
    let scraper = std::thread::spawn(move || {
        while models.get() < 4 {
            std::thread::sleep(Duration::from_millis(5));
        }
        (
            http_get(http_addr, "/metrics"),
            http_get(http_addr, "/workers"),
        )
    });

    let result = base_search(&ds, obs.clone())
        .cluster(ClusterOptions {
            workers: vec![addr.clone()],
            stats_every: 2,
            net_timeout: Duration::from_secs(30),
            ..ClusterOptions::default()
        })
        .cluster_health(Arc::clone(&health))
        .run();
    obs.flush();
    worker.join().expect("worker exits after kill_all");

    let (mid_metrics, mid_workers) = scraper.join().expect("mid-run scrape");
    let label = format!("worker=\"{addr}\"");
    assert!(
        mid_metrics.contains("cluster_worker_jobs{") && mid_metrics.contains(&label),
        "mid-run /metrics must carry worker-labeled families:\n{mid_metrics}"
    );
    let mid = rt::json::Json::parse(&mid_workers).expect("/workers is json");
    assert_eq!(
        mid.get("workers")
            .and_then(rt::json::Json::as_array)
            .map(<[rt::json::Json]>::len),
        Some(1)
    );

    // Post-run the picture is deterministic: the final pre-Bye Stats
    // frame carries the worker's complete counters.
    let final_workers =
        rt::json::Json::parse(&http_get(http_addr, "/workers")).expect("/workers is json");
    let w = &final_workers
        .get("workers")
        .and_then(rt::json::Json::as_array)
        .unwrap()[0];
    assert_eq!(
        w.get("state").and_then(rt::json::Json::as_str),
        Some("connected")
    );
    assert_eq!(w.get("jobs").and_then(rt::json::Json::as_f64), Some(14.0));
    assert!(w.get("eval_p50_s").and_then(rt::json::Json::as_f64).unwrap() > 0.0);
    assert_eq!(final_workers.get("degraded"), Some(&rt::json::Json::Bool(false)));
    let final_metrics = http_get(http_addr, "/metrics");
    assert!(
        final_metrics.contains(&format!("cluster_worker_jobs{{{label}}} 14")),
        "worker-labeled jobs gauge must reach the budget:\n{final_metrics}"
    );
    handle.stop();

    // Per-worker latency lands in the run's stats, and serving +
    // scraping never perturbs the seeded trace.
    let stats = result.stats();
    assert_eq!(stats.worker_latency.len(), 1);
    assert_eq!(stats.worker_latency[0].addr, addr);
    assert_eq!(stats.worker_latency[0].jobs, 14);
    assert!(stats.worker_latency[0].p50_s > 0.0);
    assert_eq!(
        local_trace,
        buf.contents(),
        "served cluster JSONL must match the local engine byte-for-byte"
    );
}

#[test]
fn two_worker_profiles_graft_deterministically_under_ticks() {
    let ds = dataset();

    // Fixed addresses across both runs so the grafted subtree names
    // (`worker:<addr>`) are byte-stable; seeds-only budget so the
    // `id % workers` routing gives each worker the same job stream in
    // both runs.
    let run = |addrs: &[String]| -> String {
        let profiler = rt::prof::Profiler::with_root(rt::prof::ClockKind::Ticks, "search");
        let obs = Obs::builder().profiler(profiler.clone()).build();
        let mut trainer = TrainConfig::fast();
        trainer.epochs = 4;
        let result = Search::on_dataset(&ds)
            .space(
                SearchSpace::fpga_default()
                    .with_neurons(4, 24)
                    .with_layers(1, 2),
            )
            .evaluations(6)
            .population(6)
            .seed(11)
            .threads(1)
            .trainer(trainer)
            .obs(obs)
            .cluster(ClusterOptions {
                workers: addrs.to_vec(),
                stats_every: 2,
                net_timeout: Duration::from_secs(30),
                ..ClusterOptions::default()
            })
            .run();
        assert_eq!(result.stats().models_evaluated, 6);
        rt::prof::profile_to_json(profiler.clock(), &profiler.report()).pretty()
    };

    let (addr_a, worker_a, _stop_a) = spawn_worker();
    let (addr_b, worker_b, _stop_b) = spawn_worker();
    let addrs = vec![addr_a.clone(), addr_b.clone()];
    let first = run(&addrs);
    worker_a.join().expect("worker a exits");
    worker_b.join().expect("worker b exits");

    // Re-bind the *same* ports for the second run (free again after
    // the kill_all drained the first pair).
    let rebind = |addr: &str| {
        let server =
            WorkerServer::bind(addr, WorkerOptions::default(), Obs::disabled()).expect("rebind");
        std::thread::spawn(move || server.run().expect("worker serve loop"))
    };
    let worker_a = rebind(&addr_a);
    let worker_b = rebind(&addr_b);
    let second = run(&addrs);
    worker_a.join().expect("worker a exits");
    worker_b.join().expect("worker b exits");

    assert!(
        first.contains("worker:"),
        "master profile must graft worker subtrees:\n{first}"
    );
    for addr in &addrs {
        assert!(
            first.contains(&format!("worker:{addr}")),
            "each worker's subtree must appear under its own root:\n{first}"
        );
    }
    assert!(
        first.contains("\"evaluate\""),
        "worker subtrees carry the worker-side evaluate span:\n{first}"
    );
    assert_eq!(
        first, second,
        "two seeded ticks-clock cluster runs must export byte-identical master profiles"
    );
}

#[test]
fn coordinator_degrades_to_local_when_no_worker_is_reachable() {
    let ds = dataset();
    // Nothing listens here: every connect refuses, the reconnect budget
    // exhausts, the slot retires, and the engine must fall back to
    // local evaluation instead of dying.
    let (trace, result) = traced(|obs| {
        base_search(&ds, obs)
            .cluster(ClusterOptions {
                workers: vec!["127.0.0.1:9".to_string()],
                connect_retries: 2,
                reconnect_backoff: Duration::from_millis(5),
                ..ClusterOptions::default()
            })
            .run()
    });

    assert_eq!(
        result.stats().models_evaluated,
        14,
        "degraded run must still exhaust its budget"
    );
    assert!(result.stats().retry_count >= 1, "the lost dispatch retries");
    assert!(
        trace.contains("\"event\":\"cluster_degraded\""),
        "degradation must be announced"
    );
    assert!(trace.contains("\"event\":\"worker_lost\""));
    assert!(trace.contains("\"event\":\"search_end\""));
}

#[test]
fn worker_killed_mid_search_costs_retries_but_not_the_result() {
    let ds = dataset();
    let (_, fault_free) = traced(|obs| base_search(&ds, obs).run());

    let (addr, worker, stop) = spawn_worker();
    let options = ClusterOptions {
        workers: vec![addr],
        connect_retries: 2,
        reconnect_backoff: Duration::from_millis(5),
        ..ClusterOptions::default()
    };
    let obs = Obs::builder().build(); // metrics registry only
    let models = obs.counter("engine.models_evaluated");
    // Kill the worker once the search is demonstrably mid-flight.
    let killer = std::thread::spawn(move || {
        while models.get() < 4 {
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::Release);
    });
    let result = base_search(&ds, obs.clone()).cluster(options).obs(obs.clone()).run();
    killer.join().unwrap();
    worker.join().expect("stopped worker exits");

    assert_eq!(result.stats().models_evaluated, 14);
    assert!(
        result.stats().retry_count >= 1,
        "the in-flight job on the killed worker must have been retried"
    );
    let retries = obs
        .snapshot()
        .into_iter()
        .find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == "engine.retries" => Some(c),
            _ => None,
        })
        .unwrap_or(0);
    assert!(retries >= 1, "retry counter must record the recovery");
    // Deterministic pipeline of depth 1: the genome stream is the same
    // as the uninterrupted run's, so the winner must be too.
    let (ff, got) = (fault_free.best().unwrap(), result.best().unwrap());
    assert_eq!(ff.genome.cache_key(), got.genome.cache_key());
    assert_same_measurement(&ff.measurement, &got.measurement);
}

#[test]
fn checkpointed_cluster_run_resumes_to_the_uninterrupted_result() {
    let ds = dataset();
    let dir = std::env::temp_dir().join("ecad_cluster_ckpt_test");
    std::fs::create_dir_all(&dir).unwrap();
    let ck = dir.join("state.json");
    let single = |addr: String| ClusterOptions {
        workers: vec![addr],
        ..ClusterOptions::default()
    };

    let (addr, worker, _stop) = spawn_worker();
    let full = base_search(&ds, Obs::disabled()).cluster(single(addr)).run();
    worker.join().expect("worker exits after kill_all");

    // Halt mid-budget with a checkpoint attached: the snapshot must
    // cover the jobs still pending on the remote slot. Each leg gets a
    // fresh worker — the previous one exited on the drain's kill_all.
    let (addr, worker, _stop) = spawn_worker();
    let halted = base_search(&ds, Obs::disabled())
        .cluster(single(addr))
        .checkpoint(CheckpointPolicy::new(ck.clone(), 3))
        .halt_after(7)
        .run();
    worker.join().expect("worker exits after halt drain");
    assert!(halted.halted(), "halt_after must stop the run mid-budget");

    let state = CheckpointState::load(&ck).expect("checkpoint written on halt");
    let (addr, worker, _stop) = spawn_worker();
    let resumed = base_search(&ds, Obs::disabled())
        .cluster(single(addr))
        .checkpoint(CheckpointPolicy::new(ck.clone(), 3))
        .resume_from(state)
        .run();
    worker.join().expect("worker exits after kill_all");

    assert_eq!(
        resumed.stats().models_evaluated,
        full.stats().models_evaluated,
        "resume must finish exactly the interrupted budget"
    );
    let (fb, rb) = (full.best().unwrap(), resumed.best().unwrap());
    assert_eq!(fb.genome.cache_key(), rb.genome.cache_key());
    assert_same_measurement(&fb.measurement, &rb.measurement);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn island_migration_folds_elites_without_spending_budget() {
    let ds = dataset();
    let (addr, worker, _stop) = spawn_worker();
    let (trace, result) = traced(|obs| {
        base_search(&ds, obs)
            .cluster(ClusterOptions {
                workers: vec![addr.clone()],
                island_every: 3,
                island_k: 1,
                ..ClusterOptions::default()
            })
            .run()
    });
    worker.join().expect("worker exits after kill_all");

    assert_eq!(
        result.stats().models_evaluated,
        14,
        "migrants never consume coordinator budget"
    );
    assert!(
        trace.contains("\"event\":\"migration\""),
        "island elites must migrate into the coordinator trace"
    );
}
