//! Property tests for the engine's data structures: genome hashing,
//! fitness orientation, and Pareto algebra. Runs on `rt::check`.

use ecad_core::fitness::{Objective, ObjectiveSet};
use ecad_core::measurement::{HwMetrics, Measurement};
use ecad_core::pareto;
use ecad_core::space::SearchSpace;
use rt::check::vec;
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume};

fn meas(acc: f32, outs: f64, latency: f64) -> Measurement {
    Measurement {
        accuracy: acc,
        train_accuracy: acc,
        params: 100,
        neurons: 10,
        hw: HwMetrics::Gpu {
            outputs_per_s: outs,
            efficiency: 0.01,
            latency_s: latency,
            effective_gflops: 1.0,
            power_w: 50.0,
        },
        eval_time_s: 0.0,
        train_time_s: 0.0,
        hw_time_s: 0.0,
    }
}

rt::prop! {
    #![cases(64)]

    /// Cache keys are a function of the phenotype: equal genomes hash
    /// equal; sampled distinct genomes essentially never collide.
    fn cache_key_respects_equality(seed in 0u64..1000) {
        let space = SearchSpace::fpga_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.sample(&mut rng);
        let b = a.clone();
        prop_assert_eq!(a.cache_key(), b.cache_key());
        let c = space.sample(&mut rng);
        if c != a {
            prop_assert_ne!(a.cache_key(), c.cache_key(), "collision: {} vs {}", a, c);
        }
    }

    /// Genome descriptions are injective over sampled genomes (the
    /// cache hashes descriptions, so equal descriptions must mean equal
    /// genomes).
    fn describe_injective(seed in 0u64..500) {
        let space = SearchSpace::gpu_default();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = space.sample(&mut rng);
        let b = space.sample(&mut rng);
        prop_assert_eq!(a.describe() == b.describe(), a == b);
    }

    /// Scalar fitness is strictly increasing in accuracy for the
    /// accuracy objective, holding hardware fixed.
    fn scalar_monotone_in_accuracy(a in 0.0f32..1.0, b in 0.0f32..1.0) {
        prop_assume!((a - b).abs() > 1e-6);
        let set = ObjectiveSet::accuracy_only();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        prop_assert!(set.scalar(&meas(hi, 1e6, 1e-4)) > set.scalar(&meas(lo, 1e6, 1e-4)));
    }

    /// A minimizing objective reverses the comparison.
    fn minimize_reverses(lat_a in 1e-6f64..1e-1, lat_b in 1e-6f64..1e-1) {
        prop_assume!((lat_a - lat_b).abs() / lat_a.max(lat_b) > 1e-6);
        let set = ObjectiveSet::new(vec![Objective::minimize("latency")]);
        let fast = lat_a.min(lat_b);
        let slow = lat_a.max(lat_b);
        prop_assert!(set.scalar(&meas(0.5, 1e6, fast)) > set.scalar(&meas(0.5, 1e6, slow)));
    }

    /// Dominance is a strict partial order: irreflexive, asymmetric,
    /// transitive.
    fn dominance_partial_order(
        a in vec(0.0f64..1.0, 3),
        b in vec(0.0f64..1.0, 3),
        c in vec(0.0f64..1.0, 3),
    ) {
        prop_assert!(!pareto::dominates(&a, &a));
        if pareto::dominates(&a, &b) {
            prop_assert!(!pareto::dominates(&b, &a));
        }
        if pareto::dominates(&a, &b) && pareto::dominates(&b, &c) {
            prop_assert!(pareto::dominates(&a, &c));
        }
    }

    /// Non-dominated sort: fronts partition the set, and nobody in
    /// front i is dominated by anyone in front >= i.
    fn nds_front_ordering(points in vec(vec(0.0f64..1.0, 2), 1..30)) {
        let fronts = pareto::non_dominated_sort(&points);
        let total: usize = fronts.iter().map(|f| f.len()).sum();
        prop_assert_eq!(total, points.len());
        for (fi, front) in fronts.iter().enumerate() {
            for &i in front {
                for later in &fronts[fi..] {
                    for &j in later {
                        prop_assert!(
                            !pareto::dominates(&points[j], &points[i]),
                            "point in front {fi} dominated by a same-or-later front member"
                        );
                    }
                }
            }
        }
    }

    /// Crowding distances are non-negative and the extremes of every
    /// dimension are infinite for fronts of 3+ points.
    fn crowding_invariants(points in vec(vec(0.0f64..1.0, 2), 3..25)) {
        let d = pareto::crowding_distance(&points);
        prop_assert_eq!(d.len(), points.len());
        for &x in &d {
            prop_assert!(x >= 0.0);
        }
        for dim in 0..2 {
            let max_idx = (0..points.len())
                .max_by(|&a, &b| points[a][dim].partial_cmp(&points[b][dim]).unwrap())
                .unwrap();
            prop_assert!(d[max_idx].is_infinite());
        }
    }

    /// Infeasible measurements always lose to feasible ones under any
    /// built-in objective set.
    fn infeasible_always_loses(acc in 0.0f32..1.0, outs in 1.0f64..1e9) {
        for set in [ObjectiveSet::accuracy_only(), ObjectiveSet::accuracy_and_throughput()] {
            let feasible = set.scalar(&meas(acc, outs, 1e-4));
            let infeasible = set.scalar(&Measurement::infeasible("x"));
            prop_assert!(feasible > infeasible);
        }
    }
}
