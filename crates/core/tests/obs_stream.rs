//! End-to-end telemetry tests: a seeded single-threaded search must
//! emit a byte-identical JSONL event stream run-to-run (the property
//! that makes traces diffable and replayable), and a multi-threaded
//! run must keep its atomic counters consistent with the engine's own
//! statistics.

use std::io::Write;
use std::sync::{Arc, Mutex};

use ecad_core::prelude::*;
use ecad_core::space::SearchSpace;
use ecad_mlp::TrainConfig;
use ecad_dataset::synth::SyntheticSpec;
use ecad_dataset::Dataset;
use rt::obs::{JsonlSink, Level, MetricValue, Obs};

/// A `Write` target shared with the test so the sink's output can be
/// inspected after the search drops it.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn dataset() -> Dataset {
    SyntheticSpec::new("obs-test", 150, 6, 2)
        .with_class_sep(3.0)
        .with_seed(0)
        .generate()
}

fn search(ds: &Dataset, threads: usize, obs: Obs) -> ecad_core::search::SearchResult {
    let mut trainer = TrainConfig::fast();
    trainer.epochs = 8;
    Search::on_dataset(ds)
        .space(
            SearchSpace::fpga_default()
                .with_neurons(4, 32)
                .with_layers(1, 2),
        )
        .evaluations(20)
        .population(8)
        .seed(7)
        .threads(threads)
        .trainer(trainer)
        .obs(obs)
        .run()
}

fn traced_run(ds: &Dataset) -> String {
    let buf = SharedBuf::default();
    let obs = Obs::builder()
        .sink(JsonlSink::to_writer(Level::Debug, Box::new(buf.clone())))
        .build();
    let result = search(ds, 1, obs.clone());
    assert_eq!(result.stats().models_evaluated, 20);
    obs.flush();
    buf.contents()
}

#[test]
fn single_thread_trace_is_byte_identical_across_runs() {
    let ds = dataset();
    let a = traced_run(&ds);
    let b = traced_run(&ds);
    assert!(!a.is_empty());
    assert_eq!(a, b, "same-seed single-thread traces must be identical");

    // And the stream is well-formed JSONL with dense sequence numbers.
    for (i, line) in a.lines().enumerate() {
        let json = rt::json::Json::parse(line).expect("every line parses");
        assert_eq!(json.get("seq").and_then(|s| s.as_f64()), Some(i as f64));
    }
    let kinds: Vec<&str> = a
        .lines()
        .map(|l| {
            let start = l.find("\"event\":\"").unwrap() + 9;
            let rest = &l[start..];
            &rest[..rest.find('"').unwrap()]
        })
        .collect();
    assert_eq!(kinds.first(), Some(&"search_start"));
    assert_eq!(kinds.last(), Some(&"search_end"));
    assert!(kinds.contains(&"submit"));
    assert!(kinds.contains(&"evaluated"));
}

#[test]
fn multithreaded_counters_sum_to_engine_stats() {
    let ds = dataset();
    let obs = Obs::builder().build(); // metrics registry only, no sinks
    let result = search(&ds, 4, obs.clone());
    let stats = result.stats();

    let counter = |name: &str| -> u64 {
        obs.snapshot()
            .into_iter()
            .find_map(|(n, v)| match v {
                MetricValue::Counter(c) if n == name => Some(c),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    assert_eq!(counter("engine.models_evaluated"), stats.models_evaluated as u64);
    assert_eq!(counter("engine.cache_hits"), stats.cache_hits as u64);
    assert_eq!(counter("engine.infeasible"), stats.infeasible_count as u64);

    // The per-evaluation histogram saw exactly one sample per unique
    // model, and the span histograms captured the stage split.
    let hist = |name: &str| {
        obs.snapshot()
            .into_iter()
            .find_map(|(n, v)| match v {
                MetricValue::Histogram(h) if n == name => Some(h),
                _ => None,
            })
            .unwrap_or_else(|| panic!("missing histogram {name}"))
    };
    assert_eq!(hist("engine.eval_time_s").count, stats.models_evaluated as u64);
    assert_eq!(hist("span.train_s").count, stats.models_evaluated as u64);
    assert!(hist("span.train_s").sum > 0.0);
}
