//! Deeper invariant properties for `core::pareto`, complementing the
//! basics in `properties.rs`: front *rank* semantics (each front is
//! exactly the non-dominated set of what remains), crowding-distance
//! permutation invariance, and tie-heavy integer grids where many
//! points coincide — the regime where sort comparators and range
//! normalization tend to break.

use ecad_core::pareto;
use rt::check::vec;
use rt::rand::rngs::StdRng;
use rt::rand::seq::SliceRandom;
use rt::rand::SeedableRng;

/// Tiny integer grids cast to f64: lots of exact ties and duplicate
/// points, which continuous generators essentially never produce.
fn grid(points: &[Vec<u8>]) -> Vec<Vec<f64>> {
    points
        .iter()
        .map(|p| p.iter().map(|&x| f64::from(x)).collect())
        .collect()
}

rt::prop! {
    #![cases(256)]
    /// Fronts come in rank order: front 0 is the non-dominated set of
    /// the whole input, and every point in front i+1 is dominated by
    /// at least one point in front i (otherwise it would have ranked
    /// earlier). Members of one front never dominate each other.
    fn nds_fronts_are_ranks(points in vec(vec(0u8..5, 3), 1..20)) {
        let points = grid(&points);
        let fronts = pareto::non_dominated_sort(&points);

        // Partition: every index exactly once.
        let mut seen: Vec<usize> = fronts.iter().flatten().copied().collect();
        seen.sort_unstable();
        rt::prop_assert_eq!(seen, (0..points.len()).collect::<Vec<_>>());

        for (fi, front) in fronts.iter().enumerate() {
            rt::prop_assert!(!front.is_empty(), "empty front {fi} emitted");
            // Mutually non-dominating within the front.
            for &i in front {
                for &j in front {
                    rt::prop_assert!(
                        !pareto::dominates(&points[i], &points[j]),
                        "front {fi} members {i} and {j} are not mutually non-dominating"
                    );
                }
            }
            // Rank: each member of front i+1 is dominated by someone
            // in front i.
            if let Some(next) = fronts.get(fi + 1) {
                for &j in next {
                    rt::prop_assert!(
                        front.iter().any(|&i| pareto::dominates(&points[i], &points[j])),
                        "point {j} in front {} is not dominated from front {fi}",
                        fi + 1
                    );
                }
            }
        }
    }

    /// `pareto_front` is exactly the first front of the full sort.
    fn pareto_front_matches_first_rank(points in vec(vec(0u8..5, 2), 1..20)) {
        let points = grid(&points);
        let mut front = pareto::pareto_front(&points);
        let mut rank0 = pareto::non_dominated_sort(&points)[0].clone();
        front.sort_unstable();
        rank0.sort_unstable();
        rt::prop_assert_eq!(front, rank0);
    }

    /// Crowding distance is a function of the point *set*, not its
    /// order: permuting the input permutes the distances with it.
    fn crowding_is_permutation_invariant(
        points in vec(vec(0.0f64..1.0, 2), 3..16),
        perm_seed in 0u64..1_000_000,
    ) {
        let base = pareto::crowding_distance(&points);

        let mut order: Vec<usize> = (0..points.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(perm_seed));
        let shuffled: Vec<Vec<f64>> = order.iter().map(|&i| points[i].clone()).collect();
        let permuted = pareto::crowding_distance(&shuffled);

        for (slot, &original_index) in order.iter().enumerate() {
            let a = base[original_index];
            let b = permuted[slot];
            rt::prop_assert!(
                (a.is_infinite() && b.is_infinite() && a.signum() == b.signum())
                    || (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0),
                "distance for point {original_index} changed under permutation: {a} vs {b}"
            );
        }
    }

    /// Boundary points carry infinite distance in every dimension —
    /// both the minimum and the maximum — so NSGA-II never evicts the
    /// extremes of the frontier.
    fn crowding_boundaries_are_infinite(points in vec(vec(0.0f64..1.0, 3), 3..16)) {
        let d = pareto::crowding_distance(&points);
        rt::prop_assert_eq!(d.len(), points.len());
        for dim in 0..3 {
            let lo = (0..points.len())
                .min_by(|&a, &b| points[a][dim].partial_cmp(&points[b][dim]).unwrap())
                .unwrap();
            let hi = (0..points.len())
                .max_by(|&a, &b| points[a][dim].partial_cmp(&points[b][dim]).unwrap())
                .unwrap();
            rt::prop_assert!(d[lo].is_infinite(), "min of dim {dim} not infinite");
            rt::prop_assert!(d[hi].is_infinite(), "max of dim {dim} not infinite");
        }
        for &x in &d {
            rt::prop_assert!(x >= 0.0, "negative crowding distance {x}");
        }
    }

    /// Degenerate fronts — all points identical — still produce a
    /// total, non-negative, panic-free answer.
    fn crowding_survives_total_ties(point in vec(0u8..3, 2), copies in 1usize..12) {
        let p: Vec<f64> = point.iter().map(|&x| f64::from(x)).collect();
        let points: Vec<Vec<f64>> = std::iter::repeat_with(|| p.clone()).take(copies).collect();
        let d = pareto::crowding_distance(&points);
        rt::prop_assert_eq!(d.len(), copies);
        for &x in &d {
            rt::prop_assert!(x >= 0.0 || x.is_infinite());
        }
    }
}
