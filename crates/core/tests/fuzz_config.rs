//! Adversarial fuzz of the configuration-file parser: `parse_ini`
//! and the full `FlowConfig::from_ini` resolution must return `Err`
//! on malformed input — never panic — whatever bytes a user's editor,
//! a truncated download, or a hostile file hands them.

use ecad_core::config::{parse_ini, FlowConfig};
use rt::check::{select, vec};

rt::prop! {
    #![cases(256)]
    /// Raw byte soup through both entry points.
    fn ini_parser_survives_byte_soup(bytes in vec(0u8..=255, 0..96)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_ini(&text);
        let _ = FlowConfig::from_ini(&text);
    }

    /// INI-shaped line soup: section headers, half-headers, comments,
    /// bare keys, duplicate sections, and values the typed getters
    /// must refuse gracefully (bad numbers, unknown devices,
    /// mismatched objective/weight lists).
    fn ini_parser_survives_line_soup(lines in vec(select(std::vec::Vec::from([
        "[nna]", "[hardware]", "[optimization]", "[", "]", "[]", "[nna",
        "layers = 3", "layers = banana", "layers =", "= 3", "layers",
        "target = fpga", "target = abacus", "device = arria10_gx1150",
        "objectives = accuracy, throughput", "weights = 0.5",
        "weights = not,numbers", "; comment", "# comment", "", " ",
        "max_neurons = 99999999999999999999", "seed = -1", "\u{0}=\u{0}",
    ])), 0..16)) {
        let text = lines.join("\n");
        let _ = parse_ini(&text);
        let _ = FlowConfig::from_ini(&text);
    }

    /// Whatever `parse_ini` accepts must be internally consistent:
    /// the documented shape is section → key → value with keys
    /// holding their text verbatim, so re-serializing a parsed file
    /// and parsing again is a fixpoint of the section/key structure.
    fn ini_accepted_input_reparses(lines in vec(select(std::vec::Vec::from([
        "[nna]", "[hardware]", "[a b]", "k = v", "k=v", "k = v v",
        "key2 = 1.5", "; note", "", "   ", "k = [x]",
    ])), 0..12)) {
        let text = lines.join("\n");
        if let Ok(sections) = parse_ini(&text) {
            let rendered: String = {
                let mut names: Vec<_> = sections.keys().collect();
                names.sort();
                names
                    .iter()
                    .map(|name| {
                        let mut body: Vec<_> = sections[*name]
                            .iter()
                            .map(|(k, v)| format!("{k} = {v}"))
                            .collect();
                        body.sort();
                        if name.is_empty() {
                            body.join("\n")
                        } else {
                            format!("[{name}]\n{}", body.join("\n"))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            let reparsed = parse_ini(&rendered).expect("rendered config parses");
            rt::prop_assert_eq!(reparsed, sections);
        }
    }
}
