//! Determinism guarantees of the search space: with the workspace's
//! in-repo RNG (`rt::rand`), sampling and mutation are pure functions
//! of the seed. This is what makes `--seed` reproduce a whole search.

use ecad_core::space::SearchSpace;
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

/// Samples `n` genomes and returns their textual descriptions, which
/// capture every gene (layers, neurons, activations, hardware config).
fn sample_sequence(space: &SearchSpace, seed: u64, n: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| space.sample(&mut rng).describe()).collect()
}

#[test]
fn same_seed_gives_byte_identical_genome_sequences() {
    for space in [SearchSpace::fpga_default(), SearchSpace::gpu_default()] {
        let a = sample_sequence(&space, 42, 64);
        let b = sample_sequence(&space, 42, 64);
        assert_eq!(a, b, "same seed must replay the exact genome stream");
    }
}

#[test]
fn different_seeds_diverge() {
    let space = SearchSpace::fpga_default();
    let a = sample_sequence(&space, 1, 64);
    let b = sample_sequence(&space, 2, 64);
    assert_ne!(a, b, "distinct seeds should explore distinct genomes");
}

#[test]
fn mutation_is_deterministic_per_seed() {
    let space = SearchSpace::fpga_default();
    let parent = space.sample(&mut StdRng::seed_from_u64(7));
    let mut rng_a = StdRng::seed_from_u64(99);
    let mut rng_b = StdRng::seed_from_u64(99);
    for _ in 0..32 {
        let a = space.mutate(&parent, &mut rng_a);
        let b = space.mutate(&parent, &mut rng_b);
        assert_eq!(a.describe(), b.describe());
        assert_eq!(a.cache_key(), b.cache_key());
    }
}

#[test]
fn cache_keys_replay_with_the_seed() {
    let space = SearchSpace::gpu_default();
    let keys = |seed: u64| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..64).map(|_| space.sample(&mut rng).cache_key()).collect()
    };
    assert_eq!(keys(123), keys(123));
    assert_ne!(keys(123), keys(124));
}
