//! Model checks for the engine's concurrency protocols.
//!
//! Each suite builds a small model of one master-loop protocol — the
//! same `DispatchLedger` / `SlotState` / `ShutdownFlag` code the
//! engine runs, driven over `rt::sync` channels under the `rt::sched`
//! deterministic scheduler — and explores its interleavings with
//! [`rt::sched::check`]. Virtual time stands in for wall-clock
//! deadlines and backoffs, so a "2-second stall" costs nothing.
//!
//! Every suite comes in two flavors:
//!
//! * the **shipped** protocol, which must pass across the whole
//!   explored schedule space, and
//! * a **deliberately broken** variant (a seeded mutation: a dropped
//!   stale-check, a skipped generation fence, a lossy checkpoint),
//!   which the checker must *catch* within the same budget — proof
//!   that a pass over the shipped protocol means something.
//!
//! A found failure prints a schedule token; feeding that token back
//! through [`rt::sched::replay`] reproduces the identical failure,
//! which the replay test asserts byte-for-byte.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ecad_core::protocol::{DispatchLedger, ProtocolFaults, ResultClass};
use rt::sched::{self, CheckOptions};
use rt::supervise::{ShutdownFlag, SlotState};
use rt::sync::channel::{self, RecvTimeoutError};

/// Bounded budgets sized for CI: the shipped models explore to
/// exhaustion well inside these numbers, and every seeded mutant is
/// caught inside them too (asserted below).
fn budget() -> CheckOptions {
    CheckOptions {
        max_schedules_exhaustive: 4_000,
        random_schedules: 256,
        max_steps: 50_000,
        ..CheckOptions::default()
    }
}

// ---------------------------------------------------------------------------
// Suite 1: dispatch → deadline → retry → stale-result-drop.
// ---------------------------------------------------------------------------

/// One job through the engine's dispatch protocol against a worker
/// that nondeterministically stalls past the deadline. The master
/// mirrors `Engine::run_inner`: fill the pipeline (ready retries
/// first), sleep until a result or the next deadline, classify
/// arrivals through the ledger, expire overdue dispatches into
/// retries or final timeout verdicts.
///
/// Invariants: a worker result is never [`ResultClass::Unknown`], and
/// the job receives exactly one final verdict no matter how dispatch,
/// stall, timeout, retry, and late delivery interleave.
fn dispatch_protocol_model(faults: ProtocolFaults) {
    const DEADLINE_TICKS: u64 = 1_000;
    const BACKOFF_TICKS: u64 = 100;
    const MAX_RETRIES: usize = 1;

    let (req_tx, req_rx) = channel::unbounded::<(u64, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<(u64, u32)>();

    let worker = sched::spawn(move || {
        while let Ok((id, job)) = req_rx.recv() {
            if sched::choice(2) == 1 {
                // Stall past the master's deadline; the result below
                // arrives late and must drop as stale.
                sched::sleep(DEADLINE_TICKS + 10);
            }
            if res_tx.send((id, job)).is_err() {
                return;
            }
        }
    });

    let mut ledger: DispatchLedger<u32, u64> = DispatchLedger::with_faults(faults);
    let mut to_submit = vec![7u32];
    let mut next_id = 0u64;
    let mut verdicts: Vec<(u32, &str)> = Vec::new();

    loop {
        while ledger.in_flight_len() < 1 {
            let (job, attempt) = if let Some((attempt, job)) = ledger.pop_ready_retry(sched::now())
            {
                (job, attempt)
            } else if let Some(job) = to_submit.pop() {
                (job, 0)
            } else {
                break;
            };
            let id = next_id;
            next_id += 1;
            ledger.dispatch(id, job, attempt, Some(sched::now() + DEADLINE_TICKS));
            req_tx.send((id, job)).expect("worker alive");
        }
        if ledger.quiescent() && to_submit.is_empty() {
            break;
        }

        let received = match ledger.next_wake() {
            None => Some(res_rx.recv().expect("worker alive")),
            Some(wake) => {
                let timeout = Duration::from_nanos(wake.saturating_sub(sched::now()));
                match res_rx.recv_timeout(timeout) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => unreachable!("worker holds sender"),
                }
            }
        };
        match received {
            Some((id, job)) => match ledger.take_result(id) {
                ResultClass::Fresh(done) => {
                    assert_eq!(done.payload, job, "result paired with wrong job");
                    verdicts.push((job, "ok"));
                }
                ResultClass::Stale => {}
                ResultClass::Unknown => {
                    panic!("result for id {id} is neither fresh nor stale")
                }
            },
            None => {
                for (_id, late) in ledger.expire(sched::now()) {
                    if late.attempt < MAX_RETRIES {
                        ledger.schedule_retry(
                            sched::now() + BACKOFF_TICKS,
                            late.attempt + 1,
                            late.payload,
                        );
                    } else {
                        verdicts.push((late.payload, "timeout"));
                    }
                }
            }
        }
    }

    drop(req_tx);
    worker.join();
    // Any result still buffered belongs to an abandoned dispatch and
    // must classify as stale — never unknown, never a second verdict.
    while let Ok((id, _job)) = res_rx.try_recv() {
        match ledger.take_result(id) {
            ResultClass::Stale => {}
            other => panic!("late result for id {id} misclassified as {other:?}"),
        }
    }
    assert_eq!(
        verdicts.len(),
        1,
        "job must get exactly one final verdict, got {verdicts:?}"
    );
}

#[test]
fn dispatch_protocol_holds_across_interleavings() {
    let report = sched::check(budget(), || {
        dispatch_protocol_model(ProtocolFaults::default())
    });
    report.assert_pass();
    assert!(report.exhausted, "model grew past the exhaustive budget");
}

#[test]
fn checker_catches_dropped_stale_tracking() {
    let faults = ProtocolFaults {
        ignore_stale_results: true,
        ..ProtocolFaults::default()
    };
    let report = sched::check(budget(), move || dispatch_protocol_model(faults));
    let failure = report
        .failure
        .expect("mutant that loses stale ids must be caught");
    assert!(
        failure.message.contains("neither fresh nor stale")
            || failure.message.contains("misclassified"),
        "caught the wrong bug: {}",
        failure.message
    );
}

#[test]
fn failing_schedule_replays_byte_identically() {
    let faults = ProtocolFaults {
        ignore_stale_results: true,
        ..ProtocolFaults::default()
    };
    let report = sched::check(budget(), move || dispatch_protocol_model(faults));
    let failure = report.failure.expect("mutant must be caught");

    // Round-trip the schedule through its printed token, as a user
    // pasting it from a CI log would.
    let token = failure.schedule.to_string();
    let parsed: sched::Schedule = token.parse().expect("token parses");
    let replayed =
        sched::replay(&parsed, move || dispatch_protocol_model(faults)).expect("failure replays");
    assert_eq!(replayed.message, failure.message);
    assert_eq!(replayed.schedule, failure.schedule);
}

// ---------------------------------------------------------------------------
// Suite 2: worker panic/stall → respawn → generation fencing.
// ---------------------------------------------------------------------------

/// A supervised slot through a respawn: worker 0 holds the slot at
/// generation `g0`, the master declares it stalled and respawns
/// (bump + clear claim), worker 1 takes over at `g1`, and both race
/// for the remaining jobs. The `fence` knob is the protocol under
/// test: the shipped worker loop re-checks `SlotState::is_current`
/// after every job and winds down when stale; the mutant skips the
/// check and keeps consuming work.
///
/// Invariant: after the respawn, the stale worker completes at most
/// the one job it already held — it never claims a second.
fn respawn_fencing_model(fence: bool) {
    let (req_tx, req_rx) = channel::unbounded::<u64>();
    let slot = Arc::new(SlotState::new());
    let bumped = Arc::new(AtomicBool::new(false));
    let stale_jobs = Arc::new(AtomicU64::new(0));

    let g0 = slot.generation();
    let w0 = sched::spawn({
        let req_rx = req_rx.clone();
        let slot = Arc::clone(&slot);
        let bumped = Arc::clone(&bumped);
        let stale_jobs = Arc::clone(&stale_jobs);
        move || {
            while let Ok(job) = req_rx.recv() {
                slot.claim(job);
                sched::yield_now(); // the evaluation
                slot.release(job);
                if bumped.load(Ordering::SeqCst) {
                    stale_jobs.fetch_add(1, Ordering::SeqCst);
                }
                if fence && !slot.is_current(g0) {
                    return;
                }
            }
        }
    });

    req_tx.send(1).expect("worker alive");
    sched::yield_now();

    // The master declares w0 stalled and respawns the slot. `bumped`
    // is set only after the bump, so a job counted as stale below is
    // guaranteed to have finished after the generation moved on.
    let g1 = slot.bump_generation();
    slot.clear_claim();
    bumped.store(true, Ordering::SeqCst);

    let w1 = sched::spawn({
        let req_rx = req_rx.clone();
        let slot = Arc::clone(&slot);
        move || {
            while let Ok(job) = req_rx.recv() {
                slot.claim(job);
                sched::yield_now();
                slot.release(job);
                if !slot.is_current(g1) {
                    return;
                }
            }
        }
    });

    req_tx.send(2).expect("worker alive");
    req_tx.send(3).expect("worker alive");
    drop(req_tx);
    w0.join();
    w1.join();

    assert!(
        stale_jobs.load(Ordering::SeqCst) <= 1,
        "stale worker kept claiming jobs after its slot was respawned"
    );
}

#[test]
fn generation_fencing_holds_across_interleavings() {
    sched::check(budget(), || respawn_fencing_model(true)).assert_pass();
}

#[test]
fn checker_catches_missing_generation_fence() {
    let report = sched::check(budget(), || respawn_fencing_model(false));
    let failure = report.failure.expect("unfenced mutant must be caught");
    assert!(
        failure.message.contains("stale worker kept claiming"),
        "caught the wrong bug: {}",
        failure.message
    );
}

// ---------------------------------------------------------------------------
// Suite 3: shutdown request → halt → checkpoint quiescence.
// ---------------------------------------------------------------------------

/// A shutdown racing a two-job search with transient failures. A
/// killer thread flips the [`ShutdownFlag`] at an arbitrary point;
/// the master checks it each iteration (like `Engine::run_inner`) and
/// on halt snapshots a checkpoint: completed verdicts, the ledger's
/// pending jobs (in-flight + queued retries), and never-submitted
/// work.
///
/// Invariant: wherever the shutdown lands — before submission, mid
/// flight, or during a retry backoff — the checkpoint covers every
/// job exactly once. The [`ProtocolFaults::drop_retry_queue_from_pending`]
/// mutant loses jobs waiting out a backoff.
fn shutdown_checkpoint_model(faults: ProtocolFaults) {
    const BACKOFF_TICKS: u64 = 500;
    const MAX_RETRIES: usize = 1;

    let (req_tx, req_rx) = channel::unbounded::<(u64, u32)>();
    let (res_tx, res_rx) = channel::unbounded::<(u64, u32, bool)>();

    let worker = sched::spawn(move || {
        while let Ok((id, job)) = req_rx.recv() {
            let ok = sched::choice(2) == 0; // success or transient failure
            if res_tx.send((id, job, ok)).is_err() {
                return;
            }
        }
    });
    let shutdown = ShutdownFlag::new();
    let killer = sched::spawn({
        let shutdown = shutdown.clone();
        move || shutdown.request()
    });

    let mut ledger: DispatchLedger<u32, u64> = DispatchLedger::with_faults(faults);
    let mut to_submit = vec![8u32, 7u32];
    let mut next_id = 0u64;
    let mut completed: Vec<u32> = Vec::new();

    loop {
        let halt = shutdown.is_requested();
        if !halt {
            while ledger.in_flight_len() < 1 {
                let (job, attempt) =
                    if let Some((attempt, job)) = ledger.pop_ready_retry(sched::now()) {
                        (job, attempt)
                    } else if let Some(job) = to_submit.pop() {
                        (job, 0)
                    } else {
                        break;
                    };
                let id = next_id;
                next_id += 1;
                ledger.dispatch(id, job, attempt, None);
                req_tx.send((id, job)).expect("worker alive");
            }
        }
        if halt || (ledger.quiescent() && to_submit.is_empty()) {
            break;
        }

        let received = match ledger.next_wake() {
            None => Some(res_rx.recv().expect("worker alive")),
            Some(wake) => {
                let timeout = Duration::from_nanos(wake.saturating_sub(sched::now()));
                match res_rx.recv_timeout(timeout) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => unreachable!("worker holds sender"),
                }
            }
        };
        if let Some((id, job, ok)) = received {
            match ledger.take_result(id) {
                ResultClass::Fresh(done) => {
                    if !ok && done.attempt < MAX_RETRIES {
                        ledger.schedule_retry(
                            sched::now() + BACKOFF_TICKS,
                            done.attempt + 1,
                            done.payload,
                        );
                    } else {
                        completed.push(job);
                    }
                }
                ResultClass::Stale => {}
                ResultClass::Unknown => panic!("result for id {id} unknown to the ledger"),
            }
        }
    }

    // The halt-time checkpoint. No job may be lost or duplicated.
    let mut snapshot: Vec<u32> = completed.clone();
    snapshot.extend(ledger.pending_jobs().into_iter().map(|(_, &job)| job));
    snapshot.extend(to_submit.iter().copied());
    snapshot.sort_unstable();
    assert_eq!(snapshot, vec![7, 8], "checkpoint lost or duplicated work");

    drop(req_tx);
    worker.join();
    killer.join();
}

#[test]
fn shutdown_checkpoint_quiescence_holds_across_interleavings() {
    sched::check(budget(), || {
        shutdown_checkpoint_model(ProtocolFaults::default())
    })
    .assert_pass();
}

#[test]
fn checker_catches_checkpoint_that_drops_retries() {
    let faults = ProtocolFaults {
        drop_retry_queue_from_pending: true,
        ..ProtocolFaults::default()
    };
    let report = sched::check(budget(), move || shutdown_checkpoint_model(faults));
    let failure = report
        .failure
        .expect("checkpoint-losing mutant must be caught");
    assert!(
        failure.message.contains("checkpoint lost or duplicated"),
        "caught the wrong bug: {}",
        failure.message
    );
}

// ---------------------------------------------------------------------------
// Suite 4: remote dispatch → worker dies mid-job → retry on another
// slot → late stale reply fenced by session stamp.
// ---------------------------------------------------------------------------

/// The cluster coordinator's remote-exchange protocol: per-slot request
/// channels, one shared result channel (exactly the engine's remote
/// slot plumbing), and a session wire to each worker that *persists
/// across reconnects* — an adversarial transport where a reply from a
/// fenced session stays readable. A worker nondeterministically "dies
/// mid-job" by stalling past the exchange deadline; the slot classifies
/// the exchange transient, the master retries the job on another slot,
/// and the late reply eventually surfaces on the old wire.
///
/// The `fence` knob is the protocol under test, mirroring
/// `remote_exchange` in the engine: the shipped slot drops any reply
/// whose `(id, stamp)` does not match the request it just sent and
/// reports the exchange transient; the mutant forwards whatever reply
/// arrives first.
///
/// Invariants: every success pairs the right payload with its job, and
/// each job receives exactly one final verdict no matter how stalls,
/// deadlines, retries, and late deliveries interleave.
fn remote_dispatch_model(fence: bool) {
    const EXCHANGE_TICKS: u64 = 1_000;
    const BACKOFF_TICKS: u64 = 100;
    const MAX_RETRIES: usize = 1;
    const SLOTS: usize = 2;

    let (res_tx, res_rx) = channel::unbounded::<(usize, u64, Option<u32>)>();

    let mut req_txs = Vec::new();
    let mut slot_handles = Vec::new();
    let mut worker_handles = Vec::new();
    for slot in 0..SLOTS {
        let (req_tx, req_rx) = channel::unbounded::<(u64, u32)>();
        let (wire_tx, wire_rx) = channel::unbounded::<(u64, u64, u32)>();
        let (reply_tx, reply_rx) = channel::unbounded::<(u64, u64, u32)>();
        worker_handles.push(sched::spawn(move || {
            while let Ok((id, stamp, job)) = wire_rx.recv() {
                if sched::choice(2) == 1 {
                    // Dies mid-job: the reply surfaces only after the
                    // slot has declared the session dead.
                    sched::sleep(EXCHANGE_TICKS + 10);
                }
                if reply_tx.send((id, stamp, job + 1_000)).is_err() {
                    return;
                }
            }
        }));
        let res_tx = res_tx.clone();
        slot_handles.push(sched::spawn(move || {
            let mut connects: u64 = 0;
            while let Ok((id, job)) = req_rx.recv() {
                let stamp = ((slot as u64) << 32) | connects;
                wire_tx.send((id, stamp, job)).expect("worker outlives slot");
                let outcome = match reply_rx.recv_timeout(Duration::from_nanos(EXCHANGE_TICKS)) {
                    Ok((rid, rstamp, payload)) => {
                        if fence && (rid != id || rstamp != stamp) {
                            None // stale reply from a fenced session
                        } else {
                            Some(payload)
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => unreachable!("worker outlives slot"),
                };
                if outcome.is_none() {
                    // Any failed exchange drops the session; the next
                    // one reconnects under a fresh stamp.
                    connects += 1;
                }
                if res_tx.send((slot, id, outcome)).is_err() {
                    return;
                }
            }
        }));
        req_txs.push(req_tx);
    }
    drop(res_tx);

    let mut ledger: DispatchLedger<u32, u64> = DispatchLedger::with_faults(ProtocolFaults::default());
    let mut to_submit = vec![8u32, 7u32];
    let mut next_id = 0u64;
    let mut busy = [false; SLOTS];
    let mut last_slot: Vec<(u32, usize)> = Vec::new();
    let mut verdicts: Vec<(u32, &str)> = Vec::new();

    loop {
        loop {
            let free: Vec<usize> = (0..SLOTS).filter(|&s| !busy[s]).collect();
            if free.is_empty() {
                break;
            }
            let (job, attempt) = if let Some((attempt, job)) = ledger.pop_ready_retry(sched::now())
            {
                (job, attempt)
            } else if let Some(job) = to_submit.pop() {
                (job, 0)
            } else {
                break;
            };
            // Retry on *another* slot when one is free: the slot that
            // just lost this job is the least likely to hold a live
            // session.
            let avoid = last_slot.iter().find(|&&(j, _)| j == job).map(|&(_, s)| s);
            let slot = free
                .iter()
                .copied()
                .find(|&s| Some(s) != avoid)
                .unwrap_or(free[0]);
            let id = next_id;
            next_id += 1;
            ledger.dispatch(id, job, attempt, None);
            busy[slot] = true;
            match last_slot.iter_mut().find(|(j, _)| *j == job) {
                Some(entry) => entry.1 = slot,
                None => last_slot.push((job, slot)),
            }
            req_txs[slot].send((id, job)).expect("slot alive");
        }
        if ledger.quiescent() && to_submit.is_empty() {
            break;
        }

        // A retry that is already ripe is only waiting for a free slot,
        // so block on the next result instead of spinning on a wake in
        // the past.
        let wake = ledger.next_wake().filter(|&w| w > sched::now());
        let received = match wake {
            None => Some(res_rx.recv().expect("slots alive")),
            Some(wake) => {
                let timeout = Duration::from_nanos(wake - sched::now());
                match res_rx.recv_timeout(timeout) {
                    Ok(msg) => Some(msg),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => unreachable!("slots hold senders"),
                }
            }
        };
        if let Some((slot, id, outcome)) = received {
            busy[slot] = false;
            match ledger.take_result(id) {
                ResultClass::Fresh(done) => match outcome {
                    Some(payload) => {
                        assert_eq!(payload, done.payload + 1_000, "result paired with wrong job");
                        verdicts.push((done.payload, "ok"));
                    }
                    None => {
                        if done.attempt < MAX_RETRIES {
                            ledger.schedule_retry(
                                sched::now() + BACKOFF_TICKS,
                                done.attempt + 1,
                                done.payload,
                            );
                        } else {
                            verdicts.push((done.payload, "timeout"));
                        }
                    }
                },
                other => panic!("slot result for id {id} misclassified as {other:?}"),
            }
        }
    }

    drop(req_txs);
    for handle in slot_handles {
        handle.join();
    }
    for handle in worker_handles {
        handle.join();
    }
    let mut jobs: Vec<u32> = verdicts.iter().map(|&(job, _)| job).collect();
    jobs.sort_unstable();
    assert_eq!(
        jobs,
        vec![7, 8],
        "each job gets exactly one final verdict, got {verdicts:?}"
    );
}

#[test]
fn remote_dispatch_fencing_holds_across_interleavings() {
    sched::check(budget(), || remote_dispatch_model(true)).assert_pass();
}

#[test]
fn checker_catches_unfenced_stale_replies() {
    let report = sched::check(budget(), || remote_dispatch_model(false));
    let failure = report
        .failure
        .expect("mutant that trusts stale replies must be caught");
    assert!(
        failure.message.contains("result paired with wrong job"),
        "caught the wrong bug: {}",
        failure.message
    );
}
