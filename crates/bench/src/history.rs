//! Performance trajectory and the regression gate.
//!
//! `rt::bench` suites persist their measurements as `BENCH_<date>.json`
//! reports at the repo root (schema in `rt::bench`, pinned by a golden
//! test). This module is the read side: it loads and validates the
//! trailing window of reports, computes per-benchmark trends, and
//! implements the gate semantics behind `ecad bench gate`:
//!
//! * `threshold_p95_ms` — an absolute ceiling on a benchmark's p95;
//! * `max_p95_regression_pct` — the latest p95 may exceed the median
//!   p95 of up to `window_size` *prior* reports by at most this
//!   percentage (exactly at the boundary passes);
//! * `required_passes` — hysteresis: the most recent `required_passes`
//!   reports must *each* pass their own checks (against their own
//!   trailing windows) for the gate to pass, so one lucky run cannot
//!   clear a persistent regression.
//!
//! Missing history is a documented **pass with warning** — a fresh
//! checkout must not fail CI — while a malformed history file is a hard
//! error with a line-numbered location, because silently skipping a
//! corrupt baseline would let regressions through unnoticed.

use std::fmt;
use std::path::{Path, PathBuf};

use rt::bench::BENCH_SCHEMA_VERSION;
use rt::json::Json;

use crate::report::TextTable;

/// One benchmark's row in a report (the `benchmarks` array entries).
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Suite the benchmark belongs to (`kernels`, `models`, ...).
    pub suite: String,
    /// Stable benchmark id within the suite (`gemm/blocked/64`).
    pub id: String,
    /// Median ns/iter.
    pub ns_p50: f64,
    /// 95th-percentile ns/iter — the gate's subject.
    pub ns_p95: f64,
    /// Fastest batch, ns/iter.
    pub ns_min: f64,
    /// Slowest batch, ns/iter.
    pub ns_max: f64,
    /// Mean ns/iter.
    pub ns_mean: f64,
    /// Median throughput, iterations per second.
    pub throughput_per_s: f64,
    /// Measured batches.
    pub samples: u64,
    /// Iterations per batch.
    pub iters_per_sample: u64,
}

impl Entry {
    /// Whether this entry survives the `--suite` / `--filter`
    /// selectors.
    pub fn matches(&self, suite: Option<&str>, filter: Option<&str>) -> bool {
        suite.is_none_or(|s| self.suite == s) && filter.is_none_or(|f| self.id.contains(f))
    }

    /// The `suite/id` display key.
    pub fn key(&self) -> String {
        format!("{}/{}", self.suite, self.id)
    }
}

/// One validated `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// UTC date, `YYYY-MM-DD`.
    pub date: String,
    /// UTC timestamp, `YYYY-MM-DDTHH:MM:SSZ`.
    pub created_utc: String,
    /// Git revision of the measured tree.
    pub git_rev: String,
    /// Benchmarks, sorted by `(suite, id)`.
    pub entries: Vec<Entry>,
}

/// Error from loading or validating history files.
#[derive(Debug, Clone, PartialEq)]
pub enum HistoryError {
    /// Filesystem failure.
    Io {
        /// Offending path.
        path: String,
        /// Underlying error text.
        message: String,
    },
    /// The file is not valid JSON; `line`/`column` are 1-based.
    Parse {
        /// Offending path.
        path: String,
        /// 1-based line of the syntax error.
        line: usize,
        /// 1-based column of the syntax error.
        column: usize,
        /// Parser message.
        message: String,
    },
    /// The JSON parses but violates the report schema.
    Schema {
        /// Offending path.
        path: String,
        /// Where in the document (`benchmarks[3]`, `date`, ...).
        at: String,
        /// What is wrong.
        message: String,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::Io { path, message } => write!(f, "{path}: {message}"),
            HistoryError::Parse {
                path,
                line,
                column,
                message,
            } => write!(f, "{path}:{line}:{column}: {message}"),
            HistoryError::Schema { path, at, message } => {
                write!(f, "{path}: {at}: {message}")
            }
        }
    }
}

impl std::error::Error for HistoryError {}

/// Converts a byte offset into 1-based (line, column).
fn line_col(text: &str, offset: usize) -> (usize, usize) {
    let upto = &text.as_bytes()[..offset.min(text.len())];
    let line = upto.iter().filter(|&&b| b == b'\n').count() + 1;
    let column = upto.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
    (line, column)
}

/// Whether a file name is a history report (`BENCH_*.json`).
pub fn is_bench_file(name: &str) -> bool {
    name.starts_with("BENCH_") && name.ends_with(".json")
}

/// Parses and validates one report document. `path` is only used to
/// label errors.
///
/// # Errors
///
/// [`HistoryError::Parse`] with a 1-based line/column for syntax
/// errors, [`HistoryError::Schema`] for structural violations
/// (wrong/missing fields, non-finite or misordered statistics,
/// duplicate benchmark keys, unsupported `schema_version`).
pub fn parse_report(path: &str, text: &str) -> Result<Report, HistoryError> {
    let doc = Json::parse(text).map_err(|e| {
        let (line, column) = line_col(text, e.offset);
        HistoryError::Parse {
            path: path.to_string(),
            line,
            column,
            message: e.message,
        }
    })?;
    let schema = |at: &str, message: String| HistoryError::Schema {
        path: path.to_string(),
        at: at.to_string(),
        message,
    };
    let string_field = |key: &str| {
        doc.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| schema(key, "missing or non-string field".to_string()))
    };
    let version = doc
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or_else(|| schema("schema_version", "missing or non-numeric".to_string()))?;
    if version != BENCH_SCHEMA_VERSION as f64 {
        return Err(schema(
            "schema_version",
            format!("unsupported version {version} (expected {BENCH_SCHEMA_VERSION})"),
        ));
    }
    let date = string_field("date")?;
    let created_utc = string_field("created_utc")?;
    let git_rev = string_field("git_rev")?;
    let raw = doc
        .get("benchmarks")
        .and_then(Json::as_array)
        .ok_or_else(|| schema("benchmarks", "missing or non-array field".to_string()))?;

    let mut entries = Vec::with_capacity(raw.len());
    for (i, item) in raw.iter().enumerate() {
        let at = format!("benchmarks[{i}]");
        let text_of = |key: &str| {
            item.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| schema(&at, format!("missing or non-string field {key:?}")))
        };
        let num_of = |key: &str| {
            item.get(key)
                .and_then(Json::as_f64)
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| {
                    schema(
                        &at,
                        format!("missing, non-numeric, or negative field {key:?}"),
                    )
                })
        };
        let entry = Entry {
            suite: text_of("suite")?,
            id: text_of("id")?,
            ns_p50: num_of("ns_per_iter_p50")?,
            ns_p95: num_of("ns_per_iter_p95")?,
            ns_min: num_of("ns_per_iter_min")?,
            ns_max: num_of("ns_per_iter_max")?,
            ns_mean: num_of("ns_per_iter_mean")?,
            throughput_per_s: num_of("throughput_per_s")?,
            samples: num_of("samples")? as u64,
            iters_per_sample: num_of("iters_per_sample")? as u64,
        };
        if entry.ns_p50 > entry.ns_p95 {
            return Err(schema(
                &at,
                format!(
                    "corrupt summary: p50 {} > p95 {} for {}",
                    entry.ns_p50,
                    entry.ns_p95,
                    entry.key()
                ),
            ));
        }
        entries.push(entry);
    }
    entries.sort_by(|a, b| (&a.suite, &a.id).cmp(&(&b.suite, &b.id)));
    for pair in entries.windows(2) {
        if pair[0].suite == pair[1].suite && pair[0].id == pair[1].id {
            return Err(schema(
                "benchmarks",
                format!("duplicate benchmark {}", pair[0].key()),
            ));
        }
    }
    Ok(Report {
        date,
        created_utc,
        git_rev,
        entries,
    })
}

/// Loads and validates one report file.
///
/// # Errors
///
/// [`HistoryError::Io`] when unreadable, else as [`parse_report`].
pub fn load_report(path: &Path) -> Result<Report, HistoryError> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path).map_err(|e| HistoryError::Io {
        path: label.clone(),
        message: e.to_string(),
    })?;
    parse_report(&label, &text)
}

/// A report plus where it came from, as [`load_history`] returns them.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryFile {
    /// File name (`BENCH_2026-08-09.json`).
    pub name: String,
    /// The validated document.
    pub report: Report,
}

/// Loads every `BENCH_*.json` in `dir`, oldest first (ordered by
/// report date, then creation timestamp, then file name — so several
/// same-day reports still order deterministically).
///
/// An unreadable directory or an empty match set is **not** an error
/// (the gate documents it as pass-with-warning); any individual file
/// that fails to load is.
///
/// # Errors
///
/// As [`load_report`], for the first offending file.
pub fn load_history(dir: &Path) -> Result<Vec<HistoryFile>, HistoryError> {
    let mut names: Vec<String> = match std::fs::read_dir(dir) {
        Err(_) => Vec::new(),
        Ok(iter) => iter
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| is_bench_file(n))
            .collect(),
    };
    names.sort_unstable();
    let mut files = Vec::with_capacity(names.len());
    for name in names {
        let report = load_report(&dir.join(&name))?;
        files.push(HistoryFile { name, report });
    }
    files.sort_by(|a, b| {
        (&a.report.date, &a.report.created_utc, &a.name)
            .cmp(&(&b.report.date, &b.report.created_utc, &b.name))
    });
    Ok(files)
}

/// The directory history lives in by default: the nearest ancestor of
/// the current directory holding a `.git` or a workspace `Cargo.lock`,
/// falling back to the current directory.
pub fn default_dir() -> PathBuf {
    let start = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = start.clone();
    loop {
        if dir.join(".git").exists() || dir.join("Cargo.lock").exists() {
            return dir;
        }
        match dir.parent() {
            Some(parent) => dir = parent.to_path_buf(),
            None => return start,
        }
    }
}

// ---------------------------------------------------------------------
// Trend
// ---------------------------------------------------------------------

/// One report's measurement of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Report date.
    pub date: String,
    /// Report git revision.
    pub git_rev: String,
    /// Median ns/iter.
    pub ns_p50: f64,
    /// p95 ns/iter.
    pub ns_p95: f64,
}

/// One benchmark's trajectory across the history, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendRow {
    /// Suite name.
    pub suite: String,
    /// Benchmark id.
    pub id: String,
    /// Chronological measurements.
    pub points: Vec<TrendPoint>,
    /// Median p95 of up to `window` reports before the latest; `None`
    /// when the benchmark only appears once.
    pub baseline_p95: Option<f64>,
    /// Latest p95 vs baseline, in percent (positive = slower).
    pub delta_pct: Option<f64>,
}

/// Builds per-benchmark trend rows over the history, sorted by
/// `(suite, id)`. `window` bounds the baseline used for the delta
/// column, mirroring the gate's `window_size`.
pub fn trend(
    history: &[HistoryFile],
    suite: Option<&str>,
    filter: Option<&str>,
    window: usize,
) -> Vec<TrendRow> {
    let mut keys: Vec<(String, String)> = history
        .iter()
        .flat_map(|f| f.report.entries.iter())
        .filter(|e| e.matches(suite, filter))
        .map(|e| (e.suite.clone(), e.id.clone()))
        .collect();
    keys.sort();
    keys.dedup();

    keys.into_iter()
        .map(|(suite, id)| {
            let points: Vec<TrendPoint> = history
                .iter()
                .filter_map(|f| {
                    f.report
                        .entries
                        .iter()
                        .find(|e| e.suite == suite && e.id == id)
                        .map(|e| TrendPoint {
                            date: f.report.date.clone(),
                            git_rev: f.report.git_rev.clone(),
                            ns_p50: e.ns_p50,
                            ns_p95: e.ns_p95,
                        })
                })
                .collect();
            let prior: Vec<f64> = points
                .iter()
                .rev()
                .skip(1)
                .take(window)
                .map(|p| p.ns_p95)
                .collect();
            let baseline_p95 = rt::bench::quantile(&prior, 0.5);
            let delta_pct = baseline_p95.and_then(|b| {
                let latest = points.last()?.ns_p95;
                (b > 0.0).then(|| (latest / b - 1.0) * 100.0)
            });
            TrendRow {
                suite,
                id,
                points,
                baseline_p95,
                delta_pct,
            }
        })
        .collect()
}

/// Renders trend rows as a text table (latest run, baseline, delta).
pub fn trend_table(rows: &[TrendRow]) -> String {
    let mut table = TextTable::new(vec![
        "suite", "benchmark", "runs", "p50", "p95", "baseline", "delta",
    ]);
    for row in rows {
        let latest = row.points.last();
        table.row(vec![
            row.suite.clone(),
            row.id.clone(),
            row.points.len().to_string(),
            latest.map_or("-".into(), |p| format_ns(p.ns_p50)),
            latest.map_or("-".into(), |p| format_ns(p.ns_p95)),
            row.baseline_p95.map_or("-".into(), format_ns),
            row.delta_pct
                .map_or("-".into(), |d| format!("{d:+.1}%")),
        ]);
    }
    table.render()
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

// ---------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------

/// Gate thresholds and windowing (the AxiomMe-style command surface).
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Restrict to one suite.
    pub suite: Option<String>,
    /// Substring filter on benchmark ids.
    pub filter: Option<String>,
    /// Absolute ceiling on p95, in milliseconds.
    pub threshold_p95_ms: Option<f64>,
    /// Maximum allowed p95 increase vs the baseline window, percent.
    pub max_p95_regression_pct: Option<f64>,
    /// Baseline: median p95 of up to this many prior reports.
    pub window_size: usize,
    /// The most recent N reports must each pass.
    pub required_passes: usize,
}

impl Default for GateConfig {
    fn default() -> GateConfig {
        GateConfig {
            suite: None,
            filter: None,
            threshold_p95_ms: None,
            max_p95_regression_pct: None,
            window_size: 3,
            required_passes: 1,
        }
    }
}

/// One benchmark × report verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateCheck {
    /// Date of the evaluated report.
    pub run_date: String,
    /// Suite name.
    pub suite: String,
    /// Benchmark id.
    pub id: String,
    /// The report's p95 ns/iter.
    pub ns_p95: f64,
    /// Median p95 of the trailing window, when one exists.
    pub baseline_p95: Option<f64>,
    /// p95 vs baseline, percent.
    pub delta_pct: Option<f64>,
    /// Whether every applicable check passed.
    pub passed: bool,
    /// Failure explanation (empty when passed).
    pub reason: String,
}

/// The gate's full verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Per-benchmark, per-report verdicts: chronological, then by
    /// `(suite, id)`.
    pub checks: Vec<GateCheck>,
    /// Non-fatal conditions (missing history, short windows, ...).
    pub warnings: Vec<String>,
    /// How many trailing reports were evaluated.
    pub runs_evaluated: usize,
    /// The verdict.
    pub passed: bool,
}

/// Evaluates the gate over a chronological history (as returned by
/// [`load_history`]).
///
/// Empty history, or history whose entries all fall outside the
/// suite/filter selection, passes with a warning. With
/// `required_passes > 1`, the most recent `required_passes` reports
/// are each evaluated against their own trailing baselines; all must
/// pass. A benchmark's first appearance has no baseline and passes the
/// regression check with a warning.
pub fn gate(history: &[HistoryFile], config: &GateConfig) -> GateReport {
    let mut report = GateReport {
        checks: Vec::new(),
        warnings: Vec::new(),
        runs_evaluated: 0,
        passed: true,
    };
    if history.is_empty() {
        report
            .warnings
            .push("no BENCH_*.json history found: gate passes vacuously".to_string());
        return report;
    }
    let required = config.required_passes.max(1);
    if history.len() < required {
        report.warnings.push(format!(
            "history has {} report(s), required_passes is {required}: evaluating all",
            history.len()
        ));
    }
    let first_eval = history.len().saturating_sub(required);
    report.runs_evaluated = history.len() - first_eval;

    let mut any_selected = false;
    for run_idx in first_eval..history.len() {
        let file = &history[run_idx];
        for entry in &file.report.entries {
            if !entry.matches(config.suite.as_deref(), config.filter.as_deref()) {
                continue;
            }
            any_selected = true;
            let prior: Vec<f64> = history[..run_idx]
                .iter()
                .rev()
                .filter_map(|f| {
                    f.report
                        .entries
                        .iter()
                        .find(|e| e.suite == entry.suite && e.id == entry.id)
                        .map(|e| e.ns_p95)
                })
                .take(config.window_size)
                .collect();
            let baseline_p95 = rt::bench::quantile(&prior, 0.5);
            let delta_pct = baseline_p95
                .filter(|b| *b > 0.0)
                .map(|b| (entry.ns_p95 / b - 1.0) * 100.0);

            let mut reasons = Vec::new();
            if let Some(ceiling_ms) = config.threshold_p95_ms {
                if entry.ns_p95 > ceiling_ms * 1e6 {
                    reasons.push(format!(
                        "p95 {} exceeds threshold {ceiling_ms} ms",
                        format_ns(entry.ns_p95)
                    ));
                }
            }
            if let Some(max_pct) = config.max_p95_regression_pct {
                // Compared in ns-space, not on the derived percentage:
                // 110/100 - 1 is not exactly 0.10 in floating point,
                // and the boundary must pass.
                match baseline_p95.filter(|b| *b > 0.0) {
                    Some(b) if entry.ns_p95 > b * (1.0 + max_pct / 100.0) => {
                        reasons.push(format!(
                            "p95 regressed {:+.1}% vs baseline {} (limit {max_pct}%)",
                            delta_pct.expect("baseline implies delta"),
                            format_ns(b)
                        ))
                    }
                    Some(_) => {}
                    None => report.warnings.push(format!(
                        "{}: no baseline in window (first appearance in {}): \
                         regression check skipped",
                        entry.key(),
                        file.report.date
                    )),
                }
            }
            let passed = reasons.is_empty();
            report.passed &= passed;
            report.checks.push(GateCheck {
                run_date: file.report.date.clone(),
                suite: entry.suite.clone(),
                id: entry.id.clone(),
                ns_p95: entry.ns_p95,
                baseline_p95,
                delta_pct,
                passed,
                reason: reasons.join("; "),
            });
        }
    }
    if !any_selected {
        report.warnings.push(
            "no benchmarks matched the suite/filter selection: gate passes vacuously".to_string(),
        );
    }
    report
}

/// Renders a gate report as text: one row per check, then warnings and
/// the verdict.
pub fn gate_table(report: &GateReport) -> String {
    let mut table = TextTable::new(vec![
        "run", "suite", "benchmark", "p95", "baseline", "delta", "verdict",
    ]);
    for c in &report.checks {
        table.row(vec![
            c.run_date.clone(),
            c.suite.clone(),
            c.id.clone(),
            format_ns(c.ns_p95),
            c.baseline_p95.map_or("-".into(), format_ns),
            c.delta_pct.map_or("-".into(), |d| format!("{d:+.1}%")),
            if c.passed {
                "pass".into()
            } else {
                format!("FAIL: {}", c.reason)
            },
        ]);
    }
    let mut out = table.render();
    for w in &report.warnings {
        out.push_str(&format!("warning: {w}\n"));
    }
    out.push_str(&format!(
        "\nbench gate: {} ({} run(s), {} check(s))\n",
        if report.passed { "PASS" } else { "FAIL" },
        report.runs_evaluated,
        report.checks.len()
    ));
    out
}

impl GateReport {
    /// JSON form of the verdict, for `--format json`.
    pub fn to_json(&self) -> Json {
        let checks: Vec<Json> = self
            .checks
            .iter()
            .map(|c| {
                Json::object()
                    .insert("run_date", c.run_date.as_str())
                    .insert("suite", c.suite.as_str())
                    .insert("id", c.id.as_str())
                    .insert("ns_p95", c.ns_p95)
                    .insert("baseline_p95", c.baseline_p95)
                    .insert("delta_pct", c.delta_pct)
                    .insert("passed", c.passed)
                    .insert("reason", c.reason.as_str())
            })
            .collect();
        Json::object()
            .insert("passed", self.passed)
            .insert("runs_evaluated", self.runs_evaluated)
            .insert("checks", Json::Array(checks))
            .insert(
                "warnings",
                Json::Array(
                    self.warnings
                        .iter()
                        .map(|w| Json::String(w.clone()))
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(date: &str, entries: &[(&str, &str, f64)]) -> HistoryFile {
        HistoryFile {
            name: format!("BENCH_{date}.json"),
            report: Report {
                date: date.to_string(),
                created_utc: format!("{date}T00:00:00Z"),
                git_rev: "test".to_string(),
                entries: entries
                    .iter()
                    .map(|(suite, id, p95)| Entry {
                        suite: suite.to_string(),
                        id: id.to_string(),
                        ns_p50: *p95 * 0.8,
                        ns_p95: *p95,
                        ns_min: *p95 * 0.5,
                        ns_max: *p95 * 1.1,
                        ns_mean: *p95 * 0.85,
                        throughput_per_s: 1e9 / (*p95 * 0.8),
                        samples: 10,
                        iters_per_sample: 100,
                    })
                    .collect(),
            },
        }
    }

    #[test]
    fn line_col_counts_from_one() {
        let text = "ab\ncd\nef";
        assert_eq!(line_col(text, 0), (1, 1));
        assert_eq!(line_col(text, 4), (2, 2));
        assert_eq!(line_col(text, 7), (3, 2));
    }

    #[test]
    fn trend_tracks_series_and_delta() {
        let history = vec![
            report("2026-01-01", &[("kernels", "gemm/64", 100.0)]),
            report("2026-01-02", &[("kernels", "gemm/64", 110.0)]),
            report("2026-01-03", &[("kernels", "gemm/64", 121.0)]),
        ];
        let rows = trend(&history, None, None, 3);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].points.len(), 3);
        // Baseline = median of {100, 110} = 100 (nearest-rank p50 of a
        // 2-sample set is the lower one); latest 121 → +21%.
        assert_eq!(rows[0].baseline_p95, Some(100.0));
        let delta = rows[0].delta_pct.unwrap();
        assert!((delta - 21.0).abs() < 1e-9, "delta {delta}");
        // Filters narrow the key set.
        assert!(trend(&history, Some("models"), None, 3).is_empty());
        assert!(trend(&history, None, Some("nothing"), 3).is_empty());
    }

    #[test]
    fn gate_empty_history_passes_with_warning() {
        let verdict = gate(&[], &GateConfig::default());
        assert!(verdict.passed);
        assert_eq!(verdict.runs_evaluated, 0);
        assert!(verdict.warnings[0].contains("passes vacuously"));
    }

    #[test]
    fn gate_regression_boundary_is_inclusive() {
        let config = GateConfig {
            max_p95_regression_pct: Some(10.0),
            window_size: 1,
            ..GateConfig::default()
        };
        // Exactly +10% passes…
        let at = vec![
            report("2026-01-01", &[("kernels", "gemm", 100.0)]),
            report("2026-01-02", &[("kernels", "gemm", 110.0)]),
        ];
        assert!(gate(&at, &config).passed);
        // …just above fails.
        let over = vec![
            report("2026-01-01", &[("kernels", "gemm", 100.0)]),
            report("2026-01-02", &[("kernels", "gemm", 110.2)]),
        ];
        let verdict = gate(&over, &config);
        assert!(!verdict.passed);
        assert!(verdict.checks.iter().any(|c| c.reason.contains("regressed")));
    }

    #[test]
    fn gate_threshold_ceiling() {
        let config = GateConfig {
            threshold_p95_ms: Some(1.0),
            ..GateConfig::default()
        };
        let ok = vec![report("2026-01-01", &[("kernels", "gemm", 0.9e6)])];
        assert!(gate(&ok, &config).passed);
        let slow = vec![report("2026-01-01", &[("kernels", "gemm", 1.1e6)])];
        let verdict = gate(&slow, &config);
        assert!(!verdict.passed);
        assert!(verdict.checks[0].reason.contains("threshold"));
    }

    #[test]
    fn gate_first_appearance_passes_with_warning() {
        let config = GateConfig {
            max_p95_regression_pct: Some(5.0),
            ..GateConfig::default()
        };
        let history = vec![report("2026-01-01", &[("kernels", "gemm", 100.0)])];
        let verdict = gate(&history, &config);
        assert!(verdict.passed);
        assert!(verdict
            .warnings
            .iter()
            .any(|w| w.contains("no baseline")));
    }

    #[test]
    fn gate_required_passes_hysteresis() {
        let config = GateConfig {
            max_p95_regression_pct: Some(10.0),
            window_size: 1,
            required_passes: 2,
            ..GateConfig::default()
        };
        // A regression followed by a recovery still fails: the
        // regressed run is inside the required window.
        let regress_then_recover = vec![
            report("2026-01-01", &[("kernels", "gemm", 100.0)]),
            report("2026-01-02", &[("kernels", "gemm", 150.0)]),
            report("2026-01-03", &[("kernels", "gemm", 100.0)]),
        ];
        let verdict = gate(&regress_then_recover, &config);
        assert!(!verdict.passed, "one bad run inside the window must fail");
        assert_eq!(verdict.runs_evaluated, 2);
        // Two clean runs after the regression pass.
        let recovered = vec![
            report("2026-01-01", &[("kernels", "gemm", 150.0)]),
            report("2026-01-02", &[("kernels", "gemm", 100.0)]),
            report("2026-01-03", &[("kernels", "gemm", 100.0)]),
        ];
        assert!(gate(&recovered, &config).passed);
        // required_passes longer than history evaluates what exists
        // and warns.
        let short = vec![report("2026-01-01", &[("kernels", "gemm", 100.0)])];
        let verdict = gate(&short, &config);
        assert!(verdict.passed);
        assert!(verdict.warnings.iter().any(|w| w.contains("required_passes")));
    }

    #[test]
    fn gate_window_median_absorbs_single_spike() {
        // Window of 3 with one outlier in the baseline: the median
        // ignores it.
        let config = GateConfig {
            max_p95_regression_pct: Some(10.0),
            window_size: 3,
            ..GateConfig::default()
        };
        let history = vec![
            report("2026-01-01", &[("kernels", "gemm", 100.0)]),
            report("2026-01-02", &[("kernels", "gemm", 500.0)]),
            report("2026-01-03", &[("kernels", "gemm", 102.0)]),
            report("2026-01-04", &[("kernels", "gemm", 105.0)]),
        ];
        let verdict = gate(&history, &config);
        assert!(verdict.passed, "{}", gate_table(&verdict));
        // Baseline is the median of {100, 500, 102} = 102.
        assert_eq!(verdict.checks[0].baseline_p95, Some(102.0));
    }

    #[test]
    fn gate_unmatched_selection_warns() {
        let history = vec![report("2026-01-01", &[("kernels", "gemm", 1.0)])];
        let config = GateConfig {
            suite: Some("models".to_string()),
            ..GateConfig::default()
        };
        let verdict = gate(&history, &config);
        assert!(verdict.passed);
        assert!(verdict.warnings[0].contains("no benchmarks matched"));
    }
}
