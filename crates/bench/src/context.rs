//! Experiment scaling knobs.

use ecad_dataset::benchmarks::Benchmark;
use ecad_mlp::TrainConfig;

/// How much compute an experiment run may spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes on a laptop: reduced sample counts, epochs, and
    /// evolutionary budgets. The default.
    Quick,
    /// Closer to the paper's budgets (hours). Same code paths.
    Full,
    /// Seconds; used by tests and Criterion benches to keep the harness
    /// paths hot without real training budgets.
    Smoke,
}

/// Shared configuration for all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentContext {
    /// Budget scale.
    pub scale: Scale,
    /// Master seed; every experiment derives sub-seeds from it.
    pub seed: u64,
    /// Worker threads per search (1 = deterministic).
    pub threads: usize,
}

impl ExperimentContext {
    /// Quick-scale context with seed 7, single-threaded.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 7,
            threads: 1,
        }
    }

    /// Full-scale context.
    pub fn full() -> Self {
        Self {
            scale: Scale::Full,
            ..Self::quick()
        }
    }

    /// Smoke-scale context (tests / benches).
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Smoke,
            ..Self::quick()
        }
    }

    /// Sample count to generate for `b` at this scale.
    pub fn samples(&self, b: Benchmark) -> usize {
        use Benchmark::*;
        match self.scale {
            Scale::Full => ecad_dataset::benchmarks::default_samples(b).max(2000),
            Scale::Quick => match b {
                Mnist | FashionMnist => 1600,
                CreditG => 800,
                Har => 1200,
                Phishing => 1600,
                Bioresponse => 600,
            },
            Scale::Smoke => 160,
        }
    }

    /// Evolutionary evaluation budget at this scale.
    pub fn evaluations(&self) -> usize {
        match self.scale {
            Scale::Full => 400,
            Scale::Quick => 36,
            Scale::Smoke => 8,
        }
    }

    /// Population size at this scale.
    pub fn population(&self) -> usize {
        match self.scale {
            Scale::Full => 24,
            Scale::Quick => 12,
            Scale::Smoke => 4,
        }
    }

    /// Per-candidate trainer configuration at this scale.
    pub fn trainer(&self) -> TrainConfig {
        let mut cfg = TrainConfig::fast();
        match self.scale {
            Scale::Full => {
                cfg.epochs = 40;
                cfg.patience = 6;
            }
            Scale::Quick => {
                cfg.epochs = 14;
                cfg.patience = 4;
            }
            Scale::Smoke => {
                cfg.epochs = 3;
                cfg.patience = 0;
            }
        }
        cfg
    }

    /// Trainer for the final refit of a found topology (more epochs).
    pub fn refit_trainer(&self) -> TrainConfig {
        let mut cfg = self.trainer();
        cfg.epochs *= 2;
        cfg.patience = cfg.patience.max(4) * 2;
        cfg
    }

    /// Upper bound on hidden-layer width for a dataset (keeps the
    /// search space proportionate to the input width and the budget).
    pub fn max_neurons(&self, b: Benchmark) -> usize {
        let cap = match self.scale {
            Scale::Full => 512,
            Scale::Quick => 192,
            Scale::Smoke => 32,
        };
        cap.min(b.n_features().max(32))
    }

    /// Derives a deterministic sub-seed for a named experiment stage.
    pub fn sub_seed(&self, tag: &str) -> u64 {
        let mut h: u64 = self.seed ^ 0x9e3779b97f4a7c15;
        for b in tag.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_order_budgets() {
        let smoke = ExperimentContext::smoke();
        let quick = ExperimentContext::quick();
        let full = ExperimentContext::full();
        assert!(smoke.evaluations() < quick.evaluations());
        assert!(quick.evaluations() < full.evaluations());
        assert!(smoke.trainer().epochs < full.trainer().epochs);
    }

    #[test]
    fn samples_positive_for_all_benchmarks() {
        let ctx = ExperimentContext::quick();
        for b in Benchmark::ALL {
            assert!(ctx.samples(b) > 0);
        }
    }

    #[test]
    fn sub_seeds_differ_by_tag_and_are_stable() {
        let ctx = ExperimentContext::quick();
        assert_ne!(ctx.sub_seed("a"), ctx.sub_seed("b"));
        assert_eq!(ctx.sub_seed("table1"), ctx.sub_seed("table1"));
    }

    #[test]
    fn max_neurons_respects_tiny_inputs() {
        let ctx = ExperimentContext::quick();
        // credit-g has 20 features; cap must still allow useful widths.
        assert!(ctx.max_neurons(Benchmark::CreditG) >= 32);
        assert!(ctx.max_neurons(Benchmark::Mnist) <= 192);
    }
}
