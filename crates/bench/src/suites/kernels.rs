//! Compute-kernel benchmarks: GEMM variants and MLP training steps.
//!
//! These are the hot paths of the simulation worker — per-candidate
//! evaluation time (the paper's Table III column) is dominated by them.
//! This is also the suite CI's `bench-gate` job runs: it is cheap
//! enough to measure on every push.

use ecad_mlp::{Activation, Mlp, MlpTopology};
use ecad_tensor::{gemm, init, ops, Matrix};
use rt::bench::{black_box, BenchmarkId, Criterion};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    bench_gemm(c);
    bench_gemm_mlp_shapes(c);
    bench_backprop_kernels(c);
    bench_softmax_and_loss(c);
    bench_mlp_train_step(c);
    bench_matrix_ops(c);
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    for &n in &[32usize, 64, 128, 256] {
        let mut rng = StdRng::seed_from_u64(0);
        let a = init::uniform(&mut rng, n, n, 1.0);
        let b = init::uniform(&mut rng, n, n, 1.0);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bench, _| {
            bench.iter(|| gemm::matmul(black_box(&a), black_box(&b)))
        });
        if n <= 128 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
                bench.iter(|| gemm::matmul_naive(black_box(&a), black_box(&b)))
            });
        }
    }
    group.finish();
}

fn bench_gemm_mlp_shapes(c: &mut Criterion) {
    // The first-layer GEMM of an MNIST-shaped candidate: 32 x 784 x 128.
    let mut rng = StdRng::seed_from_u64(1);
    let x = init::uniform(&mut rng, 32, 784, 1.0);
    let w = init::uniform(&mut rng, 784, 128, 1.0);
    let bias = vec![0.1f32; 128];
    c.bench_function("gemm/mnist_layer_32x784x128", |b| {
        b.iter(|| gemm::matmul_bias(black_box(&x), black_box(&w), black_box(&bias)))
    });
}

fn bench_backprop_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let x = init::uniform(&mut rng, 32, 256, 1.0);
    let dy = init::uniform(&mut rng, 32, 128, 1.0);
    let w = init::uniform(&mut rng, 256, 128, 1.0);
    c.bench_function("gemm/at_b_weight_grad", |b| {
        b.iter(|| gemm::matmul_at_b(black_box(&x), black_box(&dy)))
    });
    c.bench_function("gemm/a_bt_delta", |b| {
        b.iter(|| gemm::matmul_a_bt(black_box(&dy), black_box(&w)))
    });
}

fn bench_softmax_and_loss(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let logits = init::uniform(&mut rng, 256, 10, 5.0);
    let labels: Vec<usize> = (0..256).map(|i| i % 10).collect();
    let targets = ops::one_hot(&labels, 10);
    c.bench_function("ops/softmax_256x10", |b| {
        b.iter(|| ops::softmax_rows(black_box(&logits)))
    });
    let probs = ops::softmax_rows(&logits);
    c.bench_function("ops/cross_entropy_256x10", |b| {
        b.iter(|| ops::cross_entropy(black_box(&probs), black_box(&targets)))
    });
}

fn bench_mlp_train_step(c: &mut Criterion) {
    let topo = MlpTopology::builder(561, 6)
        .hidden(128, Activation::Relu, true)
        .hidden(64, Activation::Relu, true)
        .build();
    let mut rng = StdRng::seed_from_u64(4);
    let net = Mlp::from_topology(&topo, &mut rng);
    let x = init::uniform(&mut rng, 32, 561, 1.0);
    let labels: Vec<usize> = (0..32).map(|i| i % 6).collect();
    let t = ops::one_hot(&labels, 6);
    c.bench_function("mlp/har_forward_batch32", |b| {
        b.iter(|| net.forward(black_box(&x)))
    });
    c.bench_function("mlp/har_backprop_batch32", |b| {
        b.iter(|| net.backprop(black_box(&x), black_box(&t)))
    });
}

fn bench_matrix_ops(c: &mut Criterion) {
    let m = Matrix::from_fn(512, 512, |r, c2| (r * 512 + c2) as f32);
    c.bench_function("matrix/transpose_512", |b| {
        b.iter(|| black_box(&m).transposed())
    });
    c.bench_function("matrix/argmax_rows_512", |b| {
        b.iter(|| black_box(&m).argmax_rows())
    });
}
