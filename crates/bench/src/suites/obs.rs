//! Observability-plane benchmarks: labeled-metric emission (the hot
//! path every remote-slot `Stats` absorption walks), labeled-key
//! construction with escaping, and Prometheus text rendering of a
//! labeled registry — the scrape-side cost of `--serve`.

use rt::bench::{black_box, Criterion};
use rt::obs::{labeled_key, Obs};

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    bench_labeled_key(c);
    bench_labeled_emission(c);
    bench_prometheus_render(c);
}

fn bench_labeled_key(c: &mut Criterion) {
    c.bench_function("obs/labeled_key", |bench| {
        bench.iter(|| {
            labeled_key(
                black_box("cluster.worker_jobs"),
                black_box(&[("worker", "10.0.0.1:7000"), ("slot", "s0")]),
            )
        })
    });
    c.bench_function("obs/labeled_key_escaped", |bench| {
        bench.iter(|| {
            labeled_key(
                black_box("cluster.worker_jobs"),
                black_box(&[("worker", "host\"with\\weird\nchars:7000")]),
            )
        })
    });
}

fn bench_labeled_emission(c: &mut Criterion) {
    let obs = Obs::builder().build();
    // Handle reuse is the engine's pattern (SlotTelemetry caches its
    // gauges); registry lookup per emission is the naive baseline.
    let gauge = obs.gauge_with("cluster.worker_jobs", &[("worker", "10.0.0.1:7000")]);
    c.bench_function("obs/labeled_gauge_set_cached", |bench| {
        bench.iter(|| gauge.set(black_box(42.0)))
    });
    c.bench_function("obs/labeled_gauge_set_lookup", |bench| {
        bench.iter(|| {
            obs.gauge_with("cluster.worker_jobs", &[("worker", "10.0.0.1:7000")])
                .set(black_box(42.0))
        })
    });
    let hist = obs.histogram_with("cluster.worker_eval_s", &[("worker", "10.0.0.1:7000")]);
    c.bench_function("obs/labeled_histogram_record", |bench| {
        bench.iter(|| hist.record(black_box(0.125)))
    });
}

fn bench_prometheus_render(c: &mut Criterion) {
    let obs = Obs::builder().build();
    // A registry shaped like a mid-size cluster run: 16 workers, five
    // labeled gauge families plus a latency histogram each.
    for i in 0..16 {
        let addr = format!("10.0.0.{i}:7000");
        let labels: &[(&str, &str)] = &[("worker", addr.as_str())];
        obs.gauge_with("cluster.worker_jobs", labels).set(i as f64);
        obs.gauge_with("cluster.worker_train_s", labels).set(1.5);
        obs.gauge_with("cluster.worker_hw_s", labels).set(0.5);
        obs.gauge_with("cluster.worker_panics", labels).set(0.0);
        obs.gauge_with("cluster.worker_migrants", labels).set(2.0);
        let h = obs.histogram_with("cluster.worker_eval_s", labels);
        for k in 0..8 {
            h.record(0.01 * f64::from(k + 1));
        }
    }
    c.bench_function("obs/prometheus_text_labeled", |bench| {
        bench.iter(|| rt::http::prometheus_text(black_box(&obs.snapshot())))
    });
}
