//! Evolutionary-engine benchmarks: genetic operators, cache hashing,
//! Pareto analysis, and a full GA loop over a synthetic fitness
//! landscape (no MLP training, isolating engine overhead).

use std::sync::Arc;

use ecad_core::engine::{Engine, EvolutionConfig, SelectionMode};
use ecad_core::fitness::ObjectiveSet;
use ecad_core::genome::CandidateGenome;
use ecad_core::measurement::{HwMetrics, Measurement};
use ecad_core::pareto;
use ecad_core::space::SearchSpace;
use ecad_core::workers::Evaluator;
use rt::bench::{black_box, Criterion};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    bench_genetic_operators(c);
    bench_cache_key(c);
    bench_pareto(c);
    bench_full_ga_loop(c);
}

struct ToyEvaluator;

impl Evaluator for ToyEvaluator {
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
        let neurons = genome.nna.total_neurons() as f32;
        let accuracy = 1.0 - ((neurons - 256.0).abs() / 512.0).min(1.0);
        Measurement {
            accuracy,
            train_accuracy: accuracy,
            params: neurons as usize * 10,
            neurons: neurons as usize,
            hw: HwMetrics::Gpu {
                outputs_per_s: 1e6 / (1.0 + neurons as f64),
                efficiency: 0.01,
                latency_s: 1e-4,
                effective_gflops: 1.0,
                power_w: 50.0,
            },
            eval_time_s: 0.0,
            train_time_s: 0.0,
            hw_time_s: 0.0,
        }
    }

    fn target_name(&self) -> String {
        "toy".to_string()
    }
}

fn bench_genetic_operators(c: &mut Criterion) {
    let space = SearchSpace::fpga_default();
    let mut rng = StdRng::seed_from_u64(0);
    let a = space.sample(&mut rng);
    let b = space.sample(&mut rng);
    c.bench_function("space/sample", |bench| {
        let mut rng = StdRng::seed_from_u64(1);
        bench.iter(|| space.sample(&mut rng))
    });
    c.bench_function("space/mutate", |bench| {
        let mut rng = StdRng::seed_from_u64(2);
        bench.iter(|| space.mutate(black_box(&a), &mut rng))
    });
    c.bench_function("space/crossover", |bench| {
        let mut rng = StdRng::seed_from_u64(3);
        bench.iter(|| space.crossover(black_box(&a), black_box(&b), &mut rng))
    });
}

fn bench_cache_key(c: &mut Criterion) {
    let space = SearchSpace::fpga_default();
    let mut rng = StdRng::seed_from_u64(4);
    let g = space.sample(&mut rng);
    c.bench_function("genome/cache_key", |bench| {
        bench.iter(|| black_box(&g).cache_key())
    });
}

fn bench_pareto(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    use rt::rand::Rng;
    let points: Vec<Vec<f64>> = (0..1000)
        .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    c.bench_function("pareto/front_1000", |bench| {
        bench.iter(|| pareto::pareto_front(black_box(&points)))
    });
    let small: Vec<Vec<f64>> = points[..200].to_vec();
    c.bench_function("pareto/nds_200", |bench| {
        bench.iter(|| pareto::non_dominated_sort(black_box(&small)))
    });
    c.bench_function("pareto/crowding_1000", |bench| {
        bench.iter(|| pareto::crowding_distance(black_box(&points)))
    });
}

fn bench_full_ga_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("steady_state_200_evals", |bench| {
        bench.iter(|| {
            let cfg = EvolutionConfig {
                population: 16,
                evaluations: 200,
                tournament: 3,
                crossover_rate: 0.5,
                seed: 9,
                threads: 1,
                selection: SelectionMode::WeightedScalar,
                ..EvolutionConfig::small()
            };
            Engine::new(
                Arc::new(ToyEvaluator),
                SearchSpace::gpu_default(),
                ObjectiveSet::accuracy_only(),
                cfg,
            )
            .run()
        })
    });
    group.finish();
}
