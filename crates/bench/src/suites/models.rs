//! Hardware-model benchmarks.
//!
//! The paper's hardware database worker exists because the analytical
//! model "assess[es] many configurations in a relatively swift manner
//! compared to running through synthesis tools" — these benches verify
//! the models are indeed microsecond-fast, which is what lets the
//! evolutionary engine score thousands of candidates.

use ecad_hw::fpga::{FpgaDevice, FpgaModel, GridConfig, PhysicalModel};
use ecad_hw::gpu::{GpuDevice, GpuModel};
use rt::bench::{black_box, BenchmarkId, Criterion};

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    bench_fpga_model(c);
    bench_fpga_deep_network(c);
    bench_physical_model(c);
    bench_gpu_model(c);
    bench_grid_validation(c);
}

fn mlp_shapes(batch: usize) -> Vec<(usize, usize, usize)> {
    vec![(batch, 784, 256), (batch, 256, 128), (batch, 128, 10)]
}

fn bench_fpga_model(c: &mut Criterion) {
    let model = FpgaModel::new(FpgaDevice::arria10_gx1150(1));
    let grid = GridConfig::new(8, 8, 4, 4, 8).unwrap();
    let mut group = c.benchmark_group("fpga_model");
    for &batch in &[1usize, 32, 256] {
        let shapes = mlp_shapes(batch);
        group.bench_with_input(BenchmarkId::new("evaluate", batch), &batch, |b, _| {
            b.iter(|| {
                model
                    .evaluate(black_box(&grid), black_box(&shapes))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_fpga_deep_network(c: &mut Criterion) {
    let model = FpgaModel::new(FpgaDevice::stratix10_2800(4));
    let grid = GridConfig::new(16, 16, 8, 8, 8).unwrap();
    // An 8-layer candidate: the deepest genome the search space allows,
    // plus margin.
    let shapes: Vec<(usize, usize, usize)> = (0..8)
        .map(|i| (64, 512 >> (i / 3), 512 >> (i / 3)))
        .collect();
    c.bench_function("fpga_model/deep_8_layers", |b| {
        b.iter(|| {
            model
                .evaluate(black_box(&grid), black_box(&shapes))
                .unwrap()
        })
    });
}

fn bench_physical_model(c: &mut Criterion) {
    let model = PhysicalModel::new(FpgaDevice::arria10_gx1150(1));
    let grid = GridConfig::new(8, 8, 4, 4, 8).unwrap();
    c.bench_function("physical_model/report", |b| {
        b.iter(|| model.report(black_box(&grid)).unwrap())
    });
}

fn bench_gpu_model(c: &mut Criterion) {
    let model = GpuModel::new(GpuDevice::titan_x());
    let biases = vec![true, true, true];
    let mut group = c.benchmark_group("gpu_model");
    for &batch in &[32usize, 1024] {
        let shapes = mlp_shapes(batch);
        group.bench_with_input(BenchmarkId::new("evaluate", batch), &batch, |b, _| {
            b.iter(|| model.evaluate(black_box(&shapes), black_box(&biases)))
        });
    }
    group.finish();
}

fn bench_grid_validation(c: &mut Criterion) {
    let device = FpgaDevice::arria10_gx1150(1);
    let grid = GridConfig::new(8, 8, 4, 4, 8).unwrap();
    c.bench_function("grid/validate_for", |b| {
        b.iter(|| black_box(&grid).validate_for(black_box(&device)))
    });
}
