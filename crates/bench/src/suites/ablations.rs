//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group isolates one mechanism and measures its cost or effect
//! with everything else held fixed:
//!
//! * **dedup cache** — search wall time in a collision-heavy space with
//!   the cache exercised vs a collision-free space (the cache's value
//!   is exactly the paper's Table III note);
//! * **selection mode** — weighted-scalar vs NSGA-II survivor
//!   selection, same budget;
//! * **tournament size** — selection-pressure knob;
//! * **interleaving** — the double-buffer depth's effect on FPGA model
//!   evaluation (deeper interleave = fewer, larger blocks; the
//!   bandwidth-relief mechanism of §III-C);
//! * **worker threads** — engine scaling with an artificial per-eval
//!   cost.

use std::sync::Arc;

use ecad_core::engine::{Engine, EvolutionConfig, SelectionMode};
use ecad_core::fitness::{Objective, ObjectiveSet};
use ecad_core::genome::CandidateGenome;
use ecad_core::measurement::{HwMetrics, Measurement};
use ecad_core::space::SearchSpace;
use ecad_core::workers::Evaluator;
use ecad_hw::fpga::{FpgaDevice, FpgaModel, GridConfig};
use rt::bench::{black_box, BenchmarkId, Criterion};

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    ablate_cache(c);
    ablate_selection_mode(c);
    ablate_tournament_size(c);
    ablate_interleave(c);
    ablate_threads(c);
}

/// Synthetic evaluator with an optional artificial cost per call.
struct ToyEvaluator {
    spin_ns: u64,
}

impl Evaluator for ToyEvaluator {
    fn evaluate(&self, genome: &CandidateGenome) -> Measurement {
        if self.spin_ns > 0 {
            let t = std::time::Instant::now();
            while (t.elapsed().as_nanos() as u64) < self.spin_ns {
                std::hint::spin_loop();
            }
        }
        let neurons = genome.nna.total_neurons() as f32;
        let accuracy = 1.0 - ((neurons - 256.0).abs() / 512.0).min(1.0);
        Measurement {
            accuracy,
            train_accuracy: accuracy,
            params: neurons as usize * 10,
            neurons: neurons as usize,
            hw: HwMetrics::Gpu {
                outputs_per_s: 1e6 / (1.0 + neurons as f64),
                efficiency: 0.01,
                latency_s: 1e-4,
                effective_gflops: 1.0,
                power_w: 50.0,
            },
            eval_time_s: 0.0,
            train_time_s: 0.0,
            hw_time_s: 0.0,
        }
    }

    fn target_name(&self) -> String {
        "toy".to_string()
    }
}

fn config(evals: usize) -> EvolutionConfig {
    EvolutionConfig {
        population: 16,
        evaluations: evals,
        tournament: 3,
        crossover_rate: 0.5,
        seed: 7,
        threads: 1,
        selection: SelectionMode::WeightedScalar,
        ..EvolutionConfig::small()
    }
}

fn run(space: SearchSpace, cfg: EvolutionConfig, spin_ns: u64) -> usize {
    Engine::new(
        Arc::new(ToyEvaluator { spin_ns }),
        space,
        ObjectiveSet::new(vec![
            Objective::maximize("accuracy"),
            Objective::maximize("log_throughput").with_weight(0.02),
        ]),
        cfg,
    )
    .run()
    .stats
    .models_evaluated
}

/// Cache value: a tiny space forces duplicate candidates; with the
/// artificial 50 µs evaluation cost, every cache hit saves that cost.
fn ablate_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/cache");
    g.sample_size(10);
    let collision_heavy = SearchSpace::gpu_default()
        .with_layers(1, 1)
        .with_neurons(4, 10);
    let collision_free = SearchSpace::gpu_default();
    g.bench_function("tiny_space_cache_hits", |b| {
        b.iter(|| run(collision_heavy.clone(), config(150), 50_000))
    });
    g.bench_function("large_space_no_hits", |b| {
        b.iter(|| run(collision_free.clone(), config(150), 50_000))
    });
    g.finish();
}

fn ablate_selection_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/selection");
    g.sample_size(10);
    for (name, mode) in [
        ("weighted_scalar", SelectionMode::WeightedScalar),
        ("nsga2", SelectionMode::Nsga2),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = EvolutionConfig {
                    selection: mode,
                    ..config(200)
                };
                run(SearchSpace::gpu_default(), cfg, 0)
            })
        });
    }
    g.finish();
}

fn ablate_tournament_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/tournament");
    g.sample_size(10);
    for t in [2usize, 3, 5, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let cfg = EvolutionConfig {
                    tournament: t,
                    ..config(200)
                };
                run(SearchSpace::gpu_default(), cfg, 0)
            })
        });
    }
    g.finish();
}

/// The §III-C interleave mechanism: deeper double buffers amortize a
/// tile load over more compute cycles, trading M20K for bandwidth.
fn ablate_interleave(c: &mut Criterion) {
    let model = FpgaModel::new(FpgaDevice::arria10_gx1150(1));
    let shapes = [(64usize, 2048usize, 2048usize)];
    let mut g = c.benchmark_group("ablation/interleave");
    for il in [1u32, 4, 16] {
        let grid = GridConfig::new(16, 16, il, il, 4).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(il), &il, |b, _| {
            b.iter(|| {
                model
                    .evaluate(black_box(&grid), black_box(&shapes))
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn ablate_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cfg = EvolutionConfig {
                        threads,
                        ..config(100)
                    };
                    // 200 µs artificial evaluation cost: enough for the
                    // pool to matter.
                    run(SearchSpace::gpu_default(), cfg, 200_000)
                })
            },
        );
    }
    g.finish();
}
