//! One benchmark per paper artifact: each runs the corresponding
//! experiment end-to-end at smoke scale, keeping every harness path
//! (dataset generation → search → model scoring → aggregation) hot and
//! measured. The `experiments` binary runs the same code at quick/full
//! scale to regenerate the actual tables and figures.

use crate::experiments::{fig2, fig3, fig4, table1, table2, table3, table4};
use crate::ExperimentContext;
use rt::bench::Criterion;

/// Registers the suite's benchmarks on `c`.
pub fn register(c: &mut Criterion) {
    bench_artifact(c, "table1_10fold_accuracy", |ctx| {
        table1::run(ctx);
    });
    bench_artifact(c, "table2_1fold_accuracy", |ctx| {
        table2::run(ctx);
    });
    bench_artifact(c, "table3_runtime_stats", |ctx| {
        table3::run(ctx);
    });
    bench_artifact(c, "table4_pareto_s10_vs_tx", |ctx| {
        table4::run(ctx);
    });
    bench_artifact(c, "fig2_har_acc_vs_throughput", |ctx| {
        fig2::run(ctx);
    });
    bench_artifact(c, "fig3_ddr_bank_scaling", |ctx| {
        fig3::run(ctx);
    });
    bench_artifact(c, "fig4_efficiency_s10_vs_tx", |ctx| {
        fig4::run(ctx);
    });
}

fn bench_artifact(c: &mut Criterion, id: &str, mut run: impl FnMut(&ExperimentContext)) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    // The context is rebuilt per iteration, exactly as the original
    // bench targets did — its cost is part of the harness path.
    g.bench_function(id, |b| b.iter(|| run(&ExperimentContext::smoke())));
    g.finish();
}
