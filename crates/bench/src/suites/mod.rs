//! The benchmark suites, as library code.
//!
//! Each suite is a set of `rt::bench` registrations that used to live
//! in its `benches/<name>.rs` target; the targets are now thin
//! wrappers over [`bench_main`] so the same suites can run in-process
//! under `ecad bench run` (which needs the collected [`BenchResult`]s
//! rather than printed text). Benchmark IDs are stable identifiers —
//! `BENCH_*.json` history, `ecad bench trend`, and the regression gate
//! key on them — so renaming one orphans its recorded history.

use std::path::{Path, PathBuf};

use rt::bench::{BenchResult, Criterion, JsonOut, ReportMeta};

pub mod ablations;
pub mod engine;
pub mod experiments;
pub mod kernels;
pub mod models;
pub mod obs;

/// Every suite, in (name, registration) form — the single registry
/// `cargo bench` targets, `ecad bench run --suite`, and `--suite all`
/// share.
pub const ALL: &[(&str, fn(&mut Criterion))] = &[
    ("ablations", ablations::register),
    ("engine", engine::register),
    ("experiments", experiments::register),
    ("kernels", kernels::register),
    ("models", models::register),
    ("obs", obs::register),
];

/// The registered suite names, in registry (sorted) order.
pub fn names() -> Vec<&'static str> {
    ALL.iter().map(|(name, _)| *name).collect()
}

/// Runs one suite's registrations against `criterion`.
///
/// # Errors
///
/// Returns the unknown name back when no suite matches.
pub fn run_suite(name: &str, criterion: &mut Criterion) -> Result<(), String> {
    match ALL.iter().find(|(n, _)| *n == name) {
        Some((_, register)) => {
            register(criterion);
            Ok(())
        }
        None => Err(format!(
            "unknown suite {name:?} (known: {})",
            names().join(", ")
        )),
    }
}

/// The repository root, resolved from this crate's manifest directory
/// — where `BENCH_<date>.json` reports land by default.
pub fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Entry point for the `cargo bench` harness binaries: parses the
/// standard `rt::bench` arguments, runs the named suite, and — unless
/// `--test` or `--no-json` was given — merges the measurements into
/// `BENCH_<date>.json` at the repo root (or the `--json PATH`
/// override).
///
/// # Panics
///
/// Panics on an unknown suite name (a wiring bug in the bench target)
/// or when the report file cannot be written.
pub fn bench_main(suite: &str) {
    let mut criterion = Criterion::from_args();
    run_suite(suite, &mut criterion).expect("bench target names a registered suite");
    if criterion.is_test_mode() {
        return;
    }
    let results = criterion.take_results();
    let out = match criterion.json_out() {
        Some(JsonOut::Disabled) => return,
        Some(JsonOut::Path(path)) => PathBuf::from(path),
        None => {
            let root = repo_root();
            let meta = ReportMeta::capture(&root);
            root.join(rt::bench::bench_file_name(&meta.date))
        }
    };
    write_report(&out, suite, &results).expect("write BENCH report");
    println!(
        "wrote {} ({} benchmark(s), suite {suite})",
        out.display(),
        results.len()
    );
}

/// Merges `results` for `suite` into the report at `path`, stamping
/// fresh metadata resolved from the report's directory.
///
/// # Errors
///
/// Propagates the filesystem write error.
pub fn write_report(path: &Path, suite: &str, results: &[BenchResult]) -> std::io::Result<()> {
    let repo = path.parent().filter(|p| !p.as_os_str().is_empty());
    let meta = ReportMeta::capture(repo.unwrap_or_else(|| Path::new(".")));
    rt::bench::write_report_merged(path, suite, results, &meta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_resolves() {
        let names = names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "registry order is the display order");
        let mut c = Criterion::default();
        assert!(run_suite("no_such_suite", &mut c)
            .unwrap_err()
            .contains("kernels"));
    }

    /// Every suite body runs once in test mode: IDs stay registered and
    /// the closures stay executable. (`cargo bench -- --test` covers
    /// the same path per target; this keeps it in plain `cargo test`.)
    #[test]
    fn kernels_suite_registers_stable_ids() {
        let mut c = Criterion::default();
        c.quiet().filter("argmax");
        // Use a real (cheap) measurement to verify collection works
        // end-to-end through a suite.
        c.iters(1).sample_size(2);
        run_suite("kernels", &mut c).unwrap();
        let ids: Vec<&str> = c.results().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["matrix/argmax_rows_512"]);
    }
}
