//! # ecad-bench
//!
//! The experiment harness: one module per table and figure of the
//! paper's evaluation section, each regenerating the artifact's rows or
//! series from this repository's implementation.
//!
//! | Experiment | Paper artifact | Module |
//! |---|---|---|
//! | `table1` | Table I — top 10-fold accuracy vs baselines | [`experiments::table1`] |
//! | `table2` | Table II — top 1-fold accuracy (MNIST/Fashion-MNIST) | [`experiments::table2`] |
//! | `table3` | Table III — run-time statistics | [`experiments::table3`] |
//! | `table4` | Table IV — Pareto accuracy/throughput, S10 vs Titan X | [`experiments::table4`] |
//! | `fig2` | Fig 2 — accuracy vs throughput scatter (HAR) | [`experiments::fig2`] |
//! | `fig3` | Fig 3 — throughput/efficiency vs DDR banks (credit-g) | [`experiments::fig3`] |
//! | `fig4` | Fig 4 — hardware efficiency, S10 vs Titan X (MNIST) | [`experiments::fig4`] |
//!
//! Experiments run at a **scaled budget** by default (`Scale::Quick`) so
//! the whole suite finishes in minutes on a laptop; `Scale::Full` uses
//! larger datasets and budgets. Absolute numbers differ from the paper
//! (analytical hardware models, synthetic datasets — see `DESIGN.md`
//! §2); each experiment reports the paper's reference values next to
//! the measured ones and checks the qualitative claims ("who wins")
//! programmatically.

#![warn(missing_docs)]

pub mod context;
pub mod experiments;
pub mod history;
pub mod report;
pub mod suites;

pub use context::{ExperimentContext, Scale};
