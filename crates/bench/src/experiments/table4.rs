//! Table IV — best Pareto-frontier results when searching accuracy and
//! throughput: Stratix 10 (4 DDR banks) vs Titan X, two rows per
//! dataset.
//!
//! Protocol per dataset: a multi-objective (accuracy × log-throughput)
//! search against the Stratix 10 model; from the resulting Pareto front
//! take (a) the highest-accuracy point and (b) the highest-throughput
//! point within ~1.5 accuracy points of the top — the paper's "by
//! sacrificing just one point of accuracy" row. Each selected topology
//! is also timed on the Titan X model at a GPU-friendly batch, giving
//! the S10-vs-TX column pair.

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_hw::gpu::{GpuDevice, GpuModel};

use crate::context::ExperimentContext;
use crate::report::{acc, sci, TextTable};

use super::{dataset, run_search};

/// GPU batch used when re-timing a topology on the Titan X.
const GPU_BATCH: usize = 1024;

/// One Pareto row of Table IV.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Test accuracy of the candidate.
    pub accuracy: f32,
    /// Stratix 10 outputs per second.
    pub s10_outputs_per_s: f64,
    /// Titan X outputs per second for the same topology.
    pub tx_outputs_per_s: f64,
    /// Candidate genome description.
    pub genome: String,
}

/// Paper's Table IV reference rows for one dataset.
#[derive(Debug, Clone, Copy)]
pub struct PaperPareto {
    /// (accuracy, S10 outputs/s, TX outputs/s) for the top-accuracy row.
    pub top: (f32, f64, f64),
    /// Same for the throughput-leaning row.
    pub fast: (f32, f64, f64),
}

/// Full Table IV result.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// Two rows per dataset.
    pub rows: Vec<Table4Row>,
    /// Paper reference rows per dataset (paper order).
    pub paper: Vec<(String, PaperPareto)>,
}

impl Table4 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Dataset",
            "Accuracy",
            "S10 (output/s)",
            "TX (output/s)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.dataset.clone(),
                acc(r.accuracy),
                sci(r.s10_outputs_per_s),
                sci(r.tx_outputs_per_s),
            ]);
        }
        format!(
            "Table IV: Best Pareto Frontier Results (accuracy x throughput search)\n{}",
            t.render()
        )
    }

    /// Fraction of rows where the FPGA out-throughputs the GPU — the
    /// paper's "in the majority of cases the FPGA achieved higher
    /// performance than the GPU".
    pub fn fpga_win_fraction(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let wins = self
            .rows
            .iter()
            .filter(|r| r.s10_outputs_per_s > r.tx_outputs_per_s)
            .count();
        wins as f64 / self.rows.len() as f64
    }
}

/// The paper's Table IV values.
pub fn paper_pareto(b: Benchmark) -> PaperPareto {
    match b {
        Benchmark::Mnist => PaperPareto {
            top: (0.9841, 7.97e5, 7.73e5),
            fast: (0.9763, 2.45e6, 1.97e6),
        },
        Benchmark::FashionMnist => PaperPareto {
            top: (0.893, 4.8e5, 8.1e5),
            fast: (0.8850, 1.92e6, 2.3e6),
        },
        Benchmark::Har => PaperPareto {
            top: (0.996, 1.16e6, 9.59e5),
            fast: (0.985, 4.74e6, 2.46e6),
        },
        Benchmark::CreditG => PaperPareto {
            top: (0.83, 8.19e3, 1.59e6),
            fast: (0.82, 1.40e7, 1.23e6),
        },
        Benchmark::Bioresponse => PaperPareto {
            top: (0.798, 4.64e5, 1.34e6),
            fast: (0.7952, 1.36e6, 1.66e6),
        },
        Benchmark::Phishing => PaperPareto {
            top: (0.9675, 6.81e6, 2.27e6),
            fast: (0.9656, 1.16e7, 2.27e6),
        },
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Table4 {
    let mut rows = Vec::new();
    let mut paper = Vec::new();
    for &b in &Benchmark::ALL {
        let ds = dataset(ctx, b);
        let search = run_search(
            ctx,
            &ds,
            b,
            HwTarget::Fpga(ecad_hw::fpga::FpgaDevice::stratix10_2800(4)),
            ObjectiveSet::accuracy_and_throughput(),
            &format!("table4/{b}"),
        );
        let front = search.pareto_accuracy_throughput();
        if front.is_empty() {
            continue;
        }
        // Row (a): top accuracy on the front.
        let top = front[0];
        // Row (b): fastest point within 1.5 accuracy points of the top.
        let floor = top.measurement.accuracy - 0.015;
        let fast = front
            .iter()
            .filter(|e| e.measurement.accuracy >= floor)
            .max_by(|x, y| {
                x.measurement
                    .hw
                    .outputs_per_s()
                    .partial_cmp(&y.measurement.hw.outputs_per_s())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .copied()
            .unwrap_or(top);

        for candidate in [top, fast] {
            let topo = candidate
                .genome
                .nna
                .to_topology(ds.n_features(), ds.n_classes());
            let shapes = topo.gemm_shapes(GPU_BATCH);
            let mut biases: Vec<bool> =
                candidate.genome.nna.layers.iter().map(|l| l.bias).collect();
            biases.push(true);
            let tx = GpuModel::new(GpuDevice::titan_x()).evaluate(&shapes, &biases);
            rows.push(Table4Row {
                dataset: b.name().to_string(),
                accuracy: candidate.measurement.accuracy,
                s10_outputs_per_s: candidate.measurement.hw.outputs_per_s(),
                tx_outputs_per_s: tx.outputs_per_s,
                genome: candidate.genome.describe(),
            });
        }
        paper.push((b.name().to_string(), paper_pareto(b)));
    }
    Table4 { rows, paper }
}

impl rt::json::ToJson for Table4Row {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("dataset", &self.dataset)
            .insert("accuracy", &self.accuracy)
            .insert("s10_outputs_per_s", &self.s10_outputs_per_s)
            .insert("tx_outputs_per_s", &self.tx_outputs_per_s)
            .insert("genome", &self.genome)
    }
}

impl rt::json::ToJson for PaperPareto {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("top", &self.top)
            .insert("fast", &self.fast)
    }
}

impl rt::json::ToJson for Table4 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("rows", &self.rows)
            .insert("paper", &self.paper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_two_rows_per_dataset() {
        let ctx = ExperimentContext::smoke();
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 12);
        for pair in t.rows.chunks(2) {
            assert_eq!(pair[0].dataset, pair[1].dataset);
            // Row (a) has accuracy >= row (b); row (b) throughput >= (a).
            assert!(pair[0].accuracy >= pair[1].accuracy);
            assert!(pair[1].s10_outputs_per_s >= pair[0].s10_outputs_per_s);
        }
        assert!(t.render().contains("S10"));
    }

    #[test]
    fn paper_values_transcribed() {
        let p = paper_pareto(Benchmark::CreditG);
        assert!((p.fast.1 - 1.40e7).abs() < 1.0);
        assert_eq!(t4_row_count(), 12);
    }

    fn t4_row_count() -> usize {
        Benchmark::ALL.len() * 2
    }
}
