//! Figure 2 — accuracy versus throughput on the HAR dataset:
//! (a) FPGA (Arria 10), (b) GPU (Quadro M5000).
//!
//! The figure is a scatter of every evolutionary candidate. The paper's
//! reading (§IV-B):
//!
//! * the FPGA shows a strong relationship between the MLP's neuron
//!   distribution and throughput — stepping down ~0.1% from top
//!   accuracy buys an order of magnitude more outputs/s;
//! * the GPU's throughput barely moves across equally-accurate MLPs
//!   ("for GPU, there is roughly no relationship between the number of
//!   neurons and the throughput").
//!
//! The experiment reproduces both searches, emits the scatter series,
//! and computes the summary statistics behind those claims.

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_hw::fpga::FpgaDevice;
use ecad_hw::gpu::GpuDevice;

use crate::context::ExperimentContext;
use crate::report::{acc, sci, TextTable};

use super::{dataset, run_search};

/// Summary of one platform's scatter.
#[derive(Debug, Clone)]
pub struct ScatterSummary {
    /// Platform name.
    pub platform: String,
    /// Highest accuracy reached.
    pub top_accuracy: f32,
    /// Best throughput among candidates within 0.1% of top accuracy.
    pub throughput_at_top: f64,
    /// Best throughput among candidates 0.1%–1% below top accuracy.
    pub throughput_one_notch_down: f64,
    /// Ratio `one_notch_down / at_top` — the paper's "giant leap".
    pub step_down_gain: f64,
    /// Pearson correlation between hidden-neuron count and throughput
    /// (strongly negative for FPGA, near zero for GPU in the paper).
    pub neurons_throughput_correlation: f32,
}

/// Full Figure 2 result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// FPGA scatter points (accuracy, outputs/s, neurons).
    pub fpga_points: Vec<TracePoint>,
    /// GPU scatter points.
    pub gpu_points: Vec<TracePoint>,
    /// FPGA summary (Fig 2a).
    pub fpga: ScatterSummary,
    /// GPU summary (Fig 2b).
    pub gpu: ScatterSummary,
}

impl Fig2 {
    /// Renders the summaries.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Platform",
            "Top Acc",
            "Out/s @ top",
            "Out/s 1 notch down",
            "Gain",
            "corr(neurons, out/s)",
        ]);
        for s in [&self.fpga, &self.gpu] {
            t.row(vec![
                s.platform.clone(),
                acc(s.top_accuracy),
                sci(s.throughput_at_top),
                sci(s.throughput_one_notch_down),
                format!("{:.1}x", s.step_down_gain),
                format!("{:.2}", s.neurons_throughput_correlation),
            ]);
        }
        format!(
            "Figure 2: accuracy vs throughput on HAR ({} FPGA points, {} GPU points)\n{}",
            self.fpga_points.len(),
            self.gpu_points.len(),
            t.render()
        )
    }

    /// Scatter series as CSV (`platform,accuracy,outputs_per_s,neurons`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("platform,accuracy,outputs_per_s,neurons\n");
        for (platform, pts) in [("fpga", &self.fpga_points), ("gpu", &self.gpu_points)] {
            for p in pts.iter().filter(|p| p.feasible) {
                out.push_str(&format!(
                    "{platform},{},{},{}\n",
                    p.accuracy, p.outputs_per_s, p.neurons
                ));
            }
        }
        out
    }
}

fn summarize(platform: &str, points: &[TracePoint]) -> ScatterSummary {
    let feasible: Vec<&TracePoint> = points.iter().filter(|p| p.feasible).collect();
    let top_accuracy = feasible
        .iter()
        .map(|p| p.accuracy)
        .fold(f32::NEG_INFINITY, f32::max);
    let best_in = |lo: f32, hi: f32| -> f64 {
        feasible
            .iter()
            .filter(|p| p.accuracy >= lo && p.accuracy <= hi)
            .map(|p| p.outputs_per_s)
            .fold(0.0, f64::max)
    };
    let throughput_at_top = best_in(top_accuracy - 0.001, top_accuracy);
    let one_notch = best_in(top_accuracy - 0.010, top_accuracy - 0.001);
    let throughput_one_notch_down = if one_notch > 0.0 {
        one_notch
    } else {
        throughput_at_top
    };
    let xs: Vec<f32> = feasible.iter().map(|p| p.neurons as f32).collect();
    let ys: Vec<f32> = feasible.iter().map(|p| p.outputs_per_s as f32).collect();
    ScatterSummary {
        platform: platform.to_string(),
        top_accuracy,
        throughput_at_top,
        throughput_one_notch_down,
        step_down_gain: if throughput_at_top > 0.0 {
            throughput_one_notch_down / throughput_at_top
        } else {
            0.0
        },
        neurons_throughput_correlation: ecad_tensor::stats::pearson(&xs, &ys).unwrap_or(0.0),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig2 {
    let b = Benchmark::Har;
    let ds = dataset(ctx, b);
    let fpga_search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
        ObjectiveSet::accuracy_and_throughput(),
        "fig2a",
    );
    let gpu_search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Gpu(GpuDevice::quadro_m5000()),
        ObjectiveSet::accuracy_and_throughput(),
        "fig2b",
    );
    let fpga_points = fpga_search.trace_points();
    let gpu_points = gpu_search.trace_points();
    let fpga = summarize("Arria 10", &fpga_points);
    let gpu = summarize("Quadro M5000", &gpu_points);
    Fig2 {
        fpga_points,
        gpu_points,
        fpga,
        gpu,
    }
}

impl rt::json::ToJson for ScatterSummary {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("platform", &self.platform)
            .insert("top_accuracy", &self.top_accuracy)
            .insert("throughput_at_top", &self.throughput_at_top)
            .insert("throughput_one_notch_down", &self.throughput_one_notch_down)
            .insert("step_down_gain", &self.step_down_gain)
            .insert("neurons_throughput_correlation", &self.neurons_throughput_correlation)
    }
}

impl rt::json::ToJson for Fig2 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("fpga_points", &self.fpga_points)
            .insert("gpu_points", &self.gpu_points)
            .insert("fpga", &self.fpga)
            .insert("gpu", &self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_scatters_and_summaries() {
        let ctx = ExperimentContext::smoke();
        let f = run(&ctx);
        assert_eq!(f.fpga_points.len(), ctx.evaluations());
        assert_eq!(f.gpu_points.len(), ctx.evaluations());
        assert!(f.fpga.top_accuracy > 0.0);
        assert!(f.gpu.top_accuracy > 0.0);
        let csv = f.to_csv();
        assert!(csv.starts_with("platform,accuracy"));
        assert!(csv.lines().count() > 1);
        assert!(f.render().contains("Arria 10"));
    }
}
