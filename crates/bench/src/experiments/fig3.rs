//! Figure 3 — throughput and hardware efficiency for FPGA designs with
//! 1 and 4 banks of DDR on the credit-g dataset.
//!
//! "We hit the memory bandwidth roofline many times due to only having
//! a single bank of DDR. ... We found mostly a linear scaling going
//! from 1 to 4 ... Higher bandwidth did not produce greater efficiency
//! but did result in higher throughput overall." (§IV-C)
//!
//! Protocol: train one representative credit-g topology (from a short
//! accuracy search), then sweep a population of systolic-grid
//! configurations over Arria 10 devices with 1 and 4 DDR banks and
//! compare the throughput and efficiency distributions.

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_hw::fpga::{FpgaDevice, FpgaModel};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

use crate::context::ExperimentContext;
use crate::report::{sci, TextTable};

use super::{dataset, fpga_space, run_search};

/// One (grid, banks) sample of the sweep.
#[derive(Debug, Clone)]
pub struct BankPoint {
    /// DDR bank count.
    pub banks: u32,
    /// Grid description.
    pub grid: String,
    /// Outputs per second.
    pub outputs_per_s: f64,
    /// Hardware efficiency (effective / potential).
    pub efficiency: f64,
    /// Whether the design was bandwidth-stalled.
    pub bandwidth_bound: bool,
}

/// Aggregate per bank count.
#[derive(Debug, Clone)]
pub struct BankSummary {
    /// DDR bank count.
    pub banks: u32,
    /// Peak outputs/s across the grid population.
    pub max_outputs_per_s: f64,
    /// Mean outputs/s.
    pub mean_outputs_per_s: f64,
    /// Mean efficiency.
    pub mean_efficiency: f64,
    /// Fraction of designs that were bandwidth-bound.
    pub bandwidth_bound_fraction: f64,
}

/// Full Figure 3 result.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Topology used for the sweep.
    pub topology: String,
    /// All sweep samples.
    pub points: Vec<BankPoint>,
    /// Per-bank aggregates (1 bank then 4 banks).
    pub summaries: Vec<BankSummary>,
}

impl Fig3 {
    /// Renders the per-bank summary.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "DDR banks",
            "Max out/s",
            "Mean out/s",
            "Mean efficiency",
            "BW-bound",
        ]);
        for s in &self.summaries {
            t.row(vec![
                s.banks.to_string(),
                sci(s.max_outputs_per_s),
                sci(s.mean_outputs_per_s),
                format!("{:.3}", s.mean_efficiency),
                format!("{:.0}%", 100.0 * s.bandwidth_bound_fraction),
            ]);
        }
        format!(
            "Figure 3: throughput & efficiency vs DDR banks (credit-g, topology {})\n{}",
            self.topology,
            t.render()
        )
    }

    /// Throughput scaling factor from 1 to 4 banks (paper: "mostly
    /// linear", so ≳2).
    pub fn scaling_1_to_4(&self) -> f64 {
        let get = |banks: u32| {
            self.summaries
                .iter()
                .find(|s| s.banks == banks)
                .map(|s| s.max_outputs_per_s)
                .unwrap_or(0.0)
        };
        let one = get(1);
        if one == 0.0 {
            return 0.0;
        }
        get(4) / one
    }

    /// Sweep series as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("banks,grid,outputs_per_s,efficiency,bandwidth_bound\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.banks, p.grid, p.outputs_per_s, p.efficiency, p.bandwidth_bound
            ));
        }
        out
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig3 {
    let b = Benchmark::CreditG;
    let ds = dataset(ctx, b);
    // A representative topology from a short accuracy search.
    let search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Fpga(FpgaDevice::arria10_gx1150(1)),
        ObjectiveSet::accuracy_only(),
        "fig3-topology",
    );
    let best = search.best_by_accuracy().expect("feasible candidate");
    let topo = best.genome.nna.to_topology(ds.n_features(), ds.n_classes());

    // Sweep a shared population of grid configurations over both DDR
    // configurations. Grids that exceed the device budget are skipped —
    // the population is the same for both bank counts so the comparison
    // stays paired.
    let space = fpga_space(ctx, b);
    let mut rng = StdRng::seed_from_u64(ctx.sub_seed("fig3-grids"));
    let n_grids = match ctx.scale {
        crate::context::Scale::Smoke => 12,
        _ => 60,
    };
    // The bandwidth study concerns the scaling regime: grids large
    // enough to stress the DDR interface (the paper's point is that
    // "scaling to more DSPs requires more data, which requires more
    // memory bandwidth"). Filter out trivially small grids.
    let genomes: Vec<_> = std::iter::from_fn(|| Some(space.sample(&mut rng)))
        .filter(|g| match g.hw {
            HwGenome::FpgaGrid {
                rows, cols, vec, ..
            } => rows * cols * vec >= 128,
            HwGenome::GpuBatch { .. } => false,
        })
        .take(n_grids)
        .collect();

    let mut points = Vec::new();
    let mut summaries = Vec::new();
    for banks in [1u32, 4] {
        let device = FpgaDevice::arria10_gx1150(banks);
        let model = FpgaModel::new(device);
        let mut outs = Vec::new();
        let mut effs = Vec::new();
        let mut bound = 0usize;
        let mut counted = 0usize;
        for g in &genomes {
            let (rows, cols, im, inl, vec, batch) = match g.hw {
                HwGenome::FpgaGrid {
                    rows,
                    cols,
                    interleave_m,
                    interleave_n,
                    vec,
                    batch,
                } => (rows, cols, interleave_m, interleave_n, vec, batch),
                HwGenome::GpuBatch { .. } => continue,
            };
            let grid = match ecad_hw::fpga::GridConfig::new(rows, cols, im, inl, vec) {
                Ok(g) => g,
                Err(_) => continue,
            };
            let shapes = topo.gemm_shapes(batch as usize);
            let perf = match model.evaluate(&grid, &shapes) {
                Ok(p) => p,
                Err(_) => continue,
            };
            counted += 1;
            outs.push(perf.outputs_per_s);
            effs.push(perf.efficiency);
            if perf.bandwidth_bound {
                bound += 1;
            }
            points.push(BankPoint {
                banks,
                grid: grid.describe(),
                outputs_per_s: perf.outputs_per_s,
                efficiency: perf.efficiency,
                bandwidth_bound: perf.bandwidth_bound,
            });
        }
        let n = counted.max(1) as f64;
        summaries.push(BankSummary {
            banks,
            max_outputs_per_s: outs.iter().copied().fold(0.0, f64::max),
            mean_outputs_per_s: outs.iter().sum::<f64>() / n,
            mean_efficiency: effs.iter().sum::<f64>() / n,
            bandwidth_bound_fraction: bound as f64 / n,
        });
    }

    Fig3 {
        topology: topo.describe(),
        points,
        summaries,
    }
}

impl rt::json::ToJson for BankPoint {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("banks", &self.banks)
            .insert("grid", &self.grid)
            .insert("outputs_per_s", &self.outputs_per_s)
            .insert("efficiency", &self.efficiency)
            .insert("bandwidth_bound", &self.bandwidth_bound)
    }
}

impl rt::json::ToJson for BankSummary {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("banks", &self.banks)
            .insert("max_outputs_per_s", &self.max_outputs_per_s)
            .insert("mean_outputs_per_s", &self.mean_outputs_per_s)
            .insert("mean_efficiency", &self.mean_efficiency)
            .insert("bandwidth_bound_fraction", &self.bandwidth_bound_fraction)
    }
}

impl rt::json::ToJson for Fig3 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("topology", &self.topology)
            .insert("points", &self.points)
            .insert("summaries", &self.summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_bandwidth_scaling() {
        let ctx = ExperimentContext::smoke();
        let f = run(&ctx);
        assert_eq!(f.summaries.len(), 2);
        // More banks never reduce peak throughput.
        assert!(f.scaling_1_to_4() >= 1.0, "scaling {}", f.scaling_1_to_4());
        // The same grid population was scored for both bank counts.
        let ones = f.points.iter().filter(|p| p.banks == 1).count();
        let fours = f.points.iter().filter(|p| p.banks == 4).count();
        assert_eq!(ones, fours);
        assert!(f.render().contains("DDR banks"));
        assert!(f.to_csv().lines().count() > 2);
    }
}
