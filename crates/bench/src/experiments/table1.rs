//! Table I — top 10-fold accuracy for the four OpenML datasets,
//! ECAD MLP vs an MLP baseline vs classical methods.
//!
//! Protocol per dataset:
//!
//! 1. classical baselines (decision tree, random forest, linear SVM,
//!    logistic regression, Gaussian NB) are scored with stratified
//!    10-fold cross-validation;
//! 2. the **MLP baseline** is sklearn's default-shaped `MLPClassifier`
//!    (one hidden layer of 100 ReLU neurons, Adam), same 10-fold CV;
//! 3. **ECAD MLP** runs the evolutionary accuracy search on a split of
//!    the data, then the best topology is refit across the same 10
//!    folds — the paper's headline number.
//!
//! The paper's qualitative claim checked here: ECAD MLP beats the fixed
//! MLP baseline on every dataset (and the best non-MLP method on at
//! least credit-g and phishing in the paper's runs).

use ecad_baselines::{
    eval, DecisionTree, GaussianNaiveBayes, LinearSvm, LogisticRegression, RandomForest,
};
use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;

use crate::context::{ExperimentContext, Scale};
use crate::report::{acc, TextTable};

use super::{dataset, fold_count, kfold_topology_accuracy, run_search};

/// One dataset row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub dataset: String,
    /// Best measured accuracy by any baseline method.
    pub best_any_accuracy: f32,
    /// Which baseline achieved it.
    pub best_any_method: String,
    /// Fixed MLP baseline (sklearn-default shape) accuracy.
    pub mlp_baseline_accuracy: f32,
    /// ECAD-searched MLP accuracy (10-fold refit of the best topology).
    pub ecad_accuracy: f32,
    /// Topology the search selected.
    pub ecad_topology: String,
    /// Paper reference: best published accuracy by any method.
    pub paper_best_any: f32,
    /// Paper reference: best published MLP accuracy.
    pub paper_mlp: f32,
    /// Paper reference: ECAD MLP accuracy.
    pub paper_ecad: f32,
}

/// Full Table I result.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per dataset.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Renders the table in the paper's column layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Dataset",
            "Top Acc (Any)",
            "Top Method",
            "MLP Baseline",
            "ECAD MLP",
            "Paper ECAD",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.dataset.clone(),
                acc(r.best_any_accuracy),
                r.best_any_method.clone(),
                acc(r.mlp_baseline_accuracy),
                acc(r.ecad_accuracy),
                acc(r.paper_ecad),
            ]);
        }
        format!(
            "Table I: Top 10-fold Accuracy (measured vs paper)\n{}",
            t.render()
        )
    }

    /// Datasets where ECAD MLP beat the fixed MLP baseline — the
    /// paper's headline claim holds when this covers every row.
    pub fn ecad_beats_mlp_baseline(&self) -> Vec<bool> {
        self.rows
            .iter()
            .map(|r| r.ecad_accuracy >= r.mlp_baseline_accuracy)
            .collect()
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Table1 {
    let rows = Benchmark::TEN_FOLD
        .iter()
        .map(|&b| run_one(ctx, b))
        .collect();
    Table1 { rows }
}

fn run_one(ctx: &ExperimentContext, b: Benchmark) -> Table1Row {
    let ds = dataset(ctx, b);
    let k = fold_count(ctx);
    let seed = ctx.sub_seed(&format!("table1/{b}"));
    let mut rng = <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(seed);

    // Classical baselines under 10-fold CV.
    let mut results: Vec<(String, f32)> = Vec::new();
    let quick = ctx.scale != Scale::Full;
    let (trees, depth) = if quick { (10, 8) } else { (40, 12) };
    results.push(score(eval::cross_validate(
        || DecisionTree::new(depth),
        &ds,
        k,
        &mut rng,
    )));
    results.push(score(eval::cross_validate(
        || RandomForest::new(trees, depth).with_seed(seed),
        &ds,
        k,
        &mut rng,
    )));
    let svm_epochs = if quick { 12 } else { 40 };
    results.push(score(eval::cross_validate(
        || LinearSvm::new(svm_epochs, 1e-4).with_seed(seed),
        &ds,
        k,
        &mut rng,
    )));
    let lr_epochs = if quick { 120 } else { 400 };
    results.push(score(eval::cross_validate(
        || LogisticRegression::new(lr_epochs, 0.5),
        &ds,
        k,
        &mut rng,
    )));
    results.push(score(eval::cross_validate(
        GaussianNaiveBayes::new,
        &ds,
        k,
        &mut rng,
    )));

    // Fixed MLP baseline: sklearn MLPClassifier default shape.
    let mlp_baseline_topo = ecad_mlp::MlpTopology::builder(ds.n_features(), ds.n_classes())
        .hidden(100, ecad_mlp::Activation::Relu, true)
        .build();
    let mlp_baseline_accuracy =
        kfold_topology_accuracy(&ds, &mlp_baseline_topo, ctx.trainer(), k, seed ^ 0xA);

    // ECAD: evolutionary accuracy search, then a 10-fold refit of the
    // winning topology.
    let search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Fpga(ecad_hw::fpga::FpgaDevice::arria10_gx1150(1)),
        ObjectiveSet::accuracy_only(),
        &format!("table1-search/{b}"),
    );
    let finalists = super::top_topologies(&search, 3);
    assert!(
        !finalists.is_empty(),
        "search produced no feasible candidate"
    );
    let (ecad_accuracy, ecad_topology) = finalists
        .iter()
        .map(|nna| {
            let topo = nna.to_topology(ds.n_features(), ds.n_classes());
            let acc = kfold_topology_accuracy(&ds, &topo, ctx.refit_trainer(), k, seed ^ 0xB);
            (acc, nna.describe())
        })
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one finalist");

    let (best_any_method, best_any_accuracy) = results
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one baseline ran");

    Table1Row {
        dataset: b.name().to_string(),
        best_any_accuracy,
        best_any_method,
        mlp_baseline_accuracy,
        ecad_accuracy,
        ecad_topology,
        paper_best_any: b.paper_best_any_accuracy(),
        paper_mlp: b.paper_mlp_baseline_accuracy(),
        paper_ecad: b.paper_ecad_accuracy(),
    }
}

fn score(r: eval::CvResult) -> (String, f32) {
    (r.model.clone(), r.mean_accuracy())
}

impl rt::json::ToJson for Table1Row {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("dataset", &self.dataset)
            .insert("best_any_accuracy", &self.best_any_accuracy)
            .insert("best_any_method", &self.best_any_method)
            .insert("mlp_baseline_accuracy", &self.mlp_baseline_accuracy)
            .insert("ecad_accuracy", &self.ecad_accuracy)
            .insert("ecad_topology", &self.ecad_topology)
            .insert("paper_best_any", &self.paper_best_any)
            .insert("paper_mlp", &self.paper_mlp)
            .insert("paper_ecad", &self.paper_ecad)
    }
}

impl rt::json::ToJson for Table1 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("rows", &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let ctx = ExperimentContext::smoke();
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 4);
        for r in &t.rows {
            assert!(
                (0.0..=1.0).contains(&r.ecad_accuracy),
                "{}: {}",
                r.dataset,
                r.ecad_accuracy
            );
            assert!((0.0..=1.0).contains(&r.best_any_accuracy));
            assert!(!r.ecad_topology.is_empty());
        }
        let rendered = t.render();
        assert!(rendered.contains("credit-g"));
        assert!(rendered.contains("bioresponse"));
    }
}
