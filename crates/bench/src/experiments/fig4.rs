//! Figure 4 — hardware efficiency for a Stratix 10 2800 and a Titan X
//! searching over the MNIST dataset.
//!
//! "If we consider efficiency for this result, the FPGA utilized 41.5%
//! of the allocated logic, while the GPU only utilized 0.3%. ... without
//! target hardware in mind during MLP development, there is a good
//! chance of losing efficiency." (§IV-D)
//!
//! Protocol: run the accuracy × throughput search once against the
//! Stratix 10 (4 DDR banks) model and once against the Titan X model on
//! the MNIST stand-in; compare the efficiency distributions and the
//! throughput at top accuracy.

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_hw::fpga::FpgaDevice;
use ecad_hw::gpu::GpuDevice;

use crate::context::ExperimentContext;
use crate::report::{acc, sci, TextTable};

use super::{dataset, run_search};

/// Efficiency summary for one platform.
#[derive(Debug, Clone)]
pub struct EfficiencySummary {
    /// Platform name.
    pub platform: String,
    /// Highest accuracy reached.
    pub top_accuracy: f32,
    /// Outputs/s of the top-accuracy candidate.
    pub throughput_at_top: f64,
    /// Efficiency of the top-accuracy candidate.
    pub efficiency_at_top: f64,
    /// Mean efficiency across all feasible candidates.
    pub mean_efficiency: f64,
    /// Max efficiency across all feasible candidates.
    pub max_efficiency: f64,
}

/// Full Figure 4 result.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// S10 scatter points.
    pub fpga_points: Vec<TracePoint>,
    /// Titan X scatter points.
    pub gpu_points: Vec<TracePoint>,
    /// S10 summary.
    pub fpga: EfficiencySummary,
    /// Titan X summary.
    pub gpu: EfficiencySummary,
}

impl Fig4 {
    /// Renders the summaries.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Platform",
            "Top Acc",
            "Out/s @ top",
            "Efficiency @ top",
            "Mean eff",
            "Max eff",
        ]);
        for s in [&self.fpga, &self.gpu] {
            t.row(vec![
                s.platform.clone(),
                acc(s.top_accuracy),
                sci(s.throughput_at_top),
                format!("{:.1}%", 100.0 * s.efficiency_at_top),
                format!("{:.1}%", 100.0 * s.mean_efficiency),
                format!("{:.1}%", 100.0 * s.max_efficiency),
            ]);
        }
        format!(
            "Figure 4: hardware efficiency, Stratix 10 vs Titan X (MNIST)\n{}",
            t.render()
        )
    }

    /// FPGA-to-GPU efficiency ratio at top accuracy (paper: 41.5% vs
    /// 0.3%, i.e. two orders of magnitude).
    pub fn efficiency_ratio(&self) -> f64 {
        if self.gpu.efficiency_at_top <= 0.0 {
            return f64::INFINITY;
        }
        self.fpga.efficiency_at_top / self.gpu.efficiency_at_top
    }

    /// Scatter series as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("platform,accuracy,outputs_per_s,efficiency\n");
        for (platform, pts) in [("s10", &self.fpga_points), ("titanx", &self.gpu_points)] {
            for p in pts.iter().filter(|p| p.feasible) {
                out.push_str(&format!(
                    "{platform},{},{},{}\n",
                    p.accuracy, p.outputs_per_s, p.efficiency
                ));
            }
        }
        out
    }
}

fn summarize(platform: &str, points: &[TracePoint]) -> EfficiencySummary {
    let feasible: Vec<&TracePoint> = points.iter().filter(|p| p.feasible).collect();
    let top = feasible
        .iter()
        .max_by(|a, b| {
            a.accuracy
                .partial_cmp(&b.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .expect("at least one feasible candidate");
    let effs: Vec<f64> = feasible.iter().map(|p| p.efficiency).collect();
    EfficiencySummary {
        platform: platform.to_string(),
        top_accuracy: top.accuracy,
        throughput_at_top: top.outputs_per_s,
        efficiency_at_top: top.efficiency,
        mean_efficiency: effs.iter().sum::<f64>() / effs.len().max(1) as f64,
        max_efficiency: effs.iter().copied().fold(0.0, f64::max),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Fig4 {
    let b = Benchmark::Mnist;
    let ds = dataset(ctx, b);
    let fpga_search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Fpga(FpgaDevice::stratix10_2800(4)),
        ObjectiveSet::accuracy_and_throughput(),
        "fig4-s10",
    );
    let gpu_search = run_search(
        ctx,
        &ds,
        b,
        HwTarget::Gpu(GpuDevice::titan_x()),
        ObjectiveSet::accuracy_and_throughput(),
        "fig4-tx",
    );
    let fpga_points = fpga_search.trace_points();
    let gpu_points = gpu_search.trace_points();
    let fpga = summarize("Stratix 10 2800", &fpga_points);
    let gpu = summarize("Titan X", &gpu_points);
    Fig4 {
        fpga_points,
        gpu_points,
        fpga,
        gpu,
    }
}

impl rt::json::ToJson for EfficiencySummary {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("platform", &self.platform)
            .insert("top_accuracy", &self.top_accuracy)
            .insert("throughput_at_top", &self.throughput_at_top)
            .insert("efficiency_at_top", &self.efficiency_at_top)
            .insert("mean_efficiency", &self.mean_efficiency)
            .insert("max_efficiency", &self.max_efficiency)
    }
}

impl rt::json::ToJson for Fig4 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("fpga_points", &self.fpga_points)
            .insert("gpu_points", &self.gpu_points)
            .insert("fpga", &self.fpga)
            .insert("gpu", &self.gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_fpga_is_more_efficient() {
        let ctx = ExperimentContext::smoke();
        let f = run(&ctx);
        // The paper's central efficiency claim: FPGA candidates use
        // their allocated hardware far better than the GPU uses its
        // fixed silicon.
        assert!(
            f.fpga.max_efficiency > f.gpu.max_efficiency,
            "fpga {} vs gpu {}",
            f.fpga.max_efficiency,
            f.gpu.max_efficiency
        );
        assert!(f.gpu.max_efficiency < 0.2, "gpu efficiency should be low");
        assert!(f.render().contains("Stratix 10"));
        assert!(f.to_csv().contains("titanx"));
    }
}
