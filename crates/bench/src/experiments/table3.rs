//! Table III — run-time statistics of the ECAD system.
//!
//! The paper reports, per dataset, the number of NNA/HW combinations
//! evaluated, the average evaluation time, and the total evaluation
//! time, noting that "the ECAD system caches similar configurations and
//! avoids reevaluating them". This experiment runs an accuracy search
//! per benchmark and reports the same statistics (plus the cache-hit
//! count, which the paper describes but does not tabulate). Budgets are
//! scaled, so the interesting comparison is *structure* — e.g. the
//! small-feature datasets evaluate much faster per model than the
//! MNIST-sized ones, exactly as in the paper (2.2 s vs 71 s there).

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;

use crate::context::ExperimentContext;
use crate::report::{run_stats_table, RunStatsRow, TextTable};

use super::{dataset, run_search};

/// Paper reference values for one dataset's Table III row.
#[derive(Debug, Clone, Copy)]
pub struct PaperRuntime {
    /// Models evaluated in the paper's run.
    pub models: usize,
    /// Average model evaluation time, seconds.
    pub avg_s: f64,
    /// Total evaluation time, seconds.
    pub total_s: f64,
}

/// One dataset row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name.
    pub dataset: String,
    /// Unique models evaluated.
    pub models_evaluated: usize,
    /// Dedup-cache hits (candidates not re-evaluated).
    pub cache_hits: usize,
    /// Candidates rejected as infeasible.
    pub infeasible: usize,
    /// Transient-failure retries.
    pub retries: usize,
    /// Deadline timeouts.
    pub timeouts: usize,
    /// Worker respawns.
    pub respawns: usize,
    /// Average per-model evaluation time, seconds.
    pub avg_eval_s: f64,
    /// Total evaluation time, seconds.
    pub total_eval_s: f64,
    /// Wall-clock spent training, seconds.
    pub train_s: f64,
    /// Wall-clock spent in hardware models, seconds.
    pub hw_s: f64,
    /// Paper's reference row.
    pub paper: PaperRuntime,
}

/// Full Table III result.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// One row per benchmark.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Renders the table: measured statistics in the shared
    /// [`run_stats_table`] shape, then the paper's reference numbers.
    pub fn render(&self) -> String {
        let measured: Vec<RunStatsRow> = self
            .rows
            .iter()
            .map(|r| RunStatsRow {
                dataset: r.dataset.clone(),
                models: r.models_evaluated,
                cache_hits: r.cache_hits,
                infeasible: r.infeasible,
                retries: r.retries,
                timeouts: r.timeouts,
                respawns: r.respawns,
                avg_eval_s: r.avg_eval_s,
                total_eval_s: r.total_eval_s,
                train_s: r.train_s,
                hw_s: r.hw_s,
            })
            .collect();
        let mut paper = TextTable::new(vec!["Dataset", "Paper Models", "Paper AVG (s)"]);
        for r in &self.rows {
            paper.row(vec![
                r.dataset.clone(),
                r.paper.models.to_string(),
                format!("{:.2}", r.paper.avg_s),
            ]);
        }
        format!(
            "Table III: Run Time Statistics (measured)\n{}\npaper reference:\n{}",
            run_stats_table(&measured),
            paper.render()
        )
    }
}

/// The paper's Table III values.
pub fn paper_runtime(b: Benchmark) -> PaperRuntime {
    match b {
        Benchmark::Mnist => PaperRuntime {
            models: 553,
            avg_s: 71.23,
            total_s: 39388.6,
        },
        Benchmark::FashionMnist => PaperRuntime {
            models: 481,
            avg_s: 82.55,
            total_s: 39708.7,
        },
        Benchmark::CreditG => PaperRuntime {
            models: 10480,
            avg_s: 2.24,
            total_s: 23495.2,
        },
        Benchmark::Har => PaperRuntime {
            models: 3229,
            avg_s: 10.20,
            total_s: 33069.4,
        },
        Benchmark::Phishing => PaperRuntime {
            models: 3534,
            avg_s: 9.24,
            total_s: 32661.3,
        },
        Benchmark::Bioresponse => PaperRuntime {
            models: 5309,
            avg_s: 5.89,
            total_s: 31285.0,
        },
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Table3 {
    let rows = Benchmark::ALL
        .iter()
        .map(|&b| {
            let ds = dataset(ctx, b);
            let search = run_search(
                ctx,
                &ds,
                b,
                HwTarget::Fpga(ecad_hw::fpga::FpgaDevice::arria10_gx1150(1)),
                ObjectiveSet::accuracy_only(),
                &format!("table3/{b}"),
            );
            let stats = search.stats();
            Table3Row {
                dataset: b.name().to_string(),
                models_evaluated: stats.models_evaluated,
                cache_hits: stats.cache_hits,
                infeasible: stats.infeasible_count,
                retries: stats.retry_count,
                timeouts: stats.timeout_count,
                respawns: stats.respawn_count,
                avg_eval_s: stats.avg_eval_time_s,
                total_eval_s: stats.total_eval_time_s,
                train_s: stats.train_time_s,
                hw_s: stats.hw_time_s,
                paper: paper_runtime(b),
            }
        })
        .collect();
    Table3 { rows }
}

impl rt::json::ToJson for PaperRuntime {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("models", &self.models)
            .insert("avg_s", &self.avg_s)
            .insert("total_s", &self.total_s)
    }
}

impl rt::json::ToJson for Table3Row {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("dataset", &self.dataset)
            .insert("models_evaluated", &self.models_evaluated)
            .insert("cache_hits", &self.cache_hits)
            .insert("infeasible", &self.infeasible)
            .insert("retries", &self.retries)
            .insert("timeouts", &self.timeouts)
            .insert("respawns", &self.respawns)
            .insert("avg_eval_s", &self.avg_eval_s)
            .insert("total_eval_s", &self.total_eval_s)
            .insert("train_s", &self.train_s)
            .insert("hw_s", &self.hw_s)
            .insert("paper", &self.paper)
    }
}

impl rt::json::ToJson for Table3 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("rows", &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_covers_all_six_datasets() {
        let ctx = ExperimentContext::smoke();
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 6);
        for r in &t.rows {
            assert_eq!(r.models_evaluated, ctx.evaluations());
            assert!(r.avg_eval_s > 0.0);
            assert!((r.total_eval_s - r.avg_eval_s * r.models_evaluated as f64).abs() < 1e-6);
            // The stage split is a decomposition of the evaluation time:
            // train + hardware-model never exceeds the total.
            assert!(r.train_s > 0.0);
            assert!(r.train_s + r.hw_s <= r.total_eval_s + 1e-6);
        }
        let rendered = t.render();
        assert!(rendered.contains("har"));
        assert!(rendered.contains("Infeasible"));
        assert!(rendered.contains("Retries"));
        assert!(rendered.contains("Respawns"));
        assert!(rendered.contains("Train (s)"));
    }

    #[test]
    fn paper_rows_transcribed() {
        let p = paper_runtime(Benchmark::CreditG);
        assert_eq!(p.models, 10480);
        assert!((p.avg_s - 2.24).abs() < 1e-9);
    }
}
