//! One module per paper artifact, plus shared search plumbing.

pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_dataset::{benchmarks, Dataset};
use ecad_mlp::TrainConfig;

use crate::context::ExperimentContext;

/// Generates the synthetic stand-in for `b` at the context's scale.
pub fn dataset(ctx: &ExperimentContext, b: Benchmark) -> Dataset {
    benchmarks::load(b)
        .with_samples(ctx.samples(b))
        .with_seed(ctx.sub_seed(b.name()))
        .generate()
}

/// The bounded FPGA search space for a benchmark at this scale.
pub fn fpga_space(ctx: &ExperimentContext, b: Benchmark) -> SearchSpace {
    SearchSpace::fpga_default()
        .with_neurons(4, ctx.max_neurons(b))
        .with_layers(1, 3)
}

/// The bounded GPU search space for a benchmark at this scale.
pub fn gpu_space(ctx: &ExperimentContext, b: Benchmark) -> SearchSpace {
    SearchSpace::gpu_default()
        .with_neurons(4, ctx.max_neurons(b))
        .with_layers(1, 3)
}

/// Runs a co-design search on `ds` against `target`.
pub fn run_search(
    ctx: &ExperimentContext,
    ds: &Dataset,
    b: Benchmark,
    target: HwTarget,
    objectives: ObjectiveSet,
    tag: &str,
) -> SearchResult {
    let space = match &target {
        HwTarget::Fpga(_) => fpga_space(ctx, b),
        HwTarget::Gpu(_) | HwTarget::Cpu(_) => gpu_space(ctx, b),
    };
    Search::on_dataset(ds)
        .target(target)
        .space(space)
        .objectives(objectives)
        .evaluations(ctx.evaluations())
        .population(ctx.population())
        .seed(ctx.sub_seed(tag))
        .threads(ctx.threads)
        .trainer(ctx.trainer())
        .run()
}

/// Trains `topology` on each fold and returns the mean test accuracy —
/// the OpenML 10-fold protocol applied to a topology the search found.
pub fn kfold_topology_accuracy(
    ds: &Dataset,
    topology: &ecad_mlp::MlpTopology,
    trainer: TrainConfig,
    k: usize,
    seed: u64,
) -> f32 {
    use ecad_dataset::{folds, scaler};
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(seed);
    let folds = folds::stratified_kfold(ds, k, &mut rng);
    let mut sum = 0.0f32;
    let mut counted = 0usize;
    for (i, fold) in folds.iter().enumerate() {
        let train = ds.subset(&fold.train);
        let test = ds.subset(&fold.test);
        let (train_s, test_s) = scaler::standardize_pair(&train, &test);
        let mut fold_rng = StdRng::seed_from_u64(seed ^ (i as u64 + 1));
        match ecad_mlp::Trainer::new(trainer).fit(topology, &train_s, &test_s, &mut fold_rng) {
            Ok(report) => {
                sum += report.test_accuracy;
                counted += 1;
            }
            Err(_) => { /* diverged fold: counts as zero */ }
        }
    }
    if counted == 0 {
        0.0
    } else {
        sum / counted as f32
    }
}

/// The top `n` distinct topologies from a search, best accuracy first.
///
/// Refitting a handful of finalists and keeping the best mirrors the
/// paper's protocol of reporting the search's top model, and removes
/// single-refit seed noise from the Table I/II numbers.
pub fn top_topologies(result: &SearchResult, n: usize) -> Vec<ecad_core::genome::NnaGenome> {
    let mut sorted: Vec<_> = result
        .trace()
        .iter()
        .filter(|e| e.measurement.hw.is_feasible())
        .collect();
    sorted.sort_by(|a, b| {
        b.measurement
            .accuracy
            .partial_cmp(&a.measurement.accuracy)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for e in sorted {
        if seen.insert(e.genome.nna.describe()) {
            out.push(e.genome.nna.clone());
            if out.len() == n {
                break;
            }
        }
    }
    out
}

/// Cross-validation fold count at this scale (10 per the OpenML spec,
/// fewer in smoke runs where datasets are tiny).
pub fn fold_count(ctx: &ExperimentContext) -> usize {
    match ctx.scale {
        crate::context::Scale::Smoke => 4,
        _ => 10,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shapes_match_benchmark() {
        let ctx = ExperimentContext::smoke();
        let ds = dataset(&ctx, Benchmark::Phishing);
        assert_eq!(ds.n_features(), 30);
        assert_eq!(ds.len(), ctx.samples(Benchmark::Phishing));
    }

    #[test]
    fn spaces_are_family_consistent() {
        let ctx = ExperimentContext::smoke();
        let f = fpga_space(&ctx, Benchmark::CreditG);
        let g = gpu_space(&ctx, Benchmark::CreditG);
        assert_ne!(f.family, g.family);
        assert!(f.max_neurons <= ctx.max_neurons(Benchmark::CreditG));
    }

    #[test]
    fn kfold_topology_accuracy_is_probability() {
        let ctx = ExperimentContext::smoke();
        let ds = dataset(&ctx, Benchmark::CreditG);
        let topo = ecad_mlp::MlpTopology::builder(ds.n_features(), ds.n_classes())
            .hidden(8, ecad_mlp::Activation::Relu, true)
            .build();
        let acc = kfold_topology_accuracy(&ds, &topo, ctx.trainer(), 4, 1);
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.4, "even a small MLP should beat chance, got {acc}");
    }
}
