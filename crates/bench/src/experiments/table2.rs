//! Table II — top 1-fold accuracy for the pre-split MNIST and
//! Fashion-MNIST stand-ins.
//!
//! Protocol per dataset: a fixed 80/20 split (standing in for the Keras
//! train/test split); baselines fit once on the training side; the ECAD
//! search runs on the training side (with its own inner validation
//! split) and the winning topology is refit on the full training set
//! and scored on the held-out test set.

use ecad_baselines::{
    eval, DecisionTree, GaussianNaiveBayes, LinearSvm, LogisticRegression, RandomForest,
};
use ecad_core::prelude::*;
use ecad_dataset::benchmarks::Benchmark;
use ecad_dataset::scaler;

use crate::context::{ExperimentContext, Scale};
use crate::report::{acc, TextTable};

use super::{dataset, run_search};

/// One dataset row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Best measured baseline accuracy.
    pub best_any_accuracy: f32,
    /// Which baseline achieved it.
    pub best_any_method: String,
    /// Fixed MLP baseline accuracy (sklearn default shape).
    pub mlp_baseline_accuracy: f32,
    /// ECAD-searched MLP accuracy on the held-out test set.
    pub ecad_accuracy: f32,
    /// Topology the search selected.
    pub ecad_topology: String,
    /// Paper reference: best published accuracy.
    pub paper_best_any: f32,
    /// Paper reference: best published MLP accuracy.
    pub paper_mlp: f32,
    /// Paper reference: ECAD accuracy.
    pub paper_ecad: f32,
}

/// Full Table II result.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per dataset (MNIST, Fashion-MNIST).
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Dataset",
            "Top Acc (Any)",
            "Top Method",
            "MLP Baseline",
            "ECAD MLP",
            "Paper ECAD",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.dataset.clone(),
                acc(r.best_any_accuracy),
                r.best_any_method.clone(),
                acc(r.mlp_baseline_accuracy),
                acc(r.ecad_accuracy),
                acc(r.paper_ecad),
            ]);
        }
        format!(
            "Table II: Top 1-fold Accuracy (measured vs paper)\n{}",
            t.render()
        )
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> Table2 {
    let rows = Benchmark::ONE_FOLD
        .iter()
        .map(|&b| run_one(ctx, b))
        .collect();
    Table2 { rows }
}

fn run_one(ctx: &ExperimentContext, b: Benchmark) -> Table2Row {
    let ds = dataset(ctx, b);
    let seed = ctx.sub_seed(&format!("table2/{b}"));
    let mut rng = <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(seed);
    let (train, test) = ds.split(0.2, &mut rng);

    let quick = ctx.scale != Scale::Full;
    let mut baselines: Vec<(String, f32)> = Vec::new();
    {
        let mut m = DecisionTree::new(if quick { 8 } else { 14 });
        baselines.push((m.name().to_string(), eval::holdout(&mut m, &train, &test)));
    }
    {
        let mut m = RandomForest::new(if quick { 8 } else { 30 }, 10).with_seed(seed);
        baselines.push((m.name().to_string(), eval::holdout(&mut m, &train, &test)));
    }
    {
        let mut m = LinearSvm::new(if quick { 8 } else { 30 }, 1e-4).with_seed(seed);
        baselines.push((m.name().to_string(), eval::holdout(&mut m, &train, &test)));
    }
    {
        let mut m = LogisticRegression::new(if quick { 80 } else { 300 }, 0.5);
        baselines.push((m.name().to_string(), eval::holdout(&mut m, &train, &test)));
    }
    {
        let mut m = GaussianNaiveBayes::new();
        baselines.push((m.name().to_string(), eval::holdout(&mut m, &train, &test)));
    }
    use ecad_baselines::Classifier;

    // Fixed MLP baseline.
    let (train_s, test_s) = scaler::standardize_pair(&train, &test);
    let mlp_topo = ecad_mlp::MlpTopology::builder(ds.n_features(), ds.n_classes())
        .hidden(100, ecad_mlp::Activation::Relu, true)
        .build();
    let mut mlp_rng = <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(seed ^ 0xA);
    let mlp_baseline_accuracy = ecad_mlp::Trainer::new(ctx.refit_trainer())
        .fit(&mlp_topo, &train_s, &test_s, &mut mlp_rng)
        .map(|r| r.test_accuracy)
        .unwrap_or(0.0);

    // ECAD search on the training side only, refit on the full train
    // split, scored on the held-out test.
    let search = run_search(
        ctx,
        &train,
        b,
        HwTarget::Fpga(ecad_hw::fpga::FpgaDevice::arria10_gx1150(1)),
        ObjectiveSet::accuracy_only(),
        &format!("table2-search/{b}"),
    );
    let finalists = super::top_topologies(&search, 3);
    assert!(
        !finalists.is_empty(),
        "search produced no feasible candidate"
    );
    let (ecad_accuracy, ecad_topology) = finalists
        .iter()
        .map(|nna| {
            let topo = nna.to_topology(ds.n_features(), ds.n_classes());
            let mut refit_rng =
                <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(seed ^ 0xB);
            let acc = ecad_mlp::Trainer::new(ctx.refit_trainer())
                .fit(&topo, &train_s, &test_s, &mut refit_rng)
                .map(|r| r.test_accuracy)
                .unwrap_or(0.0);
            (acc, nna.describe())
        })
        .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one finalist");

    let (best_any_method, best_any_accuracy) = baselines
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one baseline ran");

    Table2Row {
        dataset: b.name().to_string(),
        best_any_accuracy,
        best_any_method,
        mlp_baseline_accuracy,
        ecad_accuracy,
        ecad_topology,
        paper_best_any: b.paper_best_any_accuracy(),
        paper_mlp: b.paper_mlp_baseline_accuracy(),
        paper_ecad: b.paper_ecad_accuracy(),
    }
}

impl rt::json::ToJson for Table2Row {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("dataset", &self.dataset)
            .insert("best_any_accuracy", &self.best_any_accuracy)
            .insert("best_any_method", &self.best_any_method)
            .insert("mlp_baseline_accuracy", &self.mlp_baseline_accuracy)
            .insert("ecad_accuracy", &self.ecad_accuracy)
            .insert("ecad_topology", &self.ecad_topology)
            .insert("paper_best_any", &self.paper_best_any)
            .insert("paper_mlp", &self.paper_mlp)
            .insert("paper_ecad", &self.paper_ecad)
    }
}

impl rt::json::ToJson for Table2 {
    fn to_json(&self) -> rt::json::Json {
        rt::json::Json::object()
            .insert("rows", &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_both_rows() {
        let ctx = ExperimentContext::smoke();
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0].dataset, "mnist");
        assert_eq!(t.rows[1].dataset, "fashion-mnist");
        for r in &t.rows {
            assert!((0.0..=1.0).contains(&r.ecad_accuracy));
        }
        assert!(t.render().contains("mnist"));
    }
}
