//! Difficulty-calibration tool for the synthetic benchmark suite.
//!
//! ```sh
//! cargo run --release --bin calibrate [-- samples]
//! ```
//!
//! Trains a reference MLP (two hidden layers, generous epochs) plus a
//! linear probe on every benchmark stand-in and prints attainable
//! accuracy next to the paper's target band. Used when tuning the
//! per-dataset difficulty profiles in `ecad_dataset::benchmarks` —
//! the reference MLP should land close to the paper's ECAD number, and
//! the linear probe should trail it (the non-linearity gap the MLP
//! exploits).

use ecad_baselines::{Classifier, LogisticRegression};
use ecad_dataset::benchmarks::{self, Benchmark};
use ecad_dataset::scaler;
use ecad_mlp::{Activation, MlpTopology, TrainConfig, Trainer};
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;

fn main() {
    let samples_override: Option<usize> = std::env::args().nth(1).and_then(|s| s.parse().ok());
    println!(
        "{:<15} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "dataset", "samples", "ref MLP", "linear", "paper ECAD", "paper MLP"
    );
    for b in Benchmark::ALL {
        let samples = samples_override.unwrap_or_else(|| benchmarks::default_samples(b));
        let ds = benchmarks::load(b)
            .with_samples(samples)
            .with_seed(1)
            .generate();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = ds.split(0.2, &mut rng);
        let (train_s, test_s) = scaler::standardize_pair(&train, &test);

        // Reference MLP: a solid two-layer network with a real budget.
        let width = 128.min(ds.n_features().max(32));
        let topo = MlpTopology::builder(ds.n_features(), ds.n_classes())
            .hidden(width, Activation::Relu, true)
            .hidden(width / 2, Activation::Relu, true)
            .build();
        let mut cfg = TrainConfig::thorough();
        cfg.epochs = 60;
        let mlp_acc = Trainer::new(cfg)
            .fit(&topo, &train_s, &test_s, &mut rng)
            .map(|r| r.test_accuracy)
            .unwrap_or(0.0);

        // Linear probe.
        let mut probe = LogisticRegression::new(300, 0.5);
        probe.fit(&train_s);
        let lin_acc = probe.accuracy(&test_s);

        println!(
            "{:<15} {:>8} {:>10.4} {:>10.4} {:>12.4} {:>12.4}",
            b.name(),
            samples,
            mlp_acc,
            lin_acc,
            b.paper_ecad_accuracy(),
            b.paper_mlp_baseline_accuracy()
        );
    }
}
