//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--full|--smoke] [--seed N] [--threads N]
//!             [--json PATH] [--csv-dir DIR]
//!
//! IDS: table1 table2 table3 table4 fig2 fig3 fig4 all   (default: all)
//! ```
//!
//! Text tables go to stdout; `--json` additionally writes all results
//! as one JSON document; `--csv-dir` writes the figures' scatter series
//! as CSV files for external plotting.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use ecad_bench::experiments::{fig2, fig3, fig4, table1, table2, table3, table4};
use ecad_bench::{ExperimentContext, Scale};
use rt::json::{Json, ToJson};

const ALL_IDS: [&str; 7] = [
    "table1", "table2", "table3", "table4", "fig2", "fig3", "fig4",
];

struct Args {
    ids: Vec<String>,
    ctx: ExperimentContext,
    json: Option<PathBuf>,
    csv_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut ctx = ExperimentContext::quick();
    let mut json = None;
    let mut csv_dir = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--full" => ctx.scale = Scale::Full,
            "--smoke" => ctx.scale = Scale::Smoke,
            "--quick" => ctx.scale = Scale::Quick,
            "--seed" => {
                ctx.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|_| "--seed needs an integer")?;
            }
            "--threads" => {
                ctx.threads = argv
                    .next()
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|_| "--threads needs an integer")?;
            }
            "--json" => json = Some(PathBuf::from(argv.next().ok_or("--json needs a path")?)),
            "--csv-dir" => {
                csv_dir = Some(PathBuf::from(argv.next().ok_or("--csv-dir needs a path")?))
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: experiments [{}|all]... [--full|--quick|--smoke] [--seed N] \
                     [--threads N] [--json PATH] [--csv-dir DIR]",
                    ALL_IDS.join("|")
                ))
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    ids.dedup();
    Ok(Args {
        ids,
        ctx,
        json,
        csv_dir,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "ECAD experiment harness — scale {:?}, seed {}, {} thread(s)",
        args.ctx.scale, args.ctx.seed, args.ctx.threads
    );
    println!("(analytical hardware models + synthetic datasets; see DESIGN.md §2)\n");

    let mut json_docs: BTreeMap<String, Json> = BTreeMap::new();
    let mut csv_files: Vec<(String, String)> = Vec::new();

    for id in &args.ids {
        let start = std::time::Instant::now();
        match id.as_str() {
            "table1" => {
                let t = table1::run(&args.ctx);
                println!("{}", t.render());
                let wins = t.ecad_beats_mlp_baseline();
                println!(
                    "claim check: ECAD MLP >= fixed MLP baseline on {}/{} datasets\n",
                    wins.iter().filter(|&&w| w).count(),
                    wins.len()
                );
                json_docs.insert(id.clone(), t.to_json());
            }
            "table2" => {
                let t = table2::run(&args.ctx);
                println!("{}", t.render());
                json_docs.insert(id.clone(), t.to_json());
            }
            "table3" => {
                let t = table3::run(&args.ctx);
                println!("{}", t.render());
                json_docs.insert(id.clone(), t.to_json());
            }
            "table4" => {
                let t = table4::run(&args.ctx);
                println!("{}", t.render());
                println!(
                    "claim check: FPGA out-throughputs GPU on {:.0}% of Pareto rows \
                     (paper: majority)\n",
                    100.0 * t.fpga_win_fraction()
                );
                json_docs.insert(id.clone(), t.to_json());
            }
            "fig2" => {
                let f = fig2::run(&args.ctx);
                println!("{}", f.render());
                println!(
                    "claim check: FPGA one-notch-down gain {:.1}x (paper: ~10x), \
                     GPU corr(neurons, out/s) {:.2} (paper: ~0)\n",
                    f.fpga.step_down_gain, f.gpu.neurons_throughput_correlation
                );
                csv_files.push(("fig2.csv".to_string(), f.to_csv()));
                json_docs.insert(id.clone(), f.to_json());
            }
            "fig3" => {
                let f = fig3::run(&args.ctx);
                println!("{}", f.render());
                println!(
                    "claim check: 1→4 bank peak-throughput scaling {:.2}x \
                     (paper: mostly linear), efficiency roughly flat\n",
                    f.scaling_1_to_4()
                );
                csv_files.push(("fig3.csv".to_string(), f.to_csv()));
                json_docs.insert(id.clone(), f.to_json());
            }
            "fig4" => {
                let f = fig4::run(&args.ctx);
                println!("{}", f.render());
                println!(
                    "claim check: FPGA/GPU efficiency ratio at top accuracy {:.0}x \
                     (paper: 41.5% vs 0.3% ≈ 138x)\n",
                    f.efficiency_ratio()
                );
                csv_files.push(("fig4.csv".to_string(), f.to_csv()));
                json_docs.insert(id.clone(), f.to_json());
            }
            other => unreachable!("validated id {other}"),
        }
        println!(
            "[{} finished in {:.1}s]\n",
            id,
            start.elapsed().as_secs_f64()
        );
    }

    if let Some(dir) = &args.csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (name, content) in &csv_files {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, content) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    }
    if let Some(path) = &args.json {
        let results = Json::Object(
            json_docs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        );
        let doc = Json::object()
            .insert("scale", format!("{:?}", args.ctx.scale))
            .insert("seed", args.ctx.seed)
            .insert("results", results);
        if let Err(e) = std::fs::write(path, doc.pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
