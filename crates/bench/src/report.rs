//! Plain-text table rendering and number formatting for experiment
//! reports.

/// Formats a throughput the way the paper's Table IV does: `2.45E6`.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mantissa = x / 10f64.powi(exp);
    format!("{mantissa:.2}E{exp}")
}

/// Formats an accuracy with four decimals, paper style.
pub fn acc(a: f32) -> String {
    format!("{a:.4}")
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                out.extend(std::iter::repeat_n(' ', w - c.len()));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.extend(std::iter::repeat_n('-', total));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

/// One row of the Table III-shaped run-time statistics report: the
/// paper's Models / AVG / Total columns plus the counters the engine
/// tracks that the paper only describes in prose (cache hits,
/// infeasible candidates) and the per-stage wall-clock split.
#[derive(Debug, Clone)]
pub struct RunStatsRow {
    /// Dataset name.
    pub dataset: String,
    /// Unique models evaluated.
    pub models: usize,
    /// Dedup-cache hits (candidates not re-evaluated).
    pub cache_hits: usize,
    /// Candidates rejected as infeasible (device fit, training failure).
    pub infeasible: usize,
    /// Transient-failure retries (worker panics, timeouts re-queued).
    pub retries: usize,
    /// Evaluations abandoned at the per-evaluation deadline.
    pub timeouts: usize,
    /// Worker threads respawned after wedging or panicking.
    pub respawns: usize,
    /// Average per-model evaluation time, seconds.
    pub avg_eval_s: f64,
    /// Total evaluation time, seconds.
    pub total_eval_s: f64,
    /// Total wall-clock spent training across workers, seconds.
    pub train_s: f64,
    /// Total wall-clock spent in hardware models across workers, seconds.
    pub hw_s: f64,
}

/// Renders run-time statistics in the paper's Table III shape. The
/// Train/HW columns split `Total Eval` by stage, so the table shows at
/// a glance that training dominates (the paper's premise for fast
/// analytical hardware models).
pub fn run_stats_table(rows: &[RunStatsRow]) -> String {
    let mut t = TextTable::new(vec![
        "Dataset",
        "Models",
        "Cache Hits",
        "Infeasible",
        "Retries",
        "Timeouts",
        "Respawns",
        "AVG Eval (s)",
        "Total Eval (s)",
        "Train (s)",
        "HW (s)",
    ]);
    for r in rows {
        t.row(vec![
            r.dataset.clone(),
            r.models.to_string(),
            r.cache_hits.to_string(),
            r.infeasible.to_string(),
            r.retries.to_string(),
            r.timeouts.to_string(),
            r.respawns.to_string(),
            format!("{:.3}", r.avg_eval_s),
            format!("{:.1}", r.total_eval_s),
            format!("{:.1}", r.train_s),
            format!("{:.1}", r.hw_s),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_matches_paper_style() {
        assert_eq!(sci(2.45e6), "2.45E6");
        assert_eq!(sci(7.97e5), "7.97E5");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(8.19e3), "8.19E3");
    }

    #[test]
    fn acc_four_decimals() {
        assert_eq!(acc(0.7880001), "0.7880");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Dataset", "Acc"]);
        t.row(vec!["credit-g", "0.7880"]);
        t.row(vec!["har", "0.9909"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("credit-g"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }
}
