//! `cargo bench` target for the compute-kernel suite; the benchmarks
//! live in `ecad_bench::suites::kernels`.

fn main() {
    ecad_bench::suites::bench_main("kernels");
}
