//! `cargo bench` target for the `ablations` suite; the benchmarks live in
//! `ecad_bench::suites::ablations`.

fn main() {
    ecad_bench::suites::bench_main("ablations");
}
