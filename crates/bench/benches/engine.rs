//! `cargo bench` target for the `engine` suite; the benchmarks live in
//! `ecad_bench::suites::engine`.

fn main() {
    ecad_bench::suites::bench_main("engine");
}
