//! `cargo bench` target for the `models` suite; the benchmarks live in
//! `ecad_bench::suites::models`.

fn main() {
    ecad_bench::suites::bench_main("models");
}
