//! `cargo bench` target for the `obs` suite; the benchmarks live in
//! `ecad_bench::suites::obs`.

fn main() {
    ecad_bench::suites::bench_main("obs");
}
