//! `cargo bench` target for the `experiments` suite; the benchmarks live in
//! `ecad_bench::suites::experiments`.

fn main() {
    ecad_bench::suites::bench_main("experiments");
}
