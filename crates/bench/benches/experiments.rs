//! One benchmark per paper artifact: each runs the corresponding
//! experiment end-to-end at smoke scale, keeping every harness path
//! (dataset generation → search → model scoring → aggregation) hot and
//! measured. The `experiments` binary runs the same code at quick/full
//! scale to regenerate the actual tables and figures.

use rt::bench::Criterion;
use rt::{criterion_group, criterion_main};
use ecad_bench::experiments::{fig2, fig3, fig4, table1, table2, table3, table4};
use ecad_bench::ExperimentContext;

fn smoke() -> ExperimentContext {
    ExperimentContext::smoke()
}

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table1_10fold_accuracy", |b| {
        b.iter(|| table1::run(&smoke()))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table2_1fold_accuracy", |b| {
        b.iter(|| table2::run(&smoke()))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table3_runtime_stats", |b| b.iter(|| table3::run(&smoke())));
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("table4_pareto_s10_vs_tx", |b| {
        b.iter(|| table4::run(&smoke()))
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig2_har_acc_vs_throughput", |b| {
        b.iter(|| fig2::run(&smoke()))
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig3_ddr_bank_scaling", |b| b.iter(|| fig3::run(&smoke())));
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("paper");
    g.sample_size(10);
    g.bench_function("fig4_efficiency_s10_vs_tx", |b| {
        b.iter(|| fig4::run(&smoke()))
    });
    g.finish();
}

criterion_group!(
    experiments,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_fig2,
    bench_fig3,
    bench_fig4
);
criterion_main!(experiments);
