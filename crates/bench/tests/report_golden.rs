//! Golden-file test for the experiment report format. The rendered
//! table layout is part of the repo's reviewable output (tables are
//! diffed against the paper's numbers by eye), so format drift should
//! be a deliberate, visible change: update the golden file alongside
//! any change to `report.rs`.

use ecad_bench::report::{acc, sci, TextTable};

fn render_sample_table() -> String {
    let mut t = TextTable::new(vec!["Dataset", "Accuracy", "Throughput", "Efficiency"]);
    t.row(vec![
        "credit-g".to_string(),
        acc(0.788),
        sci(2.45e6),
        format!("{:.4}", 0.0123),
    ]);
    t.row(vec![
        "har".to_string(),
        acc(0.99091),
        sci(7.97e5),
        format!("{:.4}", 0.4567),
    ]);
    t.row(vec![
        "shuttle".to_string(),
        acc(0.99890),
        sci(8.19e3),
        format!("{:.4}", 1.0),
    ]);
    t.render()
}

#[test]
fn table_render_matches_golden_file() {
    let golden = include_str!("golden/table_format.txt");
    let rendered = render_sample_table();
    assert_eq!(
        rendered, golden,
        "report format drifted from the golden file; if intentional, \
         update crates/bench/tests/golden/table_format.txt"
    );
}

#[test]
fn golden_file_obeys_its_own_invariants() {
    // Belt-and-braces: the fixture itself should look like a table the
    // renderer could have produced (aligned separator, no trailing
    // whitespace — `render` trims padding at end of line).
    let golden = include_str!("golden/table_format.txt");
    let lines: Vec<&str> = golden.lines().collect();
    assert!(lines.len() >= 3);
    assert!(lines[1].chars().all(|c| c == '-'));
    for l in &lines {
        assert_eq!(l.trim_end(), *l, "golden file has trailing whitespace");
    }
}
