//! Golden-file test for the experiment report format. The rendered
//! table layout is part of the repo's reviewable output (tables are
//! diffed against the paper's numbers by eye), so format drift should
//! be a deliberate, visible change: update the golden file alongside
//! any change to `report.rs`.

use ecad_bench::report::{acc, run_stats_table, sci, RunStatsRow, TextTable};

fn render_sample_table() -> String {
    let mut t = TextTable::new(vec!["Dataset", "Accuracy", "Throughput", "Efficiency"]);
    t.row(vec![
        "credit-g".to_string(),
        acc(0.788),
        sci(2.45e6),
        format!("{:.4}", 0.0123),
    ]);
    t.row(vec![
        "har".to_string(),
        acc(0.99091),
        sci(7.97e5),
        format!("{:.4}", 0.4567),
    ]);
    t.row(vec![
        "shuttle".to_string(),
        acc(0.99890),
        sci(8.19e3),
        format!("{:.4}", 1.0),
    ]);
    t.render()
}

fn render_sample_run_stats() -> String {
    run_stats_table(&[
        RunStatsRow {
            dataset: "credit-g".to_string(),
            models: 10480,
            cache_hits: 2315,
            infeasible: 112,
            retries: 9,
            timeouts: 3,
            respawns: 1,
            avg_eval_s: 2.242,
            total_eval_s: 23495.2,
            train_s: 21034.7,
            hw_s: 18.3,
        },
        RunStatsRow {
            dataset: "mnist".to_string(),
            models: 553,
            cache_hits: 91,
            infeasible: 4,
            retries: 0,
            timeouts: 0,
            respawns: 0,
            avg_eval_s: 71.227,
            total_eval_s: 39388.6,
            train_s: 39201.0,
            hw_s: 2.1,
        },
    ])
}

#[test]
fn run_stats_table_matches_golden_file() {
    let golden = include_str!("golden/table3_format.txt");
    assert_eq!(
        render_sample_run_stats(),
        golden,
        "Table III run-stats format drifted from the golden file; if \
         intentional, update crates/bench/tests/golden/table3_format.txt"
    );
}

#[test]
fn table_render_matches_golden_file() {
    let golden = include_str!("golden/table_format.txt");
    let rendered = render_sample_table();
    assert_eq!(
        rendered, golden,
        "report format drifted from the golden file; if intentional, \
         update crates/bench/tests/golden/table_format.txt"
    );
}

#[test]
fn golden_file_obeys_its_own_invariants() {
    // Belt-and-braces: the fixture itself should look like a table the
    // renderer could have produced (aligned separator, no trailing
    // whitespace — `render` trims padding at end of line).
    let golden = include_str!("golden/table_format.txt");
    let lines: Vec<&str> = golden.lines().collect();
    assert!(lines.len() >= 3);
    assert!(lines[1].chars().all(|c| c == '-'));
    for l in &lines {
        assert_eq!(l.trim_end(), *l, "golden file has trailing whitespace");
    }
}
