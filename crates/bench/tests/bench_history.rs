//! On-disk tests for `bench::history`: loading `BENCH_*.json` files
//! from a directory, merged rewrites, deterministic output, and the
//! gate end-to-end over synthetic histories.

use std::path::{Path, PathBuf};

use ecad_bench::history::{self, GateConfig, HistoryError};
use rt::bench::{write_report_merged, BenchResult, ReportMeta, Summary};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ecad_bench_history").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn result(id: &str, p95: f64) -> BenchResult {
    BenchResult {
        id: id.to_string(),
        summary: Summary {
            min_ns: p95 * 0.5,
            p50_ns: p95 * 0.8,
            p95_ns: p95,
            max_ns: p95 * 1.5,
            mean_ns: p95 * 0.9,
        },
        samples: 10,
        iters_per_sample: 100,
        profile: None,
    }
}

fn write_day(dir: &Path, day: u64, suite: &str, results: &[BenchResult]) -> PathBuf {
    // One synthetic day per index, spaced well apart.
    let meta = ReportMeta::at(1_700_000_000 + day * 86_400, format!("rev{day}"));
    let path = dir.join(rt::bench::bench_file_name(&meta.date));
    write_report_merged(&path, suite, results, &meta).unwrap();
    path
}

/// Files load oldest-first regardless of creation order, and a
/// same-file rewrite with identical measurements is byte-identical
/// (deterministic iteration order).
#[test]
fn load_history_is_chronological_and_writes_are_stable() {
    let dir = tmp_dir("chronological");
    // Created newest-first on purpose.
    write_day(&dir, 2, "kernels", &[result("gemm", 120.0)]);
    write_day(&dir, 0, "kernels", &[result("gemm", 100.0)]);
    let path = write_day(&dir, 1, "kernels", &[result("gemm", 110.0)]);
    std::fs::write(dir.join("NOT_BENCH.json"), "{}").unwrap();

    let history = history::load_history(&dir).unwrap();
    let p95s: Vec<f64> = history
        .iter()
        .map(|f| f.report.entries[0].ns_p95)
        .collect();
    assert_eq!(p95s, [100.0, 110.0, 120.0]);

    let before = std::fs::read(&path).unwrap();
    write_day(&dir, 1, "kernels", &[result("gemm", 110.0)]);
    assert_eq!(before, std::fs::read(&path).unwrap(), "rewrite must be byte-stable");
}

/// Two suites written into the same day's file on separate calls both
/// survive, sorted by `(suite, id)`; re-writing one suite replaces
/// only its own entries.
#[test]
fn merged_report_keeps_other_suites() {
    let dir = tmp_dir("merge");
    write_day(&dir, 0, "models", &[result("mlp/forward", 500.0)]);
    write_day(&dir, 0, "kernels", &[result("gemm", 100.0), result("argmax", 50.0)]);
    write_day(&dir, 0, "kernels", &[result("gemm", 101.0)]); // replaces kernels only

    let history = history::load_history(&dir).unwrap();
    assert_eq!(history.len(), 1);
    let keys: Vec<String> = history[0].report.entries.iter().map(|e| e.key()).collect();
    assert_eq!(keys, ["kernels/gemm", "models/mlp/forward"]);
    assert_eq!(history[0].report.entries[0].ns_p95, 101.0);
}

/// A syntactically broken file is rejected with its 1-based line and
/// column; a schema-violating file names the offending element.
#[test]
fn malformed_files_are_rejected_with_location() {
    let dir = tmp_dir("malformed");
    let bad = dir.join("BENCH_2026-01-01.json");
    std::fs::write(&bad, "{\n  \"schema_version\": 1,\n  \"date\": oops\n}\n").unwrap();
    let err = history::load_history(&dir).unwrap_err();
    match &err {
        HistoryError::Parse { line, column, path, .. } => {
            assert_eq!(*line, 3, "line in {err}");
            assert!(*column > 1);
            assert!(path.ends_with("BENCH_2026-01-01.json"));
        }
        other => panic!("expected Parse error, got {other:?}"),
    }

    std::fs::write(
        &bad,
        r#"{
  "schema_version": 1,
  "date": "2026-01-01",
  "created_utc": "2026-01-01T00:00:00Z",
  "git_rev": "r",
  "benchmarks": [
    { "suite": "kernels", "id": "gemm" }
  ]
}"#,
    )
    .unwrap();
    let err = history::load_history(&dir).unwrap_err();
    match &err {
        HistoryError::Schema { at, .. } => assert_eq!(at, "benchmarks[0]"),
        other => panic!("expected Schema error, got {other:?}"),
    }

    // Unsupported schema versions are refused rather than misread.
    std::fs::write(
        &bad,
        r#"{
  "schema_version": 99,
  "date": "2026-01-01",
  "created_utc": "2026-01-01T00:00:00Z",
  "git_rev": "r",
  "benchmarks": []
}"#,
    )
    .unwrap();
    let err = history::load_history(&dir).unwrap_err();
    assert!(err.to_string().contains("unsupported version 99"), "{err}");
}

/// End-to-end gate over real files: a 10x p95 regression fails against
/// a 50% limit and passes against a generous one, and hysteresis keeps
/// the gate red while the regressed run is inside the required window.
#[test]
fn gate_over_files_catches_regression() {
    let dir = tmp_dir("gate");
    for (day, p95) in [(0, 100.0), (1, 102.0), (2, 98.0)] {
        write_day(&dir, day, "kernels", &[result("gemm", p95)]);
    }
    write_day(&dir, 3, "kernels", &[result("gemm", 1000.0)]);

    let history = history::load_history(&dir).unwrap();
    let config = GateConfig {
        max_p95_regression_pct: Some(50.0),
        window_size: 3,
        ..GateConfig::default()
    };
    let verdict = history::gate(&history, &config);
    assert!(!verdict.passed);
    assert!(verdict.checks.iter().any(|c| !c.passed && c.reason.contains("regressed")));

    let generous = GateConfig {
        max_p95_regression_pct: Some(2000.0),
        ..config.clone()
    };
    assert!(history::gate(&history, &generous).passed);

    // One clean run after the regression is not enough with
    // required_passes = 2 …
    write_day(&dir, 4, "kernels", &[result("gemm", 100.0)]);
    let history = history::load_history(&dir).unwrap();
    let hysteresis = GateConfig {
        required_passes: 2,
        ..config.clone()
    };
    assert!(!history::gate(&history, &hysteresis).passed);
    // … the absolute ceiling composes with the regression check.
    let ceiling = GateConfig {
        threshold_p95_ms: Some(0.0005), // 500 µs: the spike run violates it
        ..hysteresis.clone()
    };
    let verdict = history::gate(&history, &ceiling);
    assert!(verdict.checks.iter().any(|c| c.reason.contains("threshold")));
}

/// The gate report renders deterministically in both formats.
#[test]
fn gate_output_is_deterministic() {
    let dir = tmp_dir("gate_render");
    write_day(&dir, 0, "kernels", &[result("b", 100.0), result("a", 100.0)]);
    write_day(&dir, 1, "kernels", &[result("a", 105.0), result("b", 103.0)]);
    let history = history::load_history(&dir).unwrap();
    let config = GateConfig {
        max_p95_regression_pct: Some(10.0),
        ..GateConfig::default()
    };
    let first = history::gate(&history, &config);
    let second = history::gate(&history, &config);
    assert_eq!(history::gate_table(&first), history::gate_table(&second));
    assert_eq!(
        first.to_json().pretty(),
        second.to_json().pretty()
    );
    // Checks are ordered by (suite, id) within the run.
    let ids: Vec<&str> = first.checks.iter().map(|c| c.id.as_str()).collect();
    assert_eq!(ids, ["a", "b"]);
}
