//! Golden + fixpoint tests pinning the `BENCH_*.json` schema.
//!
//! The golden file (`tests/golden/BENCH_golden.json`) is the schema's
//! contract: producing it from code must be byte-identical to the
//! checked-in copy, re-serializing the parsed document must be
//! byte-identical (the `rt::json` fixpoint property), and the
//! `bench::history` consumer must round-trip it back to the same
//! bytes. Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p ecad-bench --test bench_schema_golden`.

use std::path::PathBuf;

use ecad_bench::history;
use rt::bench::{report_to_json, result_to_json, BenchResult, ReportMeta, Summary};
use rt::json::Json;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/BENCH_golden.json")
}

/// A fixed report exercising the schema: two suites, exact and
/// fractional nanosecond values, single and multi-sample entries,
/// deliberately registered out of sorted order.
fn golden_report() -> String {
    let meta = ReportMeta::at(1_786_233_600, "0123456789abcdef"); // 2026-08-09T00:00:00Z
    let result = |id: &str, p50: f64, p95: f64, samples: usize, iters: u64| BenchResult {
        id: id.to_string(),
        summary: Summary {
            min_ns: p50 * 0.5,
            p50_ns: p50,
            p95_ns: p95,
            max_ns: p95 * 2.0,
            mean_ns: (p50 + p95) / 2.0,
        },
        samples,
        iters_per_sample: iters,
        profile: None,
    };
    let entries = vec![
        result_to_json("models", &result("mlp/forward/credit_g", 125.5, 150.25, 10, 1000)),
        result_to_json("kernels", &result("matrix/argmax_rows_512", 2048.0, 4096.0, 1, 1)),
        result_to_json("kernels", &result("gemm/blocked/64", 100.0, 300.0, 25, 7)),
    ];
    report_to_json(&meta, entries).pretty() + "\n"
}

/// Producing the report from code matches the checked-in golden file
/// byte for byte — any schema change (field order, formatting, sort
/// order, version) fails here first.
#[test]
fn emitted_report_matches_golden_file() {
    let generated = golden_report();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        generated,
        committed,
        "BENCH schema drifted from the golden file; if intentional, bump \
         BENCH_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

/// serialize(parse(golden)) == golden: the schema survives the
/// `rt::json` round trip byte-identically, so merged rewrites of an
/// existing report are stable.
#[test]
fn golden_file_is_a_serializer_fixpoint() {
    let text = golden_report();
    let reparsed = Json::parse(&text).unwrap().pretty() + "\n";
    assert_eq!(text, reparsed);
}

/// The `bench::history` consumer parses the golden report, and
/// re-emitting its entries through the producer reproduces the exact
/// bytes — producer and consumer agree on every field.
#[test]
fn history_round_trips_golden_report() {
    let text = golden_report();
    let report = history::parse_report("golden", &text).unwrap();
    assert_eq!(report.date, "2026-08-09");
    assert_eq!(report.git_rev, "0123456789abcdef");
    assert_eq!(report.entries.len(), 3);
    // Entries come back sorted by (suite, id) even though they were
    // registered out of order.
    let keys: Vec<String> = report.entries.iter().map(history::Entry::key).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);

    let meta = ReportMeta::at(1_786_233_600, report.git_rev.clone());
    let entries: Vec<Json> = report
        .entries
        .iter()
        .map(|e| {
            result_to_json(
                &e.suite,
                &BenchResult {
                    id: e.id.clone(),
                    summary: Summary {
                        min_ns: e.ns_min,
                        p50_ns: e.ns_p50,
                        p95_ns: e.ns_p95,
                        max_ns: e.ns_max,
                        mean_ns: e.ns_mean,
                    },
                    samples: e.samples as usize,
                    iters_per_sample: e.iters_per_sample,
                    profile: None,
                },
            )
        })
        .collect();
    let re_emitted = report_to_json(&meta, entries).pretty() + "\n";
    assert_eq!(text, re_emitted);
}
