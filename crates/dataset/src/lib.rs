//! # ecad-dataset
//!
//! Tabular dataset handling for the ECAD co-design flow.
//!
//! The paper's flow starts from "a dataset ... exported into a Comma
//! Separated Value (CSV) tabular data format" (§III). This crate provides
//! that entry point plus everything evaluation needs:
//!
//! * [`Dataset`] — features + integer class labels, with splits and
//!   shuffling.
//! * [`csv`] — a dependency-free CSV codec (quoted fields, round-trip).
//! * [`folds`] — 10-fold cross-validation per the OpenML estimation
//!   procedure the paper cites \[24\], stratified and seeded.
//! * [`scaler`] — per-feature standardization fit on training folds only.
//! * [`synth`] — a class-conditional Gaussian-mixture generator with a
//!   non-linear feature map and label noise.
//! * [`benchmarks`] — the six paper benchmarks (MNIST, Fashion-MNIST,
//!   Credit-g, HAR, Phishing, Bioresponse) as synthetic stand-ins with the
//!   real datasets' shapes and difficulty profiles (see `DESIGN.md` §2 for
//!   the substitution rationale).
//!
//! ## Example
//!
//! ```
//! use ecad_dataset::benchmarks::{self, Benchmark};
//!
//! let ds = benchmarks::load(Benchmark::CreditG).with_samples(200).generate();
//! assert_eq!(ds.n_features(), 20);
//! assert_eq!(ds.n_classes(), 2);
//! ```

#![warn(missing_docs)]

mod table;

pub mod benchmarks;
pub mod csv;
pub mod folds;
pub mod scaler;
pub mod synth;

pub use table::{Dataset, DatasetError};
