//! Per-feature standardization.
//!
//! MLP training is sensitive to feature scale; the standard practice the
//! paper's sklearn baselines follow is z-score standardization fit on the
//! training split only. [`StandardScaler`] reproduces that: `fit` learns
//! per-column mean/std from the training data, `transform` applies them
//! to any split. Zero-variance columns pass through unscaled (divisor 1)
//! rather than producing NaN.

use ecad_tensor::{ops, Matrix};

use crate::Dataset;

/// A fitted z-score standardizer (`x' = (x - mean) / std`).
///
/// # Example
///
/// ```
/// use ecad_dataset::scaler::StandardScaler;
/// use ecad_tensor::Matrix;
///
/// let train = Matrix::from_rows(&[[0.0], [2.0]]);
/// let scaler = StandardScaler::fit(&train);
/// let scaled = scaler.transform(&train);
/// assert_eq!(scaled.row(0), &[-1.0]);
/// assert_eq!(scaled.row(1), &[1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl StandardScaler {
    /// Learns per-column mean and standard deviation from `train`.
    pub fn fit(train: &Matrix) -> Self {
        let means = ops::col_means(train);
        let stds = ops::col_stds(train)
            .into_iter()
            .map(|s| if s > 1e-8 { s } else { 1.0 })
            .collect();
        Self { means, stds }
    }

    /// Applies the learned standardization to `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` has a different column count than the fit data.
    pub fn transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(
            m.cols(),
            self.means.len(),
            "scaler fit on {} columns, got {}",
            self.means.len(),
            m.cols()
        );
        Matrix::from_fn(m.rows(), m.cols(), |r, c| {
            (m[(r, c)] - self.means[c]) / self.stds[c]
        })
    }

    /// Inverts the standardization (`x = x' * std + mean`).
    ///
    /// # Panics
    ///
    /// Panics if `m` has a different column count than the fit data.
    pub fn inverse_transform(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.means.len(), "column count mismatch");
        Matrix::from_fn(m.rows(), m.cols(), |r, c| {
            m[(r, c)] * self.stds[c] + self.means[c]
        })
    }

    /// Learned per-column means.
    pub fn means(&self) -> &[f32] {
        &self.means
    }

    /// Learned per-column standard deviations (zero-variance columns
    /// report 1.0).
    pub fn stds(&self) -> &[f32] {
        &self.stds
    }
}

/// Fits a scaler on `train` and returns standardized copies of both
/// datasets — the fit-on-train-only pattern in one call.
pub fn standardize_pair(train: &Dataset, test: &Dataset) -> (Dataset, Dataset) {
    let scaler = StandardScaler::fit(train.features());
    (
        train.with_features(scaler.transform(train.features())),
        test.with_features(scaler.transform(test.features())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_centers_and_scales() {
        let train = Matrix::from_rows(&[[1.0, 10.0], [3.0, 30.0]]);
        let s = StandardScaler::fit(&train);
        let t = s.transform(&train);
        // Each column becomes mean 0, std 1.
        for c in 0..2 {
            let col = t.col(c);
            let mean: f32 = col.iter().sum::<f32>() / 2.0;
            assert!(mean.abs() < 1e-6);
            assert!((col[0] + 1.0).abs() < 1e-6);
            assert!((col[1] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_variance_column_passes_through() {
        let train = Matrix::from_rows(&[[5.0], [5.0]]);
        let s = StandardScaler::fit(&train);
        let t = s.transform(&train);
        assert!(t.all_finite());
        assert_eq!(t.row(0), &[0.0]);
        assert_eq!(s.stds(), &[1.0]);
    }

    #[test]
    fn inverse_round_trips() {
        let train = Matrix::from_rows(&[[1.0, -2.0], [4.0, 6.0], [0.0, 0.5]]);
        let s = StandardScaler::fit(&train);
        let back = s.inverse_transform(&s.transform(&train));
        for (a, b) in back.as_slice().iter().zip(train.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "scaler fit on")]
    fn transform_rejects_width_mismatch() {
        let s = StandardScaler::fit(&Matrix::zeros(2, 3));
        let _ = s.transform(&Matrix::zeros(2, 4));
    }

    #[test]
    fn standardize_pair_uses_train_statistics_only() {
        use crate::Dataset;
        let train = Dataset::new("t", Matrix::from_rows(&[[0.0], [2.0]]), vec![0, 1], 2).unwrap();
        let test = Dataset::new("t", Matrix::from_rows(&[[4.0]]), vec![0], 2).unwrap();
        let (_, test_s) = standardize_pair(&train, &test);
        // Train mean 1, std 1 => 4 maps to 3, not to anything test-local.
        assert!((test_s.features()[(0, 0)] - 3.0).abs() < 1e-6);
    }
}
