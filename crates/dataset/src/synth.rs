//! Synthetic classification dataset generator.
//!
//! The real benchmark data (OpenML, Keras) is not available offline, so
//! the six paper benchmarks are reproduced as *shape- and
//! difficulty-matched* synthetic datasets (DESIGN.md §2, substitution 3).
//!
//! The generative model is a class-conditional Gaussian mixture in a
//! low-dimensional **informative subspace**, lifted into the full feature
//! space through a random linear map plus a `tanh` non-linear mixing term,
//! with label-flip noise:
//!
//! 1. each class `c` gets `clusters_per_class` centroids on a hypersphere
//!    of radius `class_sep` in `R^{n_informative}`;
//! 2. a sample is its centroid plus isotropic Gaussian spread;
//! 3. the latent point `z` is lifted to `x = A z + nonlinearity * tanh(B z)
//!    + noise`, making the Bayes boundary non-linear (so MLPs beat linear
//!    models when `nonlinearity > 0`);
//! 4. the label is flipped to a different class with probability
//!    `label_noise`, capping attainable accuracy near
//!    `1 - label_noise` — this is the knob that matches each benchmark's
//!    published accuracy band.

use ecad_tensor::{init, Matrix};
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, SeedableRng};

use crate::Dataset;

/// Declarative description of a synthetic dataset.
///
/// Build with [`SyntheticSpec::new`] and the `with_*` setters, then call
/// [`SyntheticSpec::generate`].
///
/// # Example
///
/// ```
/// use ecad_dataset::synth::SyntheticSpec;
///
/// let ds = SyntheticSpec::new("demo", 100, 8, 3).with_seed(7).generate();
/// assert_eq!(ds.len(), 100);
/// assert_eq!(ds.n_classes(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    name: String,
    n_samples: usize,
    n_features: usize,
    n_classes: usize,
    n_informative: usize,
    clusters_per_class: usize,
    class_sep: f32,
    cluster_spread: f32,
    nonlinearity: f32,
    feature_noise: f32,
    label_noise: f32,
    seed: u64,
}

impl SyntheticSpec {
    /// Creates a spec with sensible defaults: informative dimension
    /// `min(16, n_features)`, one cluster per class, separation 2.0,
    /// spread 1.0, mild non-linearity, no label noise, seed 0.
    ///
    /// # Panics
    ///
    /// Panics if any of `n_samples`, `n_features`, `n_classes` is zero or
    /// `n_classes < 2`.
    pub fn new(
        name: impl Into<String>,
        n_samples: usize,
        n_features: usize,
        n_classes: usize,
    ) -> Self {
        assert!(n_samples > 0, "n_samples must be positive");
        assert!(n_features > 0, "n_features must be positive");
        assert!(n_classes >= 2, "need at least two classes");
        Self {
            name: name.into(),
            n_samples,
            n_features,
            n_classes,
            n_informative: n_features.min(16),
            clusters_per_class: 1,
            class_sep: 2.0,
            cluster_spread: 1.0,
            nonlinearity: 0.5,
            feature_noise: 0.1,
            label_noise: 0.0,
            seed: 0,
        }
    }

    /// Sets the number of samples.
    pub fn with_samples(mut self, n: usize) -> Self {
        assert!(n > 0, "n_samples must be positive");
        self.n_samples = n;
        self
    }

    /// Sets the informative subspace dimension (clamped to `n_features`).
    pub fn with_informative(mut self, n: usize) -> Self {
        self.n_informative = n.clamp(1, self.n_features);
        self
    }

    /// Sets the number of Gaussian clusters per class.
    pub fn with_clusters_per_class(mut self, n: usize) -> Self {
        self.clusters_per_class = n.max(1);
        self
    }

    /// Sets the centroid hypersphere radius (larger = easier).
    pub fn with_class_sep(mut self, sep: f32) -> Self {
        self.class_sep = sep.max(0.0);
        self
    }

    /// Sets the isotropic within-cluster spread (larger = harder).
    pub fn with_cluster_spread(mut self, s: f32) -> Self {
        self.cluster_spread = s.max(1e-3);
        self
    }

    /// Sets the weight of the `tanh` non-linear mixing term.
    pub fn with_nonlinearity(mut self, w: f32) -> Self {
        self.nonlinearity = w.max(0.0);
        self
    }

    /// Sets additive per-feature observation noise.
    pub fn with_feature_noise(mut self, s: f32) -> Self {
        self.feature_noise = s.max(0.0);
        self
    }

    /// Sets the label-flip probability (caps attainable accuracy near
    /// `1 - p`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_label_noise(mut self, p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "label noise must be in [0, 1)");
        self.label_noise = p;
        self
    }

    /// Sets the RNG seed. Identical specs generate identical datasets.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Dataset name this spec will produce.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sample count this spec will produce.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Feature count this spec will produce.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Class count this spec will produce.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Label-flip probability.
    pub fn label_noise(&self) -> f32 {
        self.label_noise
    }

    /// Generates the dataset described by this spec.
    ///
    /// Deterministic: the same spec (including seed) always produces the
    /// same dataset, which the engine's dedup cache and the reproducible
    /// experiment harness rely on.
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed ^ fnv1a(self.name.as_bytes()));
        let d = self.n_informative;

        // Per-(class, cluster) centroids on a hypersphere of radius class_sep.
        let total_clusters = self.n_classes * self.clusters_per_class;
        let mut centroids = Vec::with_capacity(total_clusters);
        for _ in 0..total_clusters {
            let mut v: Vec<f32> = (0..d).map(|_| init::standard_normal(&mut rng)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
            for x in &mut v {
                *x *= self.class_sep / norm;
            }
            centroids.push(v);
        }

        // Random lift maps shared by all samples.
        let lift_a = init::gaussian(&mut rng, d, self.n_features, 1.0 / (d as f32).sqrt());
        let lift_b = init::gaussian(&mut rng, d, self.n_features, 1.0 / (d as f32).sqrt());

        let mut features = Matrix::zeros(self.n_samples, self.n_features);
        let mut labels = Vec::with_capacity(self.n_samples);
        let mut z = vec![0.0f32; d];
        for s in 0..self.n_samples {
            let class = s % self.n_classes; // balanced classes
            let cluster = rng.gen_range(0..self.clusters_per_class);
            let centroid = &centroids[class * self.clusters_per_class + cluster];
            for (zi, &ci) in z.iter_mut().zip(centroid) {
                *zi = ci + self.cluster_spread * init::standard_normal(&mut rng);
            }
            let row = features.row_mut(s);
            for (j, x) in row.iter_mut().enumerate() {
                let mut lin = 0.0f32;
                let mut nl = 0.0f32;
                for (i, &zi) in z.iter().enumerate() {
                    lin += zi * lift_a[(i, j)];
                    nl += zi * lift_b[(i, j)];
                }
                *x = lin
                    + self.nonlinearity * nl.tanh()
                    + self.feature_noise * init::standard_normal(&mut rng);
            }
            // Label-flip noise: move to a uniformly random *other* class.
            let label = if self.label_noise > 0.0 && rng.gen::<f32>() < self.label_noise {
                let shift = rng.gen_range(1..self.n_classes);
                (class + shift) % self.n_classes
            } else {
                class
            };
            labels.push(label);
        }

        Dataset::new(self.name.clone(), features, labels, self.n_classes)
            .expect("generator invariants guarantee a valid dataset")
    }
}

/// FNV-1a hash of a byte string; used to fold the dataset name into the
/// seed so differently-named specs with the same seed differ.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_has_requested_shape() {
        let ds = SyntheticSpec::new("s", 50, 12, 4).generate();
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.n_features(), 12);
        assert_eq!(ds.n_classes(), 4);
        assert!(ds.features().all_finite());
    }

    #[test]
    fn classes_are_balanced() {
        let ds = SyntheticSpec::new("s", 100, 4, 4).generate();
        assert_eq!(ds.class_counts(), vec![25, 25, 25, 25]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticSpec::new("s", 30, 5, 2).with_seed(9).generate();
        let b = SyntheticSpec::new("s", 30, 5, 2).with_seed(9).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticSpec::new("s", 30, 5, 2).with_seed(1).generate();
        let b = SyntheticSpec::new("s", 30, 5, 2).with_seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn different_names_differ_even_with_same_seed() {
        let a = SyntheticSpec::new("alpha", 30, 5, 2)
            .with_seed(1)
            .generate();
        let b = SyntheticSpec::new("beta", 30, 5, 2).with_seed(1).generate();
        assert_ne!(a.features(), b.features());
    }

    #[test]
    fn label_noise_flips_approximately_p() {
        let p = 0.3f32;
        let n = 4000;
        let noisy = SyntheticSpec::new("s", n, 4, 2)
            .with_label_noise(p)
            .with_seed(5)
            .generate();
        // Without noise the label would be s % n_classes.
        let flipped = noisy
            .labels()
            .iter()
            .enumerate()
            .filter(|(i, &l)| l != i % 2)
            .count();
        let rate = flipped as f32 / n as f32;
        assert!((rate - p).abs() < 0.03, "flip rate {rate}");
    }

    #[test]
    fn higher_separation_is_easier_for_centroid_classifier() {
        // A nearest-class-mean classifier should do much better on
        // well-separated data than on overlapping data.
        let acc = |sep: f32| {
            let ds = SyntheticSpec::new("s", 400, 10, 2)
                .with_class_sep(sep)
                .with_nonlinearity(0.0)
                .with_seed(11)
                .generate();
            // class means
            let mut means = vec![vec![0.0f32; ds.n_features()]; 2];
            let counts = ds.class_counts();
            for r in 0..ds.len() {
                let l = ds.labels()[r];
                for (m, &v) in means[l].iter_mut().zip(ds.features().row(r)) {
                    *m += v;
                }
            }
            for (m, &c) in means.iter_mut().zip(&counts) {
                for v in m.iter_mut() {
                    *v /= c as f32;
                }
            }
            let mut hits = 0;
            for r in 0..ds.len() {
                let row = ds.features().row(r);
                let d0 = ecad_tensor::ops::euclidean(row, &means[0]);
                let d1 = ecad_tensor::ops::euclidean(row, &means[1]);
                let pred = usize::from(d1 < d0);
                hits += usize::from(pred == ds.labels()[r]);
            }
            hits as f32 / ds.len() as f32
        };
        let easy = acc(6.0);
        let hard = acc(0.2);
        assert!(easy > hard + 0.15, "easy {easy} vs hard {hard}");
    }

    #[test]
    #[should_panic(expected = "label noise")]
    fn rejects_label_noise_of_one() {
        let _ = SyntheticSpec::new("s", 10, 2, 2).with_label_noise(1.0);
    }

    #[test]
    fn informative_clamped_to_features() {
        let spec = SyntheticSpec::new("s", 10, 4, 2).with_informative(100);
        let ds = spec.generate();
        assert_eq!(ds.n_features(), 4);
    }
}
