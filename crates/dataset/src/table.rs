use std::error::Error;
use std::fmt;

use ecad_tensor::Matrix;
use rt::rand::seq::SliceRandom;
use rt::rand::Rng;

/// Error produced while constructing or manipulating a [`Dataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Feature row count and label count differ.
    LengthMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label is out of range for the declared class count.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Declared number of classes.
        classes: usize,
    },
    /// The dataset has no samples.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::LengthMismatch { rows, labels } => {
                write!(
                    f,
                    "feature rows ({rows}) do not match label count ({labels})"
                )
            }
            DatasetError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DatasetError::Empty => write!(f, "dataset has no samples"),
        }
    }
}

impl Error for DatasetError {}

/// A classification dataset: a feature matrix and parallel integer labels.
///
/// This is the unit of work the evolutionary engine hands to workers: the
/// simulation worker trains candidate MLPs on it, the baselines crate fits
/// comparison classifiers on it.
///
/// # Example
///
/// ```
/// use ecad_dataset::Dataset;
/// use ecad_tensor::Matrix;
///
/// let x = Matrix::from_rows(&[[0.0, 1.0], [1.0, 0.0]]);
/// let ds = Dataset::new("toy", x, vec![0, 1], 2)?;
/// assert_eq!(ds.len(), 2);
/// # Ok::<(), ecad_dataset::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Matrix,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset after validating shapes and label ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] if the dataset is empty, row/label counts
    /// differ, or a label exceeds `n_classes`.
    pub fn new(
        name: impl Into<String>,
        features: Matrix,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        if features.rows() == 0 {
            return Err(DatasetError::Empty);
        }
        if features.rows() != labels.len() {
            return Err(DatasetError::LengthMismatch {
                rows: features.rows(),
                labels: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= n_classes) {
            return Err(DatasetError::LabelOutOfRange {
                label: bad,
                classes: n_classes,
            });
        }
        Ok(Self {
            name: name.into(),
            features,
            labels,
            n_classes,
        })
    }

    /// Dataset name (e.g. `"credit-g"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has zero samples (never true for a constructed
    /// `Dataset`, but required alongside `len`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrows the feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Borrows the labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class sample counts (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Returns a new dataset containing the selected sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or `indices` is empty.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        assert!(!indices.is_empty(), "subset requires at least one index");
        Dataset {
            name: self.name.clone(),
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Splits into `(train, test)` with `test_fraction` of samples in the
    /// test set, after a seeded shuffle.
    ///
    /// # Panics
    ///
    /// Panics if `test_fraction` is not in `(0, 1)` or either side would
    /// be empty.
    pub fn split<R: Rng + ?Sized>(&self, test_fraction: f32, rng: &mut R) -> (Dataset, Dataset) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "test_fraction must be in (0, 1)"
        );
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = ((self.len() as f32 * test_fraction).round() as usize)
            .max(1)
            .min(self.len() - 1);
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.subset(train_idx), self.subset(test_idx))
    }

    /// Returns a copy with rows shuffled by `rng`.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        self.subset(&idx)
    }

    /// Returns a copy truncated to at most `n` samples (the first `n`
    /// after the dataset's existing order). Use after [`Dataset::shuffled`]
    /// for random subsampling.
    pub fn truncated(&self, n: usize) -> Dataset {
        if n >= self.len() {
            return self.clone();
        }
        let idx: Vec<usize> = (0..n.max(1)).collect();
        self.subset(&idx)
    }

    /// Replaces the feature matrix (used by the scaler).
    ///
    /// # Panics
    ///
    /// Panics if the new matrix has a different number of rows.
    pub fn with_features(&self, features: Matrix) -> Dataset {
        assert_eq!(
            features.rows(),
            self.len(),
            "replacement features must keep the sample count"
        );
        Dataset {
            name: self.name.clone(),
            features,
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn toy(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 3, |r, c| (r * 3 + c) as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % 2).collect();
        Dataset::new("toy", x, labels, 2).unwrap()
    }

    #[test]
    fn new_validates_lengths() {
        let x = Matrix::zeros(2, 2);
        let err = Dataset::new("x", x, vec![0], 2).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::LengthMismatch { rows: 2, labels: 1 }
        ));
    }

    #[test]
    fn new_validates_label_range() {
        let x = Matrix::zeros(2, 2);
        let err = Dataset::new("x", x, vec![0, 5], 2).unwrap_err();
        assert!(matches!(
            err,
            DatasetError::LabelOutOfRange {
                label: 5,
                classes: 2
            }
        ));
    }

    #[test]
    fn new_rejects_empty() {
        let x = Matrix::zeros(0, 2);
        assert_eq!(
            Dataset::new("x", x, vec![], 2).unwrap_err(),
            DatasetError::Empty
        );
    }

    #[test]
    fn class_counts_sum_to_len() {
        let ds = toy(7);
        let counts = ds.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert_eq!(counts, vec![4, 3]);
    }

    #[test]
    fn subset_preserves_rows() {
        let ds = toy(5);
        let s = ds.subset(&[4, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.features().row(0), ds.features().row(4));
        assert_eq!(s.labels(), &[0, 0]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let ds = toy(20);
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = ds.split(0.25, &mut rng);
        assert_eq!(train.len() + test.len(), 20);
        assert_eq!(test.len(), 5);
    }

    #[test]
    fn split_is_deterministic_for_seed() {
        let ds = toy(12);
        let (a_train, _) = ds.split(0.5, &mut StdRng::seed_from_u64(42));
        let (b_train, _) = ds.split(0.5, &mut StdRng::seed_from_u64(42));
        assert_eq!(a_train, b_train);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn split_rejects_bad_fraction() {
        let ds = toy(4);
        let _ = ds.split(1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn shuffled_keeps_feature_label_pairing() {
        let ds = toy(10);
        let sh = ds.shuffled(&mut StdRng::seed_from_u64(3));
        for r in 0..sh.len() {
            // In `toy`, label == (first feature / 3) % 2.
            let first = sh.features()[(r, 0)] as usize;
            assert_eq!(sh.labels()[r], (first / 3) % 2);
        }
    }

    #[test]
    fn truncated_caps_length() {
        let ds = toy(10);
        assert_eq!(ds.truncated(3).len(), 3);
        assert_eq!(ds.truncated(100).len(), 10);
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!DatasetError::Empty.to_string().is_empty());
    }
}
