//! K-fold cross-validation.
//!
//! Tables I of the paper report "10-fold" accuracy following the OpenML
//! estimation procedure \[24\]: the data is split into 10 equal train/test
//! folds and performance is averaged across folds. This module implements
//! seeded, optionally **stratified** k-fold partitioning (stratification
//! keeps per-class proportions stable across folds, which matters for the
//! imbalanced credit-g dataset).

use rt::rand::seq::SliceRandom;
use rt::rand::Rng;

use crate::Dataset;

/// One cross-validation fold: index sets into the original dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training samples.
    pub train: Vec<usize>,
    /// Indices of held-out test samples.
    pub test: Vec<usize>,
}

/// Produces `k` folds over `n` samples with a seeded shuffle.
///
/// Every sample appears in exactly one test set; fold sizes differ by at
/// most one.
///
/// # Panics
///
/// Panics if `k < 2` or `k > n`.
pub fn kfold<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<Fold> {
    assert!(k >= 2, "k must be at least 2");
    assert!(k <= n, "cannot make {k} folds from {n} samples");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    folds_from_ordering(&idx, k)
}

/// Produces `k` stratified folds: each fold's test set preserves the
/// overall class proportions as closely as integer counts allow.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the dataset size.
pub fn stratified_kfold<R: Rng + ?Sized>(ds: &Dataset, k: usize, rng: &mut R) -> Vec<Fold> {
    assert!(k >= 2, "k must be at least 2");
    assert!(
        k <= ds.len(),
        "cannot make {k} folds from {} samples",
        ds.len()
    );
    // Group indices by class, shuffle within each class, then deal them
    // round-robin into folds so every fold gets its share of each class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); ds.n_classes()];
    for (i, &l) in ds.labels().iter().enumerate() {
        by_class[l].push(i);
    }
    let mut fold_tests: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next_fold = 0usize;
    for class_idx in &mut by_class {
        class_idx.shuffle(rng);
        for &i in class_idx.iter() {
            fold_tests[next_fold].push(i);
            next_fold = (next_fold + 1) % k;
        }
    }
    let n = ds.len();
    fold_tests
        .into_iter()
        .map(|test| {
            let in_test: Vec<bool> = {
                let mut mask = vec![false; n];
                for &i in &test {
                    mask[i] = true;
                }
                mask
            };
            let train = (0..n).filter(|&i| !in_test[i]).collect();
            Fold { train, test }
        })
        .collect()
}

fn folds_from_ordering(order: &[usize], k: usize) -> Vec<Fold> {
    let n = order.len();
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let test: Vec<usize> = order[start..start + size].to_vec();
        let train: Vec<usize> = order[..start]
            .iter()
            .chain(&order[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, test });
        start += size;
    }
    folds
}

/// Convenience: materializes `(train, test)` dataset pairs for each fold.
pub fn materialize(ds: &Dataset, folds: &[Fold]) -> Vec<(Dataset, Dataset)> {
    folds
        .iter()
        .map(|f| (ds.subset(&f.train), ds.subset(&f.test)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_tensor::Matrix;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn toy(n: usize, classes: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |r, c| (r + c) as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new("toy", x, labels, classes).unwrap()
    }

    fn check_partition(folds: &[Fold], n: usize) {
        let mut seen = vec![0usize; n];
        for f in folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            // train and test are disjoint and cover everything.
            let mut all: Vec<usize> = f.train.iter().chain(&f.test).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..n).collect::<Vec<_>>());
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every index in exactly one test fold"
        );
    }

    #[test]
    fn kfold_partitions_exactly_once() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = kfold(23, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        check_partition(&folds, 23);
    }

    #[test]
    fn kfold_sizes_differ_by_at_most_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let folds = kfold(23, 5, &mut rng);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), 23);
    }

    #[test]
    #[should_panic(expected = "k must be at least 2")]
    fn kfold_rejects_k1() {
        let _ = kfold(10, 1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    #[should_panic(expected = "cannot make")]
    fn kfold_rejects_k_gt_n() {
        let _ = kfold(3, 10, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn kfold_deterministic_per_seed() {
        let a = kfold(50, 10, &mut StdRng::seed_from_u64(7));
        let b = kfold(50, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn stratified_partitions_exactly_once() {
        let ds = toy(40, 4);
        let folds = stratified_kfold(&ds, 10, &mut StdRng::seed_from_u64(1));
        check_partition(&folds, 40);
    }

    #[test]
    fn stratified_preserves_class_balance() {
        let ds = toy(100, 2);
        let folds = stratified_kfold(&ds, 10, &mut StdRng::seed_from_u64(3));
        for f in &folds {
            let c0 = f.test.iter().filter(|&&i| ds.labels()[i] == 0).count();
            let c1 = f.test.len() - c0;
            assert!(
                (c0 as i64 - c1 as i64).abs() <= 1,
                "fold imbalance: {c0} vs {c1}"
            );
        }
    }

    #[test]
    fn stratified_with_rare_class() {
        // 3 samples of class 1 among 30: all folds must still partition.
        let labels: Vec<usize> = (0..30).map(|i| usize::from(i < 3)).collect();
        let x = Matrix::zeros(30, 2);
        let ds = Dataset::new("rare", x, labels, 2).unwrap();
        let folds = stratified_kfold(&ds, 10, &mut StdRng::seed_from_u64(0));
        check_partition(&folds, 30);
    }

    #[test]
    fn materialize_shapes() {
        let ds = toy(20, 2);
        let folds = kfold(20, 4, &mut StdRng::seed_from_u64(0));
        let pairs = materialize(&ds, &folds);
        assert_eq!(pairs.len(), 4);
        for (train, test) in pairs {
            assert_eq!(train.len(), 15);
            assert_eq!(test.len(), 5);
        }
    }
}
