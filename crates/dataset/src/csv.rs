//! Dependency-free CSV codec.
//!
//! The ECAD flow ingests "a Comma Separated Value (CSV) tabular data
//! format" (§III). This module implements the subset of RFC 4180 needed
//! for numeric ML tables: comma separation, quoted fields containing
//! commas/quotes/newlines, CRLF tolerance, and a header row.
//!
//! [`read_dataset`]/[`write_dataset`] convert between CSV text and
//! [`Dataset`], using the convention that the **last column is the class
//! label** (as integer) and all other columns are `f32` features.

use std::error::Error;
use std::fmt;
use std::fs;
use std::path::Path;

use ecad_tensor::Matrix;

use crate::{Dataset, DatasetError};

/// Error produced while parsing CSV text.
#[derive(Debug, Clone, PartialEq)]
pub enum CsvError {
    /// A row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (from the header).
        expected: usize,
    },
    /// A field could not be parsed as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        col: usize,
        /// The raw field text.
        text: String,
    },
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// 1-based line where the quote opened.
        line: usize,
    },
    /// The input had no data rows.
    NoData,
    /// An I/O error occurred (message only, to keep the type `Clone`).
    Io(String),
    /// The parsed table violated dataset invariants.
    Dataset(DatasetError),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            CsvError::BadNumber { line, col, text } => {
                write!(
                    f,
                    "line {line}, column {col}: cannot parse {text:?} as a number"
                )
            }
            CsvError::UnterminatedQuote { line } => {
                write!(f, "line {line}: unterminated quoted field")
            }
            CsvError::NoData => write!(f, "csv input contains no data rows"),
            CsvError::Io(msg) => write!(f, "io error: {msg}"),
            CsvError::Dataset(e) => write!(f, "invalid dataset: {e}"),
        }
    }
}

impl Error for CsvError {}

impl From<DatasetError> for CsvError {
    fn from(e: DatasetError) -> Self {
        CsvError::Dataset(e)
    }
}

/// Parses CSV text into rows of string fields.
///
/// Handles quoted fields (including embedded commas, doubled quotes and
/// newlines) and both `\n` and `\r\n` line endings. Empty lines are
/// skipped.
///
/// # Errors
///
/// Returns [`CsvError::UnterminatedQuote`] if a quote is left open.
pub fn parse(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_open_line = 1usize;
    let mut chars = text.chars().peekable();
    let mut any_field_on_row = false;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(c);
                    line += 1;
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                in_quotes = true;
                quote_open_line = line;
                any_field_on_row = true;
            }
            ',' => {
                row.push(std::mem::take(&mut field));
                any_field_on_row = true;
            }
            '\r' => { /* tolerate CRLF */ }
            '\n' => {
                line += 1;
                if any_field_on_row || !field.is_empty() {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                any_field_on_row = false;
            }
            _ => {
                field.push(c);
                any_field_on_row = true;
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote {
            line: quote_open_line,
        });
    }
    if any_field_on_row || !field.is_empty() {
        row.push(field);
        rows.push(row);
    }
    Ok(rows)
}

/// Escapes a single field for CSV output, quoting only when necessary.
pub fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Serializes rows of fields into CSV text (LF line endings).
pub fn emit<R: AsRef<[String]>>(rows: &[R]) -> String {
    let mut out = String::new();
    for row in rows {
        let row = row.as_ref();
        for (i, f) in row.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(f));
        }
        out.push('\n');
    }
    out
}

/// Parses a dataset from CSV text.
///
/// Expects a header row; the last column is the integer class label and
/// every other column is a float feature. The class count is inferred as
/// `max(label) + 1`.
///
/// # Errors
///
/// Returns [`CsvError`] for ragged rows, non-numeric fields, or an empty
/// table.
pub fn read_dataset(name: &str, text: &str) -> Result<Dataset, CsvError> {
    let _prof = rt::prof_span!("dataset_load");
    let rows = parse(text)?;
    if rows.len() < 2 {
        return Err(CsvError::NoData);
    }
    let width = rows[0].len();
    if width < 2 {
        return Err(CsvError::NoData);
    }
    let n = rows.len() - 1;
    let mut features = Vec::with_capacity(n * (width - 1));
    let mut labels = Vec::with_capacity(n);
    for (i, row) in rows.iter().enumerate().skip(1) {
        if row.len() != width {
            return Err(CsvError::RaggedRow {
                line: i + 1,
                found: row.len(),
                expected: width,
            });
        }
        for (c, fv) in row[..width - 1].iter().enumerate() {
            let v: f32 = fv.trim().parse().map_err(|_| CsvError::BadNumber {
                line: i + 1,
                col: c,
                text: fv.clone(),
            })?;
            features.push(v);
        }
        let lv = row[width - 1].trim();
        let label: usize = lv
            .parse::<f64>()
            .ok()
            .filter(|x| x.fract() == 0.0 && *x >= 0.0)
            .map(|x| x as usize)
            .ok_or_else(|| CsvError::BadNumber {
                line: i + 1,
                col: width - 1,
                text: lv.to_string(),
            })?;
        labels.push(label);
    }
    let n_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let features = Matrix::from_vec(n, width - 1, features);
    Ok(Dataset::new(name, features, labels, n_classes)?)
}

/// Serializes a dataset to CSV text with a generated header
/// (`f0,f1,...,label`).
pub fn write_dataset(ds: &Dataset) -> String {
    let mut rows: Vec<Vec<String>> = Vec::with_capacity(ds.len() + 1);
    let mut header: Vec<String> = (0..ds.n_features()).map(|i| format!("f{i}")).collect();
    header.push("label".to_string());
    rows.push(header);
    for r in 0..ds.len() {
        let mut row: Vec<String> = ds
            .features()
            .row(r)
            .iter()
            .map(|v| format!("{v}"))
            .collect();
        row.push(ds.labels()[r].to_string());
        rows.push(row);
    }
    emit(&rows)
}

/// Reads a dataset from a CSV file on disk.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem errors, otherwise the same
/// errors as [`read_dataset`]. The dataset name is the file stem.
pub fn read_dataset_file(path: impl AsRef<Path>) -> Result<Dataset, CsvError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "dataset".to_string());
    read_dataset(&name, &text)
}

/// Writes a dataset to a CSV file on disk.
///
/// # Errors
///
/// Returns [`CsvError::Io`] on filesystem errors.
pub fn write_dataset_file(ds: &Dataset, path: impl AsRef<Path>) -> Result<(), CsvError> {
    fs::write(path, write_dataset(ds)).map_err(|e| CsvError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_table() {
        let rows = parse("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], vec!["1", "2"]);
    }

    #[test]
    fn parse_handles_crlf_and_trailing_newline_absence() {
        let rows = parse("a,b\r\n1,2").unwrap();
        assert_eq!(rows, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_quoted_fields() {
        let rows = parse("\"x,y\",\"he said \"\"hi\"\"\"\n1,2\n").unwrap();
        assert_eq!(rows[0], vec!["x,y", "he said \"hi\""]);
    }

    #[test]
    fn parse_quoted_newline() {
        let rows = parse("\"line1\nline2\",b\n").unwrap();
        assert_eq!(rows[0][0], "line1\nline2");
    }

    #[test]
    fn parse_unterminated_quote_is_error() {
        let err = parse("\"oops\n1,2\n").unwrap_err();
        assert!(matches!(err, CsvError::UnterminatedQuote { line: 1 }));
    }

    #[test]
    fn parse_skips_blank_lines() {
        let rows = parse("a,b\n\n1,2\n\n").unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn escape_quotes_when_needed() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("q\"q"), "\"q\"\"q\"");
    }

    #[test]
    fn emit_parse_round_trip() {
        let rows = vec![
            vec!["h1".to_string(), "h,2".to_string()],
            vec!["1.5".to_string(), "say \"hi\"".to_string()],
        ];
        let text = emit(&rows);
        assert_eq!(parse(&text).unwrap(), rows);
    }

    #[test]
    fn read_dataset_infers_classes() {
        let ds = read_dataset("t", "f0,f1,label\n0.5,1.0,0\n0.1,0.2,2\n").unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.n_classes(), 3);
        assert_eq!(ds.labels(), &[0, 2]);
    }

    #[test]
    fn read_dataset_rejects_ragged() {
        let err = read_dataset("t", "a,b,label\n1,2,0\n1,0\n").unwrap_err();
        assert!(matches!(err, CsvError::RaggedRow { line: 3, .. }));
    }

    #[test]
    fn read_dataset_rejects_non_numeric_feature() {
        let err = read_dataset("t", "a,label\nx,0\n").unwrap_err();
        assert!(matches!(
            err,
            CsvError::BadNumber {
                line: 2,
                col: 0,
                ..
            }
        ));
    }

    #[test]
    fn read_dataset_rejects_fractional_label() {
        let err = read_dataset("t", "a,label\n1.0,0.5\n").unwrap_err();
        assert!(matches!(err, CsvError::BadNumber { .. }));
    }

    #[test]
    fn read_dataset_rejects_empty() {
        assert_eq!(
            read_dataset("t", "a,label\n").unwrap_err(),
            CsvError::NoData
        );
        assert_eq!(read_dataset("t", "").unwrap_err(), CsvError::NoData);
    }

    #[test]
    fn dataset_round_trip() {
        let text = "f0,f1,label\n0.25,-1,1\n3,4.5,0\n";
        let ds = read_dataset("t", text).unwrap();
        let out = write_dataset(&ds);
        let ds2 = read_dataset("t", &out).unwrap();
        assert_eq!(ds, ds2);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("ecad_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        let ds = read_dataset("toy", "f0,label\n1,0\n2,1\n").unwrap();
        write_dataset_file(&ds, &path).unwrap();
        let back = read_dataset_file(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_dataset_file("/nonexistent/definitely/not/here.csv").unwrap_err();
        assert!(matches!(err, CsvError::Io(_)));
    }
}
