//! The six paper benchmarks as synthetic stand-ins.
//!
//! | Benchmark | Real shape (samples × features, classes) | Paper top acc (ECAD MLP) |
//! |---|---|---|
//! | MNIST | 70 000 × 784, 10 | 0.9852 (1-fold) |
//! | Fashion-MNIST | 70 000 × 784, 10 | 0.8923 (1-fold) |
//! | Credit-g | 1 000 × 20, 2 | 0.7880 (10-fold) |
//! | HAR | 10 299 × 561, 6 | 0.9909 (10-fold) |
//! | Phishing | 11 055 × 30, 2 | 0.9756 (10-fold) |
//! | Bioresponse | 3 751 × 1 776, 2 | 0.8038 (10-fold) |
//!
//! Each stand-in keeps the real feature/class dimensions (so the
//! hardware co-design search explores the same GEMM shapes the paper
//! did) and tunes **label noise / class separation / non-linearity** so
//! that attainable accuracy lands in the published band. Default sample
//! counts are scaled down for laptop-scale runs; `with_samples` restores
//! any size, and the `real_samples` field records the original count.

use crate::synth::SyntheticSpec;

/// Identifier for one of the six paper benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// MNIST handwritten digits \[18\] (stand-in).
    Mnist,
    /// Fashion-MNIST \[19\] (stand-in).
    FashionMnist,
    /// OpenML credit-g (German credit risk) \[20\] (stand-in).
    CreditG,
    /// UCI Human Activity Recognition using smartphones \[21\] (stand-in).
    Har,
    /// OpenML Phishing websites \[20\] (stand-in).
    Phishing,
    /// OpenML Bioresponse \[22\] (stand-in).
    Bioresponse,
}

impl Benchmark {
    /// All six benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Mnist,
        Benchmark::FashionMnist,
        Benchmark::CreditG,
        Benchmark::Har,
        Benchmark::Phishing,
        Benchmark::Bioresponse,
    ];

    /// The four OpenML datasets evaluated with 10-fold CV in Table I.
    pub const TEN_FOLD: [Benchmark; 4] = [
        Benchmark::CreditG,
        Benchmark::Har,
        Benchmark::Phishing,
        Benchmark::Bioresponse,
    ];

    /// The two pre-split datasets evaluated 1-fold in Table II.
    pub const ONE_FOLD: [Benchmark; 2] = [Benchmark::Mnist, Benchmark::FashionMnist];

    /// Canonical lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Mnist => "mnist",
            Benchmark::FashionMnist => "fashion-mnist",
            Benchmark::CreditG => "credit-g",
            Benchmark::Har => "har",
            Benchmark::Phishing => "phishing",
            Benchmark::Bioresponse => "bioresponse",
        }
    }

    /// Parses a benchmark from its canonical name (case-insensitive;
    /// accepts `fashion_mnist`/`fashion-mnist` style variants).
    pub fn from_name(s: &str) -> Option<Benchmark> {
        let k = s.to_ascii_lowercase().replace('_', "-");
        Benchmark::ALL.iter().copied().find(|b| b.name() == k)
    }

    /// Sample count of the real dataset.
    pub fn real_samples(self) -> usize {
        match self {
            Benchmark::Mnist | Benchmark::FashionMnist => 70_000,
            Benchmark::CreditG => 1_000,
            Benchmark::Har => 10_299,
            Benchmark::Phishing => 11_055,
            Benchmark::Bioresponse => 3_751,
        }
    }

    /// Feature count of the real dataset.
    pub fn n_features(self) -> usize {
        match self {
            Benchmark::Mnist | Benchmark::FashionMnist => 784,
            Benchmark::CreditG => 20,
            Benchmark::Har => 561,
            Benchmark::Phishing => 30,
            Benchmark::Bioresponse => 1_776,
        }
    }

    /// Class count of the real dataset.
    pub fn n_classes(self) -> usize {
        match self {
            Benchmark::Mnist | Benchmark::FashionMnist => 10,
            Benchmark::Har => 6,
            _ => 2,
        }
    }

    /// The paper's published ECAD-MLP accuracy for this benchmark
    /// (Table I for the 10-fold datasets, Table II for the 1-fold ones).
    pub fn paper_ecad_accuracy(self) -> f32 {
        match self {
            Benchmark::Mnist => 0.9852,
            Benchmark::FashionMnist => 0.8923,
            Benchmark::CreditG => 0.7880,
            Benchmark::Har => 0.9909,
            Benchmark::Phishing => 0.9756,
            Benchmark::Bioresponse => 0.8038,
        }
    }

    /// The paper's best published MLP-baseline accuracy
    /// (`MLPClassifier` rows of Tables I/II).
    pub fn paper_mlp_baseline_accuracy(self) -> f32 {
        match self {
            Benchmark::Mnist => 0.9840,
            Benchmark::FashionMnist => 0.8770,
            Benchmark::CreditG => 0.7470,
            Benchmark::Har => 0.1888,
            Benchmark::Phishing => 0.9733,
            Benchmark::Bioresponse => 0.5423,
        }
    }

    /// The paper's best published accuracy by *any* method.
    pub fn paper_best_any_accuracy(self) -> f32 {
        match self {
            Benchmark::Mnist => 0.9979,
            Benchmark::FashionMnist => 0.8970,
            Benchmark::CreditG => 0.7860,
            Benchmark::Har => 0.9957,
            Benchmark::Phishing => 0.9753,
            Benchmark::Bioresponse => 0.8160,
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default scaled-down sample count used when the full dataset would be
/// too slow for an interactive run. `SyntheticSpec::with_samples`
/// overrides it (e.g. `load(b).with_samples(b.real_samples())`).
pub fn default_samples(b: Benchmark) -> usize {
    match b {
        Benchmark::Mnist | Benchmark::FashionMnist => 3_000,
        Benchmark::CreditG => 1_000, // real size, it is tiny
        Benchmark::Har => 2_400,
        Benchmark::Phishing => 2_400,
        Benchmark::Bioresponse => 1_500,
    }
}

/// Builds the synthetic spec for a benchmark with its difficulty profile.
///
/// The difficulty parameters were chosen so that a well-tuned MLP lands
/// near the paper's accuracy band for that dataset (see module docs),
/// while linear baselines trail it — reproducing the *ordering* of
/// Tables I/II. Call `.generate()` on the result, or adjust sample count
/// and seed first.
///
/// # Example
///
/// ```
/// use ecad_dataset::benchmarks::{load, Benchmark};
/// let ds = load(Benchmark::Phishing).with_samples(300).generate();
/// assert_eq!(ds.n_features(), 30);
/// ```
pub fn load(b: Benchmark) -> SyntheticSpec {
    let base = SyntheticSpec::new(b.name(), default_samples(b), b.n_features(), b.n_classes());
    match b {
        // MNIST: easy, highly separable classes, tiny noise floor.
        Benchmark::Mnist => base
            .with_informative(20)
            .with_class_sep(5.6)
            .with_cluster_spread(0.85)
            .with_clusters_per_class(2)
            .with_nonlinearity(0.6)
            .with_label_noise(0.008),
        // Fashion-MNIST: same shape, substantially more class overlap.
        Benchmark::FashionMnist => base
            .with_informative(20)
            .with_class_sep(4.8)
            .with_cluster_spread(0.95)
            .with_clusters_per_class(2)
            .with_nonlinearity(0.7)
            .with_label_noise(0.065),
        // Credit-g: small, noisy tabular data; accuracy capped ~0.79.
        Benchmark::CreditG => base
            .with_informative(12)
            .with_class_sep(2.4)
            .with_cluster_spread(1.1)
            .with_nonlinearity(0.9)
            .with_label_noise(0.20),
        // HAR: near-separable sensor features.
        Benchmark::Har => base
            .with_informative(20)
            .with_class_sep(4.5)
            .with_cluster_spread(0.9)
            .with_nonlinearity(0.7)
            .with_label_noise(0.004),
        // Phishing: clean binary features, small noise floor.
        Benchmark::Phishing => base
            .with_informative(16)
            .with_class_sep(3.6)
            .with_cluster_spread(1.0)
            .with_nonlinearity(0.8)
            .with_label_noise(0.020),
        // Bioresponse: very high dimensional, heavy noise; cap ~0.80.
        Benchmark::Bioresponse => base
            .with_informative(10)
            .with_class_sep(4.6)
            .with_cluster_spread(1.0)
            .with_nonlinearity(1.0)
            .with_label_noise(0.18),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_paper_shapes() {
        for b in Benchmark::ALL {
            let ds = load(b).with_samples(60).generate();
            assert_eq!(ds.n_features(), b.n_features(), "{b}");
            assert_eq!(ds.n_classes(), b.n_classes(), "{b}");
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(
            Benchmark::from_name("Fashion_MNIST"),
            Some(Benchmark::FashionMnist)
        );
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn ten_fold_plus_one_fold_covers_all() {
        let mut names: Vec<&str> = Benchmark::TEN_FOLD
            .iter()
            .chain(Benchmark::ONE_FOLD.iter())
            .map(|b| b.name())
            .collect();
        names.sort_unstable();
        let mut all: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        all.sort_unstable();
        assert_eq!(names, all);
    }

    #[test]
    fn paper_accuracies_are_probabilities() {
        for b in Benchmark::ALL {
            for acc in [
                b.paper_ecad_accuracy(),
                b.paper_mlp_baseline_accuracy(),
                b.paper_best_any_accuracy(),
            ] {
                assert!((0.0..=1.0).contains(&acc), "{b}: {acc}");
            }
        }
    }

    #[test]
    fn ecad_beats_mlp_baseline_in_paper_numbers() {
        // Sanity on the transcription of Tables I/II.
        for b in Benchmark::ALL {
            assert!(
                b.paper_ecad_accuracy() > b.paper_mlp_baseline_accuracy(),
                "{b}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load(Benchmark::CreditG).generate();
        let b = load(Benchmark::CreditG).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn default_samples_are_scaled_down_but_nonzero() {
        for b in Benchmark::ALL {
            assert!(default_samples(b) > 0);
            assert!(default_samples(b) <= b.real_samples());
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Har.to_string(), "har");
    }
}
