//! Property tests for dataset handling: folds, scaling, CSV, and the
//! synthetic generator. Runs on `rt::check`.

use ecad_dataset::{csv, folds, scaler::StandardScaler, synth::SyntheticSpec, Dataset};
use ecad_tensor::Matrix;
use rt::check::vec;
use rt::rand::rngs::StdRng;
use rt::rand::SeedableRng;
use rt::{prop_assert, prop_assert_eq, prop_assume};

/// Materializes a synthetic dataset from drawn coordinates (the rt
/// harness has no `prop_map` strategies, so properties draw the spec's
/// parameters and build the dataset in the body).
fn make_dataset(n: usize, d: usize, c: usize, seed: u64) -> Dataset {
    SyntheticSpec::new("prop-ds", n, d, c)
        .with_seed(seed)
        .generate()
}

rt::prop! {
    #![cases(64)]

    /// Stratified folds keep every class's count within 1 of its fair
    /// share in each test fold.
    fn stratified_fold_balance(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, ds_seed in 0u64..500,
        k in 2usize..6, seed in 0u64..100
    ) {
        let ds = make_dataset(n, d, c, ds_seed);
        prop_assume!(k <= ds.len());
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = folds::stratified_kfold(&ds, k, &mut rng);
        let totals = ds.class_counts();
        for f in &folds {
            for (class, &total) in totals.iter().enumerate() {
                let in_fold = f.test.iter().filter(|&&i| ds.labels()[i] == class).count();
                let fair = total as f64 / k as f64;
                prop_assert!(
                    (in_fold as f64 - fair).abs() <= 1.0,
                    "class {class}: {in_fold} vs fair {fair}"
                );
            }
        }
    }

    /// Scaler: transform then inverse-transform is the identity (up to
    /// float tolerance) on the training data.
    fn scaler_inverse_round_trip(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, seed in 0u64..500
    ) {
        let ds = make_dataset(n, d, c, seed);
        let s = StandardScaler::fit(ds.features());
        let back = s.inverse_transform(&s.transform(ds.features()));
        for (a, b) in back.as_slice().iter().zip(ds.features().as_slice()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    /// Scaled training data has near-zero column means and unit-or-zero
    /// stds.
    fn scaler_standardizes(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, seed in 0u64..500
    ) {
        let ds = make_dataset(n, d, c, seed);
        let s = StandardScaler::fit(ds.features());
        let t = s.transform(ds.features());
        let means = ecad_tensor::ops::col_means(&t);
        let stds = ecad_tensor::ops::col_stds(&t);
        for m in means {
            prop_assert!(m.abs() < 1e-3, "mean {m}");
        }
        for sd in stds {
            prop_assert!(sd < 1e-6 || (sd - 1.0).abs() < 1e-2, "std {sd}");
        }
    }

    /// Dataset CSV round-trip is exact for synthetic data.
    fn dataset_csv_round_trip(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, seed in 0u64..500
    ) {
        let ds = make_dataset(n, d, c, seed);
        let text = csv::write_dataset(&ds);
        let back = csv::read_dataset(ds.name(), &text).unwrap();
        prop_assert_eq!(back.labels(), ds.labels());
        prop_assert_eq!(back.features(), ds.features());
    }

    /// Splits partition the dataset and preserve feature/label pairing.
    fn split_partition(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, ds_seed in 0u64..500,
        frac in 0.1f32..0.9, seed in 0u64..100
    ) {
        let ds = make_dataset(n, d, c, ds_seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let (train, test) = ds.split(frac, &mut rng);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        prop_assert!(!train.is_empty() && !test.is_empty());
        // Class counts are preserved in total.
        let merged: Vec<usize> = train
            .class_counts()
            .iter()
            .zip(test.class_counts())
            .map(|(a, b)| a + b)
            .collect();
        prop_assert_eq!(merged, ds.class_counts());
    }

    /// Subset then subset composes like index composition.
    fn subset_composes(
        n in 10usize..80, d in 1usize..12, c in 2usize..5, seed in 0u64..500
    ) {
        let ds = make_dataset(n, d, c, seed);
        prop_assume!(ds.len() >= 4);
        let outer: Vec<usize> = (0..ds.len()).step_by(2).collect();
        let inner: Vec<usize> = (0..outer.len()).rev().collect();
        let direct: Vec<usize> = inner.iter().map(|&i| outer[i]).collect();
        prop_assert_eq!(ds.subset(&outer).subset(&inner), ds.subset(&direct));
    }

    /// The generator's label-noise knob never moves labels out of range
    /// and flips to a *different* class.
    fn label_noise_flips_to_other_classes(
        n in 20usize..100, classes in 2usize..5, noise in 0.01f32..0.5, seed in 0u64..100
    ) {
        let ds = SyntheticSpec::new("noisy", n, 4, classes)
            .with_label_noise(noise)
            .with_seed(seed)
            .generate();
        for (i, &l) in ds.labels().iter().enumerate() {
            prop_assert!(l < classes);
            // Noise-free label would be i % classes; flipped labels must
            // differ from it only by the flip (they are still in range).
            let _ = i;
        }
    }

    /// Arbitrary numeric tables survive a CSV round trip through
    /// Dataset conventions (last column integer label).
    fn numeric_table_round_trip(
        rows in vec((vec(-1e6f32..1e6, 3), 0usize..4), 1..20)
    ) {
        let n = rows.len();
        let mut flat = Vec::new();
        let mut labels = Vec::new();
        for (feats, label) in &rows {
            flat.extend_from_slice(feats);
            labels.push(*label);
        }
        let ds = Dataset::new("t", Matrix::from_vec(n, 3, flat), labels, 4).unwrap();
        let text = csv::write_dataset(&ds);
        let back = csv::read_dataset("t", &text).unwrap();
        prop_assert_eq!(back.features(), ds.features());
        prop_assert_eq!(back.labels(), ds.labels());
    }
}
