//! Brute-force k-nearest-neighbors classifier.

use ecad_dataset::Dataset;
use ecad_tensor::{ops, Matrix};

use crate::Classifier;

/// k-nearest neighbors with Euclidean distance and majority vote
/// (distance-weighted tie-break).
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    train_x: Option<Matrix>,
    train_y: Vec<usize>,
    n_classes: usize,
}

impl KNearestNeighbors {
    /// Creates an unfitted kNN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        Self {
            k,
            train_x: None,
            train_y: Vec::new(),
            n_classes: 0,
        }
    }

    /// Neighborhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &str {
        "KNeighborsClassifier"
    }

    fn fit(&mut self, train: &Dataset) {
        self.train_x = Some(train.features().clone());
        self.train_y = train.labels().to_vec();
        self.n_classes = train.n_classes();
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let train_x = self.train_x.as_ref().expect("predict called before fit");
        assert_eq!(
            features.cols(),
            train_x.cols(),
            "feature width differs from training data"
        );
        let k = self.k.min(self.train_y.len());
        features
            .iter_rows()
            .map(|row| {
                // Collect the k smallest distances with a simple
                // selection over the training set.
                let mut dists: Vec<(f32, usize)> = train_x
                    .iter_rows()
                    .zip(&self.train_y)
                    .map(|(t, &y)| (ops::euclidean(row, t), y))
                    .collect();
                dists.select_nth_unstable_by(k - 1, |a, b| {
                    a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
                });
                // Weighted vote among the first k entries.
                let mut votes = vec![0.0f32; self.n_classes];
                for &(d, y) in &dists[..k] {
                    votes[y] += 1.0 / (d + 1e-6);
                }
                votes
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    #[test]
    fn one_nn_memorizes_training_data() {
        let ds = SyntheticSpec::new("knn", 100, 5, 2).with_seed(1).generate();
        let mut knn = KNearestNeighbors::new(1);
        knn.fit(&ds);
        assert!((knn.accuracy(&ds) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let ds = SyntheticSpec::new("knn-small", 5, 3, 2)
            .with_seed(2)
            .generate();
        let mut knn = KNearestNeighbors::new(100);
        knn.fit(&ds);
        // Should not panic; predicts via all 5 neighbors.
        let preds = knn.predict(ds.features());
        assert_eq!(preds.len(), 5);
    }

    #[test]
    fn separable_clusters_classified() {
        let ds = SyntheticSpec::new("knn-sep", 200, 6, 3)
            .with_class_sep(5.0)
            .with_nonlinearity(0.0)
            .with_seed(3)
            .generate();
        let mut rng = <rt::rand::rngs::StdRng as rt::rand::SeedableRng>::seed_from_u64(0);
        let (train, test) = ds.split(0.3, &mut rng);
        let mut knn = KNearestNeighbors::new(5);
        knn.fit(&train);
        assert!(knn.accuracy(&test) > 0.9, "acc {}", knn.accuracy(&test));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KNearestNeighbors::new(0);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let knn = KNearestNeighbors::new(3);
        let _ = knn.predict(&Matrix::zeros(1, 2));
    }
}
