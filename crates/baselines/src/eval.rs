//! Cross-validated evaluation of baselines.
//!
//! Implements the OpenML-style 10-fold protocol used for Table I: fit on
//! nine folds, score on the held-out fold, average. Standardization is
//! fit on each training split only.

use ecad_dataset::{folds, scaler, Dataset};
use rt::rand::Rng;

use crate::Classifier;

/// Result of a cross-validated run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Model name as reported by the classifier.
    pub model: String,
    /// Per-fold test accuracies.
    pub fold_accuracies: Vec<f32>,
}

impl CvResult {
    /// Mean accuracy across folds.
    pub fn mean_accuracy(&self) -> f32 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f32>() / self.fold_accuracies.len() as f32
    }
}

/// Runs stratified k-fold cross-validation for a classifier.
///
/// `make` constructs a fresh classifier per fold so no state leaks
/// between folds. Features are standardized per split.
///
/// # Panics
///
/// Panics if `k < 2` or exceeds the dataset size (see
/// [`folds::stratified_kfold`]).
pub fn cross_validate<C, F, R>(make: F, ds: &Dataset, k: usize, rng: &mut R) -> CvResult
where
    C: Classifier,
    F: Fn() -> C,
    R: Rng + ?Sized,
{
    let folds = folds::stratified_kfold(ds, k, rng);
    let mut accs = Vec::with_capacity(k);
    let mut name = String::new();
    for fold in &folds {
        let train = ds.subset(&fold.train);
        let test = ds.subset(&fold.test);
        let (train_s, test_s) = scaler::standardize_pair(&train, &test);
        let mut model = make();
        model.fit(&train_s);
        accs.push(model.accuracy(&test_s));
        if name.is_empty() {
            name = model.name().to_string();
        }
    }
    CvResult {
        model: name,
        fold_accuracies: accs,
    }
}

/// Fits on `train` and scores on `test` once (the Table II protocol for
/// the pre-split MNIST / Fashion-MNIST datasets), with standardization.
pub fn holdout<C: Classifier>(model: &mut C, train: &Dataset, test: &Dataset) -> f32 {
    let (train_s, test_s) = scaler::standardize_pair(train, test);
    model.fit(&train_s);
    model.accuracy(&test_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecisionTree;
    use ecad_dataset::synth::SyntheticSpec;
    use rt::rand::rngs::StdRng;
    use rt::rand::SeedableRng;

    fn ds() -> Dataset {
        SyntheticSpec::new("cv", 200, 6, 2)
            .with_class_sep(3.0)
            .with_seed(1)
            .generate()
    }

    #[test]
    fn cross_validate_produces_k_scores() {
        let mut rng = StdRng::seed_from_u64(0);
        let r = cross_validate(|| DecisionTree::new(6), &ds(), 5, &mut rng);
        assert_eq!(r.fold_accuracies.len(), 5);
        assert_eq!(r.model, "DecisionTreeClassifier");
        assert!(r.mean_accuracy() > 0.6);
        assert!(r.fold_accuracies.iter().all(|a| (0.0..=1.0).contains(a)));
    }

    #[test]
    fn cv_is_deterministic_per_seed() {
        let d = ds();
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            cross_validate(|| DecisionTree::new(6), &d, 5, &mut rng).fold_accuracies
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn holdout_scores_test_only() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(2);
        let (train, test) = d.split(0.3, &mut rng);
        let mut tree = DecisionTree::new(8);
        let acc = holdout(&mut tree, &train, &test);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn empty_result_mean_is_zero() {
        let r = CvResult {
            model: "x".into(),
            fold_accuracies: vec![],
        };
        assert_eq!(r.mean_accuracy(), 0.0);
    }
}
