//! # ecad-baselines
//!
//! Classical machine-learning baselines used as comparators in the
//! paper's Tables I and II.
//!
//! The paper compares its ECAD MLP against the best published OpenML
//! results per dataset: sklearn's `DecisionTreeClassifier`, `SVC`,
//! `MLPClassifier`, and mlr's `classif.ranger` (a random forest). To
//! reproduce the comparison without those ecosystems, this crate
//! implements each family from scratch:
//!
//! * [`DecisionTree`] — CART with Gini impurity (the
//!   `DecisionTreeClassifier` stand-in),
//! * [`RandomForest`] — bagged CART trees with per-node feature
//!   subsampling (the `ranger` stand-in),
//! * [`LinearSvm`] — one-vs-rest L2-regularized hinge loss via SGD (the
//!   `SVC` stand-in),
//! * [`LogisticRegression`] — multinomial softmax regression,
//! * [`KNearestNeighbors`] — brute-force kNN,
//! * [`GaussianNaiveBayes`] — per-class Gaussian likelihoods.
//!
//! All baselines implement the object-safe [`Classifier`] trait and are
//! deterministic given their seed, so 10-fold comparisons are exactly
//! reproducible. The fixed MLP baseline itself (sklearn's default-ish
//! `MLPClassifier`) is constructed in the bench crate from `ecad-mlp`
//! with a fixed topology.
//!
//! ## Example
//!
//! ```
//! use ecad_baselines::{Classifier, DecisionTree};
//! use ecad_dataset::synth::SyntheticSpec;
//!
//! let ds = SyntheticSpec::new("demo", 200, 6, 2).with_seed(3).generate();
//! let mut tree = DecisionTree::new(6);
//! tree.fit(&ds);
//! let acc = tree.accuracy(&ds);
//! assert!(acc > 0.7);
//! ```

#![warn(missing_docs)]

mod classifier;
mod forest;
mod knn;
mod logreg;
mod naive_bayes;
mod svm;
mod tree;

pub mod eval;

pub use classifier::Classifier;
pub use forest::RandomForest;
pub use knn::KNearestNeighbors;
pub use logreg::LogisticRegression;
pub use naive_bayes::GaussianNaiveBayes;
pub use svm::LinearSvm;
pub use tree::DecisionTree;
