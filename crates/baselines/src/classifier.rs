use ecad_dataset::Dataset;
use ecad_tensor::Matrix;

/// Common interface for the classical baselines.
///
/// Object-safe so the experiment harness can iterate over a
/// heterogeneous list of comparators (`Vec<Box<dyn Classifier>>`).
pub trait Classifier: Send {
    /// Human-readable model name for report tables (e.g.
    /// `"DecisionTreeClassifier"`).
    fn name(&self) -> &str;

    /// Fits the model to the training dataset, replacing any previous
    /// fit.
    fn fit(&mut self, train: &Dataset);

    /// Predicts class labels for each row of `features`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before [`Classifier::fit`] or
    /// if the feature width differs from the training data.
    fn predict(&self, features: &Matrix) -> Vec<usize>;

    /// Convenience: fraction of `ds` rows predicted correctly.
    fn accuracy(&self, ds: &Dataset) -> f32 {
        let preds = self.predict(ds.features());
        let hits = preds
            .iter()
            .zip(ds.labels())
            .filter(|(p, l)| p == l)
            .count();
        hits as f32 / ds.len().max(1) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::Dataset;

    /// A constant classifier to pin down the trait's default method.
    struct Always(usize);

    impl Classifier for Always {
        fn name(&self) -> &str {
            "Always"
        }
        fn fit(&mut self, _train: &Dataset) {}
        fn predict(&self, features: &Matrix) -> Vec<usize> {
            vec![self.0; features.rows()]
        }
    }

    #[test]
    fn default_accuracy_counts_hits() {
        let ds = Dataset::new("t", Matrix::zeros(4, 1), vec![1, 1, 0, 1], 2).unwrap();
        let c = Always(1);
        assert!((c.accuracy(&ds) - 0.75).abs() < 1e-6);
    }

    #[test]
    fn trait_is_object_safe() {
        let mut boxed: Box<dyn Classifier> = Box::new(Always(0));
        let ds = Dataset::new("t", Matrix::zeros(1, 1), vec![0], 2).unwrap();
        boxed.fit(&ds);
        assert_eq!(boxed.predict(ds.features()), vec![0]);
    }
}
