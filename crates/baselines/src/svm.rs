//! One-vs-rest linear SVM trained with SGD on the hinge loss — the
//! `SVC` stand-in.

use ecad_dataset::Dataset;
use ecad_tensor::Matrix;
use rt::rand::rngs::StdRng;
use rt::rand::seq::SliceRandom;
use rt::rand::SeedableRng;

use crate::Classifier;

/// L2-regularized linear SVM, one binary machine per class, decision by
/// maximum margin score.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    epochs: usize,
    lambda: f32,
    seed: u64,
    // weights[c] has n_features + 1 entries; the last is the bias.
    weights: Vec<Vec<f32>>,
}

impl LinearSvm {
    /// Creates an unfitted SVM trained for `epochs` passes with
    /// regularization strength `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0` or `lambda <= 0`.
    pub fn new(epochs: usize, lambda: f32) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(lambda > 0.0, "lambda must be positive");
        Self {
            epochs,
            lambda,
            seed: 0,
            weights: Vec::new(),
        }
    }

    /// Seeds the sample-order shuffling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn score(&self, class: usize, row: &[f32]) -> f32 {
        let w = &self.weights[class];
        let mut s = w[row.len()]; // bias
        for (wi, xi) in w[..row.len()].iter().zip(row) {
            s += wi * xi;
        }
        s
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &str {
        "SVC(linear)"
    }

    fn fit(&mut self, train: &Dataset) {
        let d = train.n_features();
        let n = train.len();
        let classes = train.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.weights = vec![vec![0.0f32; d + 1]; classes];

        // Pegasos-style SGD: step size 1/(lambda * t).
        let mut order: Vec<usize> = (0..n).collect();
        let mut t = 1u64;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = train.features().row(i);
                let yi = train.labels()[i];
                let eta = 1.0 / (self.lambda * t as f32);
                for c in 0..classes {
                    let y = if c == yi { 1.0f32 } else { -1.0 };
                    let margin = y * self.score(c, row);
                    let w = &mut self.weights[c];
                    // L2 shrinkage on the weight part (not the bias).
                    let shrink = 1.0 - eta * self.lambda;
                    for wi in w[..d].iter_mut() {
                        *wi *= shrink;
                    }
                    if margin < 1.0 {
                        for (wi, xi) in w[..d].iter_mut().zip(row) {
                            *wi += eta * y * xi;
                        }
                        w[d] += eta * y;
                    }
                }
                t += 1;
            }
        }
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        assert!(!self.weights.is_empty(), "predict called before fit");
        assert_eq!(
            features.cols() + 1,
            self.weights[0].len(),
            "feature width differs from training data"
        );
        features
            .iter_rows()
            .map(|row| {
                (0..self.weights.len())
                    .map(|c| (c, self.score(c, row)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    fn linearly_separable() -> Dataset {
        SyntheticSpec::new("svm", 300, 8, 2)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(2)
            .generate()
    }

    #[test]
    fn separable_data_is_learned() {
        let ds = linearly_separable();
        let mut svm = LinearSvm::new(40, 1e-4).with_seed(1);
        svm.fit(&ds);
        assert!(svm.accuracy(&ds) > 0.9, "acc {}", svm.accuracy(&ds));
    }

    #[test]
    fn multiclass_one_vs_rest() {
        let ds = SyntheticSpec::new("svm3", 300, 8, 3)
            .with_class_sep(4.5)
            .with_nonlinearity(0.0)
            .with_seed(3)
            .generate();
        let mut svm = LinearSvm::new(40, 1e-4).with_seed(1);
        svm.fit(&ds);
        assert!(svm.accuracy(&ds) > 0.8, "acc {}", svm.accuracy(&ds));
    }

    #[test]
    fn nonlinear_boundary_limits_linear_svm() {
        // With a strongly non-linear lift the linear SVM should be
        // beatable — this is the gap the MLP exploits in Tables I/II.
        let ds = SyntheticSpec::new("svm-nl", 400, 8, 2)
            .with_class_sep(1.0)
            .with_nonlinearity(3.0)
            .with_cluster_spread(1.6)
            .with_seed(8)
            .generate();
        let mut svm = LinearSvm::new(20, 1e-3).with_seed(1);
        svm.fit(&ds);
        assert!(svm.accuracy(&ds) < 0.97);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = linearly_separable();
        let run = |seed| {
            let mut s = LinearSvm::new(5, 1e-3).with_seed(seed);
            s.fit(&ds);
            s.predict(ds.features())
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let svm = LinearSvm::new(5, 1e-3);
        let _ = svm.predict(&Matrix::zeros(1, 4));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn zero_lambda_rejected() {
        let _ = LinearSvm::new(5, 0.0);
    }
}
