//! Multinomial (softmax) logistic regression.

use ecad_dataset::Dataset;
use ecad_tensor::{gemm, ops, Matrix};

use crate::Classifier;

/// Softmax regression trained with full-batch gradient descent.
///
/// Serves two roles: a classical baseline in its own right, and the
/// degenerate zero-hidden-layer MLP the evolutionary search can fall
/// back to.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    epochs: usize,
    lr: f32,
    l2: f32,
    weights: Option<Matrix>, // (d + 1) x classes, last row is bias
}

impl LogisticRegression {
    /// Creates an unfitted model.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0` or `lr <= 0`.
    pub fn new(epochs: usize, lr: f32) -> Self {
        assert!(epochs > 0, "need at least one epoch");
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            epochs,
            lr,
            l2: 1e-4,
            weights: None,
        }
    }

    /// Sets the L2 regularization strength.
    pub fn with_l2(mut self, l2: f32) -> Self {
        self.l2 = l2.max(0.0);
        self
    }

    fn augment(features: &Matrix) -> Matrix {
        // Append a constant-1 column for the bias.
        Matrix::from_fn(features.rows(), features.cols() + 1, |r, c| {
            if c == features.cols() {
                1.0
            } else {
                features[(r, c)]
            }
        })
    }

    fn logits(&self, x_aug: &Matrix) -> Matrix {
        gemm::matmul(
            x_aug,
            self.weights.as_ref().expect("predict called before fit"),
        )
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &str {
        "LogisticRegression"
    }

    fn fit(&mut self, train: &Dataset) {
        let x = Self::augment(train.features());
        let t = ops::one_hot(train.labels(), train.n_classes());
        let n = train.len() as f32;
        let mut w = Matrix::zeros(x.cols(), train.n_classes());
        for _ in 0..self.epochs {
            let probs = ops::softmax_rows(&gemm::matmul(&x, &w));
            let mut delta = probs.sub(&t).expect("shapes fixed above");
            delta.scale_inplace(1.0 / n);
            let mut grad = gemm::matmul_at_b(&x, &delta);
            grad.axpy_inplace(self.l2, &w).expect("same shape");
            w.axpy_inplace(-self.lr, &grad).expect("same shape");
        }
        self.weights = Some(w);
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        let x = Self::augment(features);
        self.logits(&x).argmax_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    #[test]
    fn learns_separable_data() {
        let ds = SyntheticSpec::new("lr", 200, 6, 2)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(1)
            .generate();
        let mut lr = LogisticRegression::new(300, 0.5);
        lr.fit(&ds);
        assert!(lr.accuracy(&ds) > 0.95, "acc {}", lr.accuracy(&ds));
    }

    #[test]
    fn multiclass() {
        let ds = SyntheticSpec::new("lr4", 400, 8, 4)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(2)
            .generate();
        let mut lr = LogisticRegression::new(300, 0.5);
        lr.fit(&ds);
        assert!(lr.accuracy(&ds) > 0.9, "acc {}", lr.accuracy(&ds));
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = SyntheticSpec::new("l2", 100, 4, 2).with_seed(3).generate();
        let norm = |l2: f32| {
            let mut m = LogisticRegression::new(200, 0.5).with_l2(l2);
            m.fit(&ds);
            m.weights.unwrap().frobenius_norm()
        };
        assert!(norm(1.0) < norm(0.0));
    }

    #[test]
    fn refit_replaces_previous_model() {
        let a = SyntheticSpec::new("a", 100, 4, 2).with_seed(1).generate();
        let b = SyntheticSpec::new("b", 100, 4, 2).with_seed(2).generate();
        let mut m = LogisticRegression::new(100, 0.5);
        m.fit(&a);
        let first = m.predict(a.features());
        m.fit(&b);
        m.fit(&a);
        assert_eq!(m.predict(a.features()), first);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let m = LogisticRegression::new(10, 0.1);
        let _ = m.predict(&Matrix::zeros(1, 3));
    }
}
