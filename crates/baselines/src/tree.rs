//! CART decision tree with Gini impurity — the
//! `DecisionTreeClassifier` stand-in.

use ecad_dataset::Dataset;
use ecad_tensor::Matrix;
use rt::rand::rngs::StdRng;
use rt::rand::seq::SliceRandom;
use rt::rand::SeedableRng;

use crate::Classifier;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        class: usize,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A CART classification tree: binary threshold splits chosen to
/// minimize weighted Gini impurity.
///
/// Supports per-node random feature subsampling (`max_features`) so the
/// same implementation powers [`crate::RandomForest`].
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    max_features: Option<usize>,
    seed: u64,
    root: Option<Node>,
    n_features: usize,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given depth limit,
    /// `min_samples_split = 2`, and no feature subsampling.
    pub fn new(max_depth: usize) -> Self {
        Self {
            max_depth,
            min_samples_split: 2,
            max_features: None,
            seed: 0,
            root: None,
            n_features: 0,
        }
    }

    /// Sets the minimum number of samples required to split a node.
    pub fn with_min_samples_split(mut self, n: usize) -> Self {
        self.min_samples_split = n.max(2);
        self
    }

    /// Considers only `n` random features per split (random forests use
    /// `sqrt(total features)`).
    pub fn with_max_features(mut self, n: usize) -> Self {
        self.max_features = Some(n.max(1));
        self
    }

    /// Seeds the feature-subsampling RNG.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Depth limit configured at construction.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of leaves in the fitted tree (0 before fitting).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn majority(labels: &[usize], idx: &[usize], n_classes: usize) -> usize {
        let mut counts = vec![0usize; n_classes];
        for &i in idx {
            counts[labels[i]] += 1;
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    fn gini_from_counts(counts: &[usize], total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let t = total as f64;
        1.0 - counts
            .iter()
            .map(|&c| {
                let p = c as f64 / t;
                p * p
            })
            .sum::<f64>()
    }

    /// Finds the best `(feature, threshold, gini)` split of `idx`, or
    /// `None` if no split reduces impurity.
    fn best_split(
        features: &Matrix,
        labels: &[usize],
        idx: &[usize],
        n_classes: usize,
        candidates: &[usize],
    ) -> Option<(usize, f32, f64)> {
        let parent_counts = {
            let mut c = vec![0usize; n_classes];
            for &i in idx {
                c[labels[i]] += 1;
            }
            c
        };
        let parent_gini = Self::gini_from_counts(&parent_counts, idx.len());
        if parent_gini == 0.0 {
            return None;
        }

        let mut best: Option<(usize, f32, f64)> = None;
        let mut order: Vec<usize> = idx.to_vec();
        for &f in candidates {
            order.sort_by(|&a, &b| {
                features[(a, f)]
                    .partial_cmp(&features[(b, f)])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            // Sweep split points between distinct consecutive values,
            // maintaining left/right class counts incrementally.
            let mut left_counts = vec![0usize; n_classes];
            let mut right_counts = parent_counts.clone();
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_counts[labels[i]] += 1;
                right_counts[labels[i]] -= 1;
                let v = features[(i, f)];
                let v_next = features[(order[w + 1], f)];
                if v == v_next {
                    continue;
                }
                let n_left = w + 1;
                let n_right = order.len() - n_left;
                let g = (n_left as f64 * Self::gini_from_counts(&left_counts, n_left)
                    + n_right as f64 * Self::gini_from_counts(&right_counts, n_right))
                    / order.len() as f64;
                if g + 1e-12 < best.map_or(parent_gini, |(_, _, bg)| bg) {
                    best = Some((f, (v + v_next) / 2.0, g));
                }
            }
        }
        best
    }

    fn build(
        features: &Matrix,
        labels: &[usize],
        idx: &[usize],
        n_classes: usize,
        depth: usize,
        cfg: &DecisionTree,
        rng: &mut StdRng,
    ) -> Node {
        let class = Self::majority(labels, idx, n_classes);
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
            return Node::Leaf { class };
        }
        // Feature candidates: all, or a random subset for forests.
        let all: Vec<usize> = (0..features.cols()).collect();
        let candidates: Vec<usize> = match cfg.max_features {
            Some(k) if k < all.len() => {
                let mut pool = all.clone();
                pool.shuffle(rng);
                pool.truncate(k);
                pool
            }
            _ => all,
        };
        match Self::best_split(features, labels, idx, n_classes, &candidates) {
            None => Node::Leaf { class },
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
                    .iter()
                    .partition(|&&i| features[(i, feature)] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Node::Leaf { class };
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::build(
                        features,
                        labels,
                        &left_idx,
                        n_classes,
                        depth + 1,
                        cfg,
                        rng,
                    )),
                    right: Box::new(Self::build(
                        features,
                        labels,
                        &right_idx,
                        n_classes,
                        depth + 1,
                        cfg,
                        rng,
                    )),
                }
            }
        }
    }

    fn predict_row(&self, row: &[f32]) -> usize {
        let mut node = self.root.as_ref().expect("predict called before fit");
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &str {
        "DecisionTreeClassifier"
    }

    fn fit(&mut self, train: &Dataset) {
        let idx: Vec<usize> = (0..train.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let cfg = self.clone();
        self.n_features = train.n_features();
        self.root = Some(Self::build(
            train.features(),
            train.labels(),
            &idx,
            train.n_classes(),
            0,
            &cfg,
            &mut rng,
        ));
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        assert_eq!(
            features.cols(),
            self.n_features,
            "tree fit on {} features, got {}",
            self.n_features,
            features.cols()
        );
        features.iter_rows().map(|r| self.predict_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    fn easy() -> Dataset {
        SyntheticSpec::new("tree-easy", 300, 6, 2)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(1)
            .generate()
    }

    #[test]
    fn fits_separable_data_well() {
        let ds = easy();
        let mut t = DecisionTree::new(8);
        t.fit(&ds);
        assert!(t.accuracy(&ds) > 0.95, "acc {}", t.accuracy(&ds));
    }

    #[test]
    fn depth_zero_is_majority_class() {
        let ds = easy();
        let mut t = DecisionTree::new(0);
        t.fit(&ds);
        assert_eq!(t.leaf_count(), 1);
        // Majority vote on a balanced dataset: accuracy ~= 0.5.
        let acc = t.accuracy(&ds);
        assert!((0.4..=0.6).contains(&acc), "acc {acc}");
    }

    #[test]
    fn deeper_trees_fit_no_worse_on_train() {
        let ds = SyntheticSpec::new("t", 200, 4, 2)
            .with_class_sep(1.0)
            .with_seed(5)
            .generate();
        let acc = |d: usize| {
            let mut t = DecisionTree::new(d);
            t.fit(&ds);
            t.accuracy(&ds)
        };
        assert!(acc(12) >= acc(2) - 1e-6);
    }

    #[test]
    fn pure_node_becomes_leaf_early() {
        // All-same-label data: root should be a single leaf.
        let x = Matrix::from_fn(10, 2, |r, c| (r + c) as f32);
        let ds = Dataset::new("pure", x, vec![1; 10], 2).unwrap();
        let mut t = DecisionTree::new(10);
        t.fit(&ds);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(ds.features()), vec![1; 10]);
    }

    #[test]
    fn handles_constant_features() {
        let x = Matrix::filled(20, 3, 1.0);
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let ds = Dataset::new("const", x, labels, 2).unwrap();
        let mut t = DecisionTree::new(5);
        t.fit(&ds);
        // No split possible: must not loop or panic.
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn feature_subsampling_is_deterministic_per_seed() {
        let ds = easy();
        let fit = |seed: u64| {
            let mut t = DecisionTree::new(6).with_max_features(2).with_seed(seed);
            t.fit(&ds);
            t.predict(ds.features())
        };
        assert_eq!(fit(3), fit(3));
    }

    #[test]
    #[should_panic(expected = "fit on")]
    fn predict_rejects_wrong_width() {
        let ds = easy();
        let mut t = DecisionTree::new(3);
        t.fit(&ds);
        let _ = t.predict(&Matrix::zeros(1, 99));
    }

    #[test]
    fn min_samples_split_limits_growth() {
        let ds = easy();
        let mut small = DecisionTree::new(20).with_min_samples_split(200);
        let mut big = DecisionTree::new(20).with_min_samples_split(2);
        small.fit(&ds);
        big.fit(&ds);
        assert!(small.leaf_count() <= big.leaf_count());
    }

    #[test]
    fn multiclass_splits_work() {
        let ds = SyntheticSpec::new("mc", 300, 8, 4)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(2)
            .generate();
        let mut t = DecisionTree::new(10);
        t.fit(&ds);
        assert!(t.accuracy(&ds) > 0.85, "acc {}", t.accuracy(&ds));
    }
}
