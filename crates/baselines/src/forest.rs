//! Random forest — the `mlr.classif.ranger` stand-in.

use ecad_dataset::Dataset;
use ecad_tensor::Matrix;
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, SeedableRng};

use crate::{Classifier, DecisionTree};

/// A bagged ensemble of CART trees with per-node feature subsampling
/// (`sqrt(features)` by default, the ranger/scikit convention).
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    max_depth: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl RandomForest {
    /// Creates an unfitted forest of `n_trees` trees with the given
    /// per-tree depth limit.
    ///
    /// # Panics
    ///
    /// Panics if `n_trees == 0`.
    pub fn new(n_trees: usize, max_depth: usize) -> Self {
        assert!(n_trees > 0, "a forest needs at least one tree");
        Self {
            n_trees,
            max_depth,
            seed: 0,
            trees: Vec::new(),
            n_classes: 0,
        }
    }

    /// Seeds bootstrap sampling and feature subsampling.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of trees configured.
    pub fn n_trees(&self) -> usize {
        self.n_trees
    }

    /// Number of fitted trees (0 before `fit`).
    pub fn fitted_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &str {
        "RandomForest(ranger)"
    }

    fn fit(&mut self, train: &Dataset) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = train.len();
        let mtry = (train.n_features() as f64).sqrt().ceil() as usize;
        self.n_classes = train.n_classes();
        self.trees = (0..self.n_trees)
            .map(|t| {
                // Bootstrap sample (with replacement).
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let boot = train.subset(&idx);
                let mut tree = DecisionTree::new(self.max_depth)
                    .with_max_features(mtry)
                    .with_seed(self.seed.wrapping_add(t as u64 + 1));
                tree.fit(&boot);
                tree
            })
            .collect();
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        assert!(!self.trees.is_empty(), "predict called before fit");
        let votes: Vec<Vec<usize>> = self.trees.iter().map(|t| t.predict(features)).collect();
        (0..features.rows())
            .map(|r| {
                let mut counts = vec![0usize; self.n_classes];
                for v in &votes {
                    counts[v[r]] += 1;
                }
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &c)| c)
                    .map(|(k, _)| k)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    fn noisy() -> Dataset {
        SyntheticSpec::new("forest", 300, 10, 2)
            .with_class_sep(2.0)
            .with_seed(4)
            .generate()
    }

    #[test]
    fn forest_fits_and_predicts() {
        let ds = noisy();
        let mut f = RandomForest::new(15, 6).with_seed(1);
        f.fit(&ds);
        assert_eq!(f.fitted_trees(), 15);
        assert!(f.accuracy(&ds) > 0.8, "acc {}", f.accuracy(&ds));
    }

    #[test]
    fn forest_generalizes_at_least_as_well_as_single_deep_tree() {
        let ds = SyntheticSpec::new("gen", 500, 10, 2)
            .with_class_sep(1.4)
            .with_label_noise(0.15)
            .with_seed(9)
            .generate();
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = ds.split(0.3, &mut rng);
        let mut tree = DecisionTree::new(20);
        tree.fit(&train);
        let mut forest = RandomForest::new(25, 8).with_seed(2);
        forest.fit(&train);
        // Forests should not be meaningfully worse on noisy data.
        assert!(forest.accuracy(&test) >= tree.accuracy(&test) - 0.05);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = noisy();
        let run = |seed| {
            let mut f = RandomForest::new(5, 4).with_seed(seed);
            f.fit(&ds);
            f.predict(ds.features())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_rejected() {
        let _ = RandomForest::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        let f = RandomForest::new(3, 4);
        let _ = f.predict(&Matrix::zeros(1, 2));
    }
}
