//! Gaussian naive Bayes classifier.

use ecad_dataset::Dataset;
use ecad_tensor::Matrix;

use crate::Classifier;

/// Naive Bayes with per-class, per-feature Gaussian likelihoods and
/// variance smoothing (sklearn's `var_smoothing` analogue).
#[derive(Debug, Clone)]
pub struct GaussianNaiveBayes {
    var_smoothing: f32,
    // Per class: prior log-prob, per-feature mean, per-feature variance.
    priors: Vec<f32>,
    means: Vec<Vec<f32>>,
    vars: Vec<Vec<f32>>,
}

impl GaussianNaiveBayes {
    /// Creates an unfitted model with default smoothing `1e-6`.
    pub fn new() -> Self {
        Self {
            var_smoothing: 1e-6,
            priors: Vec::new(),
            means: Vec::new(),
            vars: Vec::new(),
        }
    }

    /// Sets the variance-smoothing fraction (added as
    /// `smoothing * max feature variance` to every variance).
    pub fn with_var_smoothing(mut self, s: f32) -> Self {
        self.var_smoothing = s.max(0.0);
        self
    }
}

impl Default for GaussianNaiveBayes {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for GaussianNaiveBayes {
    fn name(&self) -> &str {
        "GaussianNB"
    }

    fn fit(&mut self, train: &Dataset) {
        let classes = train.n_classes();
        let d = train.n_features();
        let counts = train.class_counts();
        let mut means = vec![vec![0.0f32; d]; classes];
        let mut vars = vec![vec![0.0f32; d]; classes];
        for r in 0..train.len() {
            let y = train.labels()[r];
            for (m, &x) in means[y].iter_mut().zip(train.features().row(r)) {
                *m += x;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            let n = (*count).max(1) as f32;
            for m in &mut means[c] {
                *m /= n;
            }
        }
        for r in 0..train.len() {
            let y = train.labels()[r];
            for ((v, &x), &m) in vars[y]
                .iter_mut()
                .zip(train.features().row(r))
                .zip(&means[y])
            {
                *v += (x - m) * (x - m);
            }
        }
        let mut max_var = 0.0f32;
        for (c, count) in counts.iter().enumerate() {
            let n = (*count).max(1) as f32;
            for v in &mut vars[c] {
                *v /= n;
                max_var = max_var.max(*v);
            }
        }
        let eps = self.var_smoothing * max_var.max(1e-9);
        for vrow in &mut vars {
            for v in vrow {
                *v += eps + 1e-9;
            }
        }
        self.priors = counts
            .iter()
            .map(|&c| ((c.max(1)) as f32 / train.len() as f32).ln())
            .collect();
        self.means = means;
        self.vars = vars;
    }

    fn predict(&self, features: &Matrix) -> Vec<usize> {
        assert!(!self.means.is_empty(), "predict called before fit");
        assert_eq!(
            features.cols(),
            self.means[0].len(),
            "feature width differs from training data"
        );
        features
            .iter_rows()
            .map(|row| {
                (0..self.priors.len())
                    .map(|c| {
                        let mut ll = self.priors[c];
                        for ((&x, &m), &v) in row.iter().zip(&self.means[c]).zip(&self.vars[c]) {
                            ll += -0.5 * ((x - m) * (x - m) / v + v.ln());
                        }
                        (c, ll)
                    })
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecad_dataset::synth::SyntheticSpec;

    #[test]
    fn gaussian_clusters_are_its_home_turf() {
        let ds = SyntheticSpec::new("gnb", 300, 8, 3)
            .with_class_sep(4.0)
            .with_nonlinearity(0.0)
            .with_seed(1)
            .generate();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&ds);
        assert!(nb.accuracy(&ds) > 0.85, "acc {}", nb.accuracy(&ds));
    }

    #[test]
    fn constant_feature_does_not_produce_nan() {
        use ecad_tensor::Matrix;
        let mut x = Matrix::zeros(20, 3);
        for r in 0..20 {
            x[(r, 1)] = if r % 2 == 0 { 1.0 } else { -1.0 };
        }
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let ds = Dataset::new("const", x, labels, 2).unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&ds);
        let acc = nb.accuracy(&ds);
        assert!(acc.is_finite());
        assert!(acc > 0.9);
    }

    #[test]
    fn priors_reflect_imbalance() {
        use ecad_tensor::Matrix;
        // 18 of class 0, 2 of class 1, identical features: predict 0.
        let x = Matrix::filled(20, 2, 1.0);
        let mut labels = vec![0usize; 20];
        labels[0] = 1;
        labels[1] = 1;
        let ds = Dataset::new("imb", x, labels, 2).unwrap();
        let mut nb = GaussianNaiveBayes::new();
        nb.fit(&ds);
        assert_eq!(nb.predict(&Matrix::filled(1, 2, 1.0)), vec![0]);
    }

    #[test]
    fn default_is_new() {
        let nb = GaussianNaiveBayes::default();
        assert!(nb.means.is_empty());
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn predict_before_fit_panics() {
        use ecad_tensor::Matrix;
        let nb = GaussianNaiveBayes::new();
        let _ = nb.predict(&Matrix::zeros(1, 2));
    }
}
