//! Adversarial fuzz of `rt::http`'s request handling over a real
//! loopback socket: malformed, oversized, and partial requests must
//! each get an error response or a clean close — never a panic, never
//! a hang. A healthy request at the end proves the accept loops
//! survived everything the fuzz threw at them.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

use rt::check::{select, vec};
use rt::http::{Response, Server, ServerHandle};

/// One server shared by every case — the point is to batter a single
/// instance and verify it keeps serving.
fn server() -> &'static ServerHandle {
    static SERVER: OnceLock<ServerHandle> = OnceLock::new();
    SERVER.get_or_init(|| {
        Server::new()
            .route("/ping", || Response::ok("text/plain", "pong\n".to_string()))
            .bind("127.0.0.1:0")
            .expect("bind loopback")
    })
}

/// Writes `bytes`, closes the write half so a head the server never
/// finds complete reads EOF instead of waiting out its idle timeout,
/// and drains whatever the server answers. The client-side read
/// timeout bounds every case: a hung server fails the property
/// instead of wedging the test.
fn exchange(bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(server().addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(Shutdown::Write);
    let mut out = Vec::new();
    let _ = stream.read_to_end(&mut out);
    out
}

/// Every non-empty server answer must be a well-formed HTTP/1.1
/// response head.
fn assert_http_or_silence(reply: &[u8]) {
    assert!(
        reply.is_empty() || reply.starts_with(b"HTTP/1.1 "),
        "server wrote a non-HTTP reply: {:?}",
        String::from_utf8_lossy(&reply[..reply.len().min(64)])
    );
}

fn assert_still_serving() {
    let reply = exchange(b"GET /ping HTTP/1.1\r\n\r\n");
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("HTTP/1.1 200") && text.ends_with("pong\n"),
        "server no longer healthy after fuzz input: {text:?}"
    );
}

rt::prop! {
    #![cases(256)]
    /// Raw byte soup terminated like a request head: the server must
    /// answer with an HTTP error or close, and keep serving after.
    fn request_byte_soup_gets_error_or_close(bytes in vec(0u8..=255, 0..48)) {
        let mut request = bytes.clone();
        request.extend_from_slice(b"\r\n\r\n");
        assert_http_or_silence(&exchange(&request));
    }

    /// Structured near-misses: wrong methods, absent versions, stray
    /// whitespace, header-less and header-heavy variants.
    fn request_token_soup_gets_error_or_close(tokens in vec(select(std::vec::Vec::from([
        "GET", "PUT", "get", "/ping", "/", "*", "HTTP/1.1", "HTTP/9.9", "http/1.1",
        " ", "\t", "\r\n", "\r\n\r\n", "Host: x", ":", "\u{0}", "%2e%2e", "?q=1",
    ])), 0..10)) {
        let mut request = tokens.concat().into_bytes();
        request.extend_from_slice(b"\r\n\r\n");
        assert_http_or_silence(&exchange(&request));
    }

    /// Partial heads: the client gives up mid-request. The server
    /// must close without writing garbage (an error response is also
    /// acceptable) and without stalling the accept loop.
    fn partial_request_closes_cleanly(cut in 0usize..22) {
        let full = b"GET /ping HTTP/1.1\r\n\r\n";
        assert_http_or_silence(&exchange(&full[..cut]));
    }
}

#[test]
fn oversized_request_head_is_rejected() {
    // 3× the server's head limit, no terminator: the server must cut
    // the connection off with 431 rather than buffer forever.
    let reply = exchange(&[b'A'; 24 * 1024]);
    let text = String::from_utf8_lossy(&reply);
    assert!(
        text.starts_with("HTTP/1.1 431"),
        "expected 431 for oversized head, got: {:?}",
        &text[..text.len().min(64)]
    );
}

#[test]
fn server_survives_the_whole_fuzz_barrage() {
    // Runs in the same process as the properties above; regardless of
    // test order, a final health check proves no fuzz case killed the
    // accept loops or wedged a worker slot.
    assert_still_serving();
}
