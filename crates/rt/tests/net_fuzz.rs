//! Adversarial fuzz of the `rt::net` frame and message layer, in the
//! same spirit as the JSON/INI/HTTP fuzzers: whatever bytes arrive —
//! soup, truncations, hostile length prefixes, near-miss hellos — the
//! parser must return a classified error or a value, never panic, and
//! never attempt an attacker-sized allocation.

use std::io::Cursor;

use rt::check::{from_fn, select, vec, CheckRng};
use rt::json::Json;
use rt::net::{check_hello, hello_frame, read_frame, write_frame, NetError, PROTOCOL_VERSION};
use rt::rand::Rng;

/// A small ceiling so "oversized" cases are cheap to construct.
const MAX_FRAME: usize = 4 * 1024;

fn arbitrary_json(rng: &mut CheckRng, depth: u32) -> Json {
    let variants = if depth >= 2 { 4 } else { 6 };
    match rng.gen_range(0u32..variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 1),
        2 => Json::Number(rng.gen_range(-1_000_000i64..1_000_000) as f64),
        3 => Json::String(
            (0..rng.gen_range(0usize..6))
                .map(|_| ['a', '"', '\\', 'é', '\n', ' '][rng.gen_range(0usize..6)])
                .collect(),
        ),
        4 => Json::Array(
            (0..rng.gen_range(0usize..3))
                .map(|_| arbitrary_json(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.gen_range(0usize..3))
                .map(|i| (format!("k{i}"), arbitrary_json(rng, depth + 1)))
                .collect(),
        ),
    }
}

rt::prop! {
    #![cases(256)]
    /// Raw byte soup fed to the frame reader: an error or a value,
    /// never a panic. Most inputs die on the prefix or mid-payload.
    fn read_frame_survives_byte_soup(bytes in vec(0u8..=255, 0..64)) {
        let _ = read_frame(&mut Cursor::new(&bytes), MAX_FRAME);
    }

    /// A valid frame truncated at every possible byte boundary: every
    /// cut must produce `Closed` (cut before byte 1) or an I/O error,
    /// and the prefix itself must never be trusted past the ceiling.
    fn truncated_frames_error_cleanly(doc in from_fn(|rng| arbitrary_json(rng, 0)),
                                      frac in 0u32..1000) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc, MAX_FRAME).expect("generated doc fits");
        let cut = (buf.len() - 1) * frac as usize / 1000;
        let err = read_frame(&mut Cursor::new(&buf[..cut]), MAX_FRAME)
            .expect_err("truncated frame must not parse");
        match err {
            NetError::Closed | NetError::Io(_) => {}
            other => panic!("unexpected error class for truncation: {other:?}"),
        }
    }

    /// Hostile length prefixes up to u32::MAX followed by junk: the
    /// reader must reject on the announced length alone when it is
    /// above the ceiling — before allocating or reading the payload.
    fn oversized_prefixes_rejected_without_allocation(len in 0u32..=u32::MAX,
                                                      tail in vec(0u8..=255, 0..8)) {
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(&tail);
        match read_frame(&mut Cursor::new(&buf), MAX_FRAME) {
            Err(NetError::FrameTooLarge { len: l, max }) => {
                rt::prop_assert_eq!(l, len as usize);
                rt::prop_assert_eq!(max, MAX_FRAME);
                rt::prop_assert!(l > MAX_FRAME, "in-bounds length misclassified");
            }
            Err(_) => rt::prop_assert!(
                (len as usize) <= MAX_FRAME,
                "oversized length {len} not rejected as FrameTooLarge"
            ),
            Ok(_) => rt::prop_assert!((len as usize) <= MAX_FRAME),
        }
    }

    /// Any JSON document — including valid non-hello documents and
    /// structural near-misses — fed to the hello validator: a clean
    /// error or a role, never a panic.
    fn check_hello_survives_arbitrary_documents(doc in from_fn(|rng| arbitrary_json(rng, 0))) {
        let _ = check_hello(&doc, None);
        let _ = check_hello(&doc, Some("worker"));
    }

    /// Hello-shaped token soup: hand-assembled documents recombining
    /// the fields a real hello carries, with wrong types and versions.
    fn check_hello_survives_near_miss_hellos(
        net in select(std::vec::Vec::from(["hello", "goodbye", "", "HELLO"])),
        version in select(std::vec::Vec::from([-1i64, 0, 1, 2, 255, 1 << 40])),
        role in select(std::vec::Vec::from(["worker", "coordinator", "", "wörker"])),
        drop_version in select(std::vec::Vec::from([false, true])),
    ) {
        let mut doc = Json::object().insert("net", net).insert("role", role);
        if !drop_version {
            doc = doc.insert("version", version);
        }
        match check_hello(&doc, Some("worker")) {
            Ok(got) => {
                rt::prop_assert_eq!(net, "hello");
                rt::prop_assert_eq!(version, PROTOCOL_VERSION as i64);
                rt::prop_assert_eq!(got.as_str(), "worker");
            }
            Err(NetError::VersionMismatch { ours, theirs }) => {
                rt::prop_assert_eq!(ours, PROTOCOL_VERSION);
                rt::prop_assert!(theirs != PROTOCOL_VERSION);
            }
            Err(NetError::Protocol(_)) => {}
            Err(other) => panic!("unexpected error class: {other:?}"),
        }
    }

    /// Frames written back-to-back on one stream read back in order,
    /// byte-identically — and the serializer/framer pair never writes
    /// something its own reader rejects.
    fn frame_stream_round_trips(docs in vec(from_fn(|rng| arbitrary_json(rng, 0)), 0..6)) {
        let mut buf = Vec::new();
        for doc in &docs {
            write_frame(&mut buf, doc, MAX_FRAME).expect("generated doc fits");
        }
        let mut cursor = Cursor::new(&buf);
        for doc in &docs {
            let got = read_frame(&mut cursor, MAX_FRAME).expect("own frame reads back");
            rt::prop_assert_eq!(got.to_string(), doc.to_string());
        }
        rt::prop_assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME),
            Err(NetError::Closed)
        ));
    }
}

#[test]
fn version_mismatch_is_permanent_and_descriptive() {
    let skew = Json::object()
        .insert("net", "hello")
        .insert("version", PROTOCOL_VERSION + 7)
        .insert("role", "worker");
    let err = check_hello(&skew, None).unwrap_err();
    assert!(!err.is_transient(), "version skew must not be retried");
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("v{PROTOCOL_VERSION}")) && msg.contains("mismatch"),
        "operator-facing message should name both versions: {msg}"
    );
}

#[test]
fn hello_frame_passes_its_own_validator() {
    let frame = hello_frame("coordinator");
    let reparsed = Json::parse(&frame.to_string()).unwrap();
    assert_eq!(check_hello(&reparsed, Some("coordinator")).unwrap(), "coordinator");
}
