//! Adversarial parser fuzzing: `rt::json` and the Prometheus
//! exposition parser must never panic, whatever bytes arrive.
//!
//! Three input distributions, in rising order of structure:
//!
//! 1. raw byte soup (most inputs fail UTF-8 or the first token);
//! 2. token soup — JSON fragments concatenated at random, which
//!    reaches deep into the parser (unterminated strings, bare
//!    minus signs, half-escapes, mismatched brackets);
//! 3. generated *valid* documents, where the serializer/parser pair
//!    must be an exact fixpoint.
//!
//! Failures shrink through the tape harness and replay via the
//! printed `RT_CHECK_SEED`.

use rt::check::{from_fn, select, vec, CheckRng};
use rt::http::{parse_exposition, prometheus_text};
use rt::json::Json;
use rt::obs::{labeled_key, MetricValue};
use rt::rand::Rng;

/// Characters chosen to stress every serializer escape path: quotes,
/// backslashes, ASCII controls, and multi-byte UTF-8.
const STRING_CHARS: &[char] = &[
    'a', 'z', '0', ' ', '"', '\\', '/', '\n', '\r', '\t', '\u{0}', '\u{1f}', 'é', 'Ж', '☃', '𝄞',
];

fn arbitrary_string(rng: &mut CheckRng) -> String {
    let len = rng.gen_range(0usize..8);
    (0..len)
        .map(|_| STRING_CHARS[rng.gen_range(0usize..STRING_CHARS.len())])
        .collect()
}

/// A random JSON document, depth-limited so generation terminates.
/// Numbers stay finite (non-finite serializes as `null` by design,
/// which would be a legitimate round-trip change, not a bug).
fn arbitrary_json(rng: &mut CheckRng, depth: u32) -> Json {
    let variants = if depth >= 2 { 4 } else { 6 };
    match rng.gen_range(0u32..variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_range(0u32..2) == 1),
        2 => {
            if rng.gen_range(0u32..2) == 0 {
                // Integral values must print without a fraction.
                Json::Number(rng.gen_range(-1_000_000i64..1_000_000) as f64)
            } else {
                Json::Number(rng.gen_range(-1.0e6f64..1.0e6))
            }
        }
        3 => Json::String(arbitrary_string(rng)),
        4 => Json::Array(
            (0..rng.gen_range(0usize..4))
                .map(|_| arbitrary_json(rng, depth + 1))
                .collect(),
        ),
        _ => Json::Object(
            (0..rng.gen_range(0usize..4))
                .map(|_| (arbitrary_string(rng), arbitrary_json(rng, depth + 1)))
                .collect(),
        ),
    }
}

rt::prop! {
    #![cases(256)]
    /// The parser returns `Err` on garbage; it never panics.
    fn json_parse_survives_byte_soup(bytes in vec(0u8..=255, 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// JSON fragments glued together at random: near-valid inputs
    /// that reach the deeper parser states byte soup rarely finds.
    /// Anything that does parse must round-trip exactly.
    fn json_parse_survives_token_soup(tokens in vec(select(std::vec::Vec::from([
        "{", "}", "[", "]", ",", ":", "\"", "null", "true", "false",
        "0", "-", "1e", "1e999", "2.5", ".5", "\\u00", "\\uD800",
        "\"a\"", "\u{7f}", " ", "\t",
    ])), 0..24)) {
        let text: String = tokens.concat();
        if let Ok(doc) = Json::parse(&text) {
            let s = doc.to_string();
            rt::prop_assert_eq!(Json::parse(&s).expect("serializer output parses"), doc);
        }
    }

    /// Serialize → parse → serialize is a byte-identical fixpoint on
    /// arbitrary generated documents (the serializer's documented
    /// contract, here exercised beyond the hand-written cases).
    fn json_serialize_parse_fixpoint(doc in from_fn(|rng| arbitrary_json(rng, 0))) {
        let first = doc.to_string();
        let reparsed = Json::parse(&first).expect("serializer output must parse");
        rt::prop_assert_eq!(&reparsed, &doc);
        rt::prop_assert_eq!(reparsed.to_string(), first);
        // Pretty output is a different rendering of the same value.
        let pretty = Json::parse(&doc.pretty()).expect("pretty output must parse");
        rt::prop_assert_eq!(pretty, doc);
    }

    /// The Prometheus text-exposition parser holds the same contract.
    fn prometheus_parse_survives_byte_soup(bytes in vec(0u8..=255, 0..96)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_exposition(&text);
    }

    /// Exposition-shaped line soup: comments, names, labels, and
    /// numbers recombined at random.
    fn prometheus_parse_survives_line_soup(lines in vec(select(std::vec::Vec::from([
        "# HELP a b", "# TYPE a counter", "a 1", "a{", "a} 2", "a{x=\"y\"} 3",
        "a{x=\"y\",} NaN", "a +Inf", "a 1 2 3", "{} 0", "a", "", " ", "a \u{0}",
    ])), 0..12)) {
        let text = lines.join("\n");
        let _ = parse_exposition(&text);
    }

    /// Labeled families round-trip: keys built by `labeled_key` from
    /// adversarial label values (backslashes, quotes, newlines, and the
    /// block delimiters `}` `,` `=`) must render through
    /// `prometheus_text` and parse back to the original decoded values.
    fn prometheus_labeled_families_round_trip(
        values in vec(from_fn(arbitrary_label_value), 1..6),
    ) {
        let mut entries = Vec::new();
        for (i, v) in values.iter().enumerate() {
            let name = if i % 2 == 0 { "fam_counter" } else { "fam_gauge" };
            let key = labeled_key(name, &[("worker", v), ("slot", "s0")]);
            let value = if i % 2 == 0 {
                MetricValue::Counter(i as u64)
            } else {
                MetricValue::Gauge(i as f64 * 0.5)
            };
            entries.push((key, value));
        }
        let text = prometheus_text(&entries);
        let samples = parse_exposition(&text).expect("labeled exposition parses");
        rt::prop_assert_eq!(samples.len(), entries.len());
        for (i, v) in values.iter().enumerate() {
            let got = &samples[i];
            let worker = got
                .labels
                .iter()
                .find(|(k, _)| k == "worker")
                .map(|(_, v)| v.as_str());
            rt::prop_assert_eq!(worker, Some(v.as_str()));
        }
    }
}

/// Label values biased toward the characters the escaper and the
/// escape-aware parser must agree on.
fn arbitrary_label_value(rng: &mut CheckRng) -> String {
    const CHARS: &[char] = &['a', 'b', '\\', '"', '\n', '}', '{', ',', '=', ' ', 'é', '☃'];
    let len = rng.gen_range(0usize..10);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0usize..CHARS.len())])
        .collect()
}
