//! Golden + fixpoint tests pinning the profile JSON schema.
//!
//! The golden file (`tests/golden/PROFILE_golden.json`) is the
//! contract for `rt::prof::profile_to_json`: a scripted span program on
//! the deterministic `ticks` clock must export byte-identical JSON run
//! to run and match the checked-in copy, and re-serializing the parsed
//! document must be byte-identical (the `rt::json` fixpoint property).
//! Regenerate intentionally with
//! `UPDATE_GOLDEN=1 cargo test -p ecad-rt --test profile_golden`.

use std::path::PathBuf;

use rt::json::Json;
use rt::prof::{profile_from_json, profile_to_json, ClockKind, ProfileNode, Profiler};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/PROFILE_golden.json")
}

/// A fixed span program shaped like a miniature search: repeated
/// evaluations with nested training/kernel spans, a hardware-model
/// phase, and an engine-side dispatch phase.
fn golden_profile() -> String {
    let p = Profiler::new(ClockKind::Ticks);
    {
        let _install = p.install();
        for _ in 0..3 {
            let _evaluate = rt::prof_span!("evaluate");
            {
                let _train = rt::prof_span!("train");
                for _ in 0..2 {
                    let _epoch = rt::prof_span!("epoch");
                    let _gemm = rt::prof_span!("gemm");
                }
            }
            let _hw = rt::prof_span!("hw_model");
        }
        let _dispatch = rt::prof_span!("dispatch");
    }
    profile_to_json(ClockKind::Ticks, &p.report()).pretty() + "\n"
}

/// Producing the profile from code matches the checked-in golden file
/// byte for byte — any schema change (field order, formatting, child
/// sort order, version) fails here first.
#[test]
fn emitted_profile_matches_golden_file() {
    let generated = golden_profile();
    let path = golden_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &generated).unwrap();
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(
        generated,
        committed,
        "profile schema drifted from the golden file; if intentional, bump \
         PROFILE_SCHEMA_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

/// The deterministic-clock contract: two identical single-thread runs
/// export byte-identical profile JSON.
#[test]
fn ticks_profile_is_byte_identical_across_runs() {
    assert_eq!(golden_profile(), golden_profile());
}

/// serialize(parse(golden)) == golden: the schema survives the
/// `rt::json` round trip byte-identically.
#[test]
fn golden_file_is_a_serializer_fixpoint() {
    let text = golden_profile();
    let reparsed = Json::parse(&text).unwrap().pretty() + "\n";
    assert_eq!(text, reparsed);
}

/// The typed consumer (`profile_from_json` → `ProfileNode::to_json`)
/// reproduces the exact bytes — producer and consumer agree on every
/// field.
#[test]
fn typed_round_trip_reproduces_golden_bytes() {
    let text = golden_profile();
    let (clock, root) = profile_from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(clock, "ticks");
    assert_eq!(root.find("gemm").unwrap().calls, 6);
    let re_emitted = profile_to_json(ClockKind::Ticks, &root).pretty() + "\n";
    assert_eq!(text, re_emitted);
    // Collapsed export from the same tree is parseable flamegraph input.
    for line in root.to_collapsed().lines() {
        let (path, ns) = line.rsplit_once(' ').unwrap();
        assert!(path.starts_with("engine"));
        ns.parse::<u64>().unwrap();
    }
    assert!(root.to_collapsed().contains("engine;evaluate;train;epoch;gemm "));
    let _ = ProfileNode::from_json(&root.to_json()).unwrap();
}
