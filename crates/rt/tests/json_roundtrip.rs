//! Round-trip fixpoint tests for `rt::json`: for any value the
//! serializer emits, parse(serialize(v)) == v and a second
//! serialize(parse(serialize(v))) is byte-identical (the printer is a
//! fixpoint over its own output). Random documents are generated with
//! `rt::rand`, so this test exercises two rt subsystems at once.

use rt::json::Json;
use rt::rand::rngs::StdRng;
use rt::rand::{Rng, SeedableRng};

/// Builds an arbitrary JSON document of bounded depth.
fn arb_json(rng: &mut StdRng, depth: usize) -> Json {
    let pick = if depth == 0 { rng.gen_range(0..4) } else { rng.gen_range(0..6) };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => {
            // Mix integers (printed without fraction) and real fractions.
            if rng.gen_bool(0.5) {
                Json::Number(rng.gen_range(-1_000_000i64..1_000_000) as f64)
            } else {
                Json::Number(rng.gen_range(-1e6..1e6))
            }
        }
        3 => {
            let len = rng.gen_range(0..12);
            let s: String = (0..len)
                .map(|_| {
                    // Cover escapes: quotes, backslashes, control chars,
                    // and non-ASCII code points.
                    match rng.gen_range(0..6) {
                        0 => '"',
                        1 => '\\',
                        2 => '\n',
                        3 => char::from_u32(rng.gen_range(1u32..32)).unwrap(),
                        4 => char::from_u32(0x1F600 + rng.gen_range(0u32..16)).unwrap(),
                        _ => char::from(rng.gen_range(b'a'..=b'z')),
                    }
                })
                .collect();
            Json::String(s)
        }
        4 => {
            let len = rng.gen_range(0..5);
            Json::Array((0..len).map(|_| arb_json(rng, depth - 1)).collect())
        }
        _ => {
            let len = rng.gen_range(0..5);
            Json::Object(
                (0..len)
                    .map(|i| (format!("k{i}"), arb_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

#[test]
fn serialize_parse_serialize_is_a_fixpoint() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..256 {
        let doc = arb_json(&mut rng, 4);
        let once = doc.to_string();
        let parsed = Json::parse(&once).unwrap_or_else(|e| {
            panic!("case {case}: serializer emitted unparseable text {once:?}: {e}")
        });
        assert_eq!(parsed, doc, "case {case}: value changed across round trip");
        assert_eq!(parsed.to_string(), once, "case {case}: printer not a fixpoint");
    }
}

#[test]
fn pretty_printer_is_also_a_fixpoint() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for case in 0..128 {
        let doc = arb_json(&mut rng, 3);
        let pretty = doc.pretty();
        let parsed = Json::parse(&pretty)
            .unwrap_or_else(|e| panic!("case {case}: pretty output unparseable: {e}"));
        assert_eq!(parsed, doc, "case {case}");
        assert_eq!(parsed.pretty(), pretty, "case {case}");
    }
}

#[test]
fn object_insertion_order_survives_round_trip() {
    let doc = Json::object()
        .insert("zulu", 1)
        .insert("alpha", 2)
        .insert("mike", 3);
    let text = doc.pretty();
    let z = text.find("zulu").unwrap();
    let a = text.find("alpha").unwrap();
    let m = text.find("mike").unwrap();
    assert!(z < a && a < m, "objects must preserve insertion order");
    assert_eq!(Json::parse(&text).unwrap(), doc);
}
