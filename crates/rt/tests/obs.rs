//! Integration tests for `rt::obs`: level filtering, sink routing,
//! histogram quantiles, ring-buffer wrap-around, JSONL round-trips,
//! and hot-path thread safety.

use std::io::Write;
use std::sync::{Arc, Mutex};

use rt::json::Json;
use rt::obs::{Event, JsonlSink, Level, Obs, RingSink, Sink, StderrSink, Value};

/// An `impl Write` handle over a shared byte buffer, so a test can
/// hand the writer to a `JsonlSink` and still read the bytes back.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn new() -> Self {
        SharedBuf(Arc::new(Mutex::new(Vec::new())))
    }

    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn ring_obs(min: Level, capacity: usize) -> (Obs, Arc<RingSink>) {
    let ring = RingSink::new(min, capacity);
    let obs = Obs::builder().sink(Arc::clone(&ring)).build();
    (obs, ring)
}

#[test]
fn events_below_sink_level_are_filtered() {
    let (obs, ring) = ring_obs(Level::Info, 16);
    assert!(!obs.is_enabled(Level::Trace));
    assert!(!obs.is_enabled(Level::Debug));
    assert!(obs.is_enabled(Level::Info));
    assert!(obs.is_enabled(Level::Warn));

    rt::trace!(obs, "too_quiet");
    rt::debug!(obs, "still_too_quiet");
    rt::info!(obs, "heard", n = 1u64);
    rt::warn!(obs, "also_heard");

    let events = ring.snapshot();
    let names: Vec<&str> = events.iter().map(|e| e.name).collect();
    assert_eq!(names, vec!["heard", "also_heard"]);
    assert_eq!(events[0].fields, vec![("n", Value::U64(1))]);
    assert_eq!(events[0].target, module_path!());
}

#[test]
fn multiple_sinks_each_apply_their_own_level() {
    let fine = RingSink::new(Level::Trace, 16);
    let coarse = RingSink::new(Level::Warn, 16);
    let obs = Obs::builder()
        .sink(Arc::clone(&fine))
        .sink(Arc::clone(&coarse))
        .build();

    rt::debug!(obs, "detail");
    rt::warn!(obs, "problem");

    assert_eq!(fine.snapshot().len(), 2);
    let coarse_names: Vec<&str> = coarse.snapshot().iter().map(|e| e.name).collect();
    assert_eq!(coarse_names, vec!["problem"]);
}

#[test]
fn ring_buffer_wraps_keeping_newest() {
    let (obs, ring) = ring_obs(Level::Trace, 4);
    for i in 0..10u64 {
        rt::info!(obs, "tick", i = i);
    }
    assert_eq!(ring.len(), 4);
    let kept: Vec<Value> = ring
        .snapshot()
        .iter()
        .map(|e| e.fields[0].1.clone())
        .collect();
    assert_eq!(
        kept,
        vec![Value::U64(6), Value::U64(7), Value::U64(8), Value::U64(9)]
    );
}

#[test]
fn jsonl_lines_round_trip_through_rt_json() {
    let buf = SharedBuf::new();
    let obs = Obs::builder()
        .sink(JsonlSink::to_writer(Level::Debug, Box::new(buf.clone())))
        .build();

    rt::info!(obs, "search_start", seed = 7u64, threads = 1usize);
    rt::debug!(obs, "cache_hit", key = "ff00", hit = true);
    rt::warn!(obs, "infeasible", reason = "device-fit", penalty = 0.25);
    obs.flush();

    let text = buf.contents();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);

    for (i, line) in lines.iter().enumerate() {
        let json = Json::parse(line).expect("every trace line parses");
        // Stable schema: seq/level/target/event/fields, in that order.
        let Json::Object(pairs) = &json else {
            panic!("line is not an object: {line}");
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["seq", "level", "target", "event", "fields"]);
        assert_eq!(json.get("seq").and_then(Json::as_f64), Some(i as f64));
        // Round-trip: parse → serialize is the identity on sink output.
        assert_eq!(json.to_string(), *line);
    }

    let first = Json::parse(lines[0]).unwrap();
    assert_eq!(first.get("event").and_then(Json::as_str), Some("search_start"));
    let fields = first.get("fields").unwrap();
    assert_eq!(fields.get("seed").and_then(Json::as_f64), Some(7.0));
    assert_eq!(fields.get("threads").and_then(Json::as_f64), Some(1.0));

    let third = Json::parse(lines[2]).unwrap();
    assert_eq!(
        third.get("fields").and_then(|f| f.get("reason")).and_then(Json::as_str),
        Some("device-fit")
    );
}

#[test]
fn jsonl_excludes_timing_unless_asked() {
    let plain = SharedBuf::new();
    let timed = SharedBuf::new();
    let obs = Obs::builder()
        .sink(JsonlSink::to_writer(Level::Trace, Box::new(plain.clone())))
        .sink(
            JsonlSink::to_writer(Level::Trace, Box::new(timed.clone())).with_timing(true),
        )
        .build();

    {
        let _span = rt::span!(obs, "evaluate", worker = 0usize);
        std::hint::black_box(0);
    }
    obs.flush();

    let plain_line = plain.contents();
    let timed_line = timed.contents();
    assert!(!plain_line.contains("elapsed_us"));
    assert!(timed_line.contains("elapsed_us"));
    let json = Json::parse(timed_line.lines().next().unwrap()).unwrap();
    assert!(json.get("elapsed_us").and_then(Json::as_f64).unwrap() >= 0.0);
}

#[test]
fn spans_record_duration_histograms() {
    let obs = Obs::builder().build();
    for _ in 0..8 {
        let _span = rt::span!(obs, "train");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let snapshot = obs.snapshot();
    assert_eq!(snapshot.len(), 1);
    let (name, value) = &snapshot[0];
    assert_eq!(name, "span.train_s");
    let rt::obs::MetricValue::Histogram(h) = value else {
        panic!("span metric is not a histogram");
    };
    assert_eq!(h.count, 8);
    assert!(h.sum >= 8.0 * 0.002, "sum {} too small", h.sum);
    assert!(h.p50 >= 0.001, "p50 {} below sleep floor", h.p50);
    assert!(h.p99 >= h.p50);
}

#[test]
fn histogram_quantiles_track_known_distribution() {
    let obs = Obs::builder().build();
    let h = obs.histogram("latency_s");
    // 100 observations: 1ms .. 100ms. True p50 = 50ms, p90 = 90ms,
    // p99 = 99ms; log-scale buckets are exact to within one 2^(1/4)
    // bucket, i.e. a factor of at most 2^(1/8) ≈ 1.09 either way.
    for i in 1..=100 {
        h.record(i as f64 * 1e-3);
    }
    let s = h.summary();
    assert_eq!(s.count, 100);
    assert!((s.sum - 5.050).abs() < 1e-9);
    let within = |got: f64, want: f64| (got / want).log2().abs() <= 0.125 + 1e-9;
    assert!(within(s.p50, 0.050), "p50 {} vs 50ms", s.p50);
    assert!(within(s.p90, 0.090), "p90 {} vs 90ms", s.p90);
    assert!(within(s.p99, 0.099), "p99 {} vs 99ms", s.p99);
    assert!((s.mean() - 0.0505).abs() < 1e-9);
}

#[test]
fn counters_are_race_free_across_scoped_threads() {
    let obs = Obs::builder().build();
    let counter = obs.counter("engine.models_evaluated");
    let hist = obs.histogram("eval_time_s");
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(((t * PER_THREAD + i) % 97 + 1) as f64 * 1e-6);
                }
            });
        }
    });
    assert_eq!(counter.get(), (THREADS * PER_THREAD) as u64);
    assert_eq!(hist.summary().count, (THREADS * PER_THREAD) as u64);
}

#[test]
fn ring_sink_is_race_free_across_scoped_threads() {
    let (obs, ring) = ring_obs(Level::Trace, 64);
    std::thread::scope(|scope| {
        for worker in 0..4usize {
            let obs = obs.clone();
            scope.spawn(move || {
                for i in 0..1000usize {
                    rt::trace!(obs, "tick", worker = worker, i = i);
                }
            });
        }
    });
    // The ring kept the most recent 64 of 4000 events, all intact.
    let events = ring.snapshot();
    assert_eq!(events.len(), 64);
    for e in events {
        assert_eq!(e.name, "tick");
        assert_eq!(e.fields.len(), 2);
    }
}

#[test]
fn stderr_sink_pretty_format_is_single_line() {
    let sink = StderrSink::new(Level::Info);
    assert_eq!(sink.min_level(), Level::Info);
    let event = Event {
        level: Level::Warn,
        target: "ecad_core::engine",
        name: "infeasible",
        fields: vec![
            ("reason", Value::Str("device-fit".into())),
            ("id", Value::U64(3)),
        ],
        elapsed_s: None,
    };
    let pretty = event.pretty();
    assert!(!pretty.contains('\n'));
    assert!(pretty.contains("warn"));
    assert!(pretty.contains("ecad_core::engine"));
    assert!(pretty.contains("reason=device-fit"));
    assert!(pretty.contains("id=3"));
}

#[test]
fn jsonl_append_continues_sequence_numbers() {
    let dir = std::env::temp_dir().join("ecad-rt-obs-append");
    std::fs::create_dir_all(&dir).unwrap();
    let interrupted = dir.join(format!("interrupted-{}.jsonl", std::process::id()));
    let uninterrupted = dir.join(format!("uninterrupted-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&interrupted);
    let _ = std::fs::remove_file(&uninterrupted);

    // One sink writes all six events; the other is torn down after
    // three and replaced by an append-mode sink on the same path.
    let events: Vec<(u64, &str)> = (0..6u64).map(|i| (i, "tick")).collect();

    {
        let obs = Obs::builder()
            .sink(JsonlSink::create(Level::Debug, &uninterrupted).unwrap())
            .build();
        for (i, name) in &events {
            rt::info!(obs, name, i = *i);
        }
        obs.flush();
    }
    {
        let obs = Obs::builder()
            .sink(JsonlSink::create(Level::Debug, &interrupted).unwrap())
            .build();
        for (i, name) in &events[..3] {
            rt::info!(obs, name, i = *i);
        }
        obs.flush();
    }
    {
        let obs = Obs::builder()
            .sink(JsonlSink::append(Level::Debug, &interrupted).unwrap())
            .build();
        for (i, name) in &events[3..] {
            rt::info!(obs, name, i = *i);
        }
        obs.flush();
    }

    let a = std::fs::read_to_string(&interrupted).unwrap();
    let b = std::fs::read_to_string(&uninterrupted).unwrap();
    assert_eq!(a, b, "append-mode sink must continue seq numbers exactly");
    for (line_no, line) in a.lines().enumerate() {
        let json = Json::parse(line).unwrap();
        assert_eq!(json.get("seq").and_then(Json::as_f64), Some(line_no as f64));
    }

    // Appending to a missing file starts from seq 0.
    let fresh = dir.join(format!("fresh-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&fresh);
    {
        let obs = Obs::builder()
            .sink(JsonlSink::append(Level::Debug, &fresh).unwrap())
            .build();
        rt::info!(obs, "first");
        obs.flush();
    }
    let text = std::fs::read_to_string(&fresh).unwrap();
    let json = Json::parse(text.lines().next().unwrap()).unwrap();
    assert_eq!(json.get("seq").and_then(Json::as_f64), Some(0.0));

    let _ = std::fs::remove_file(&interrupted);
    let _ = std::fs::remove_file(&uninterrupted);
    let _ = std::fs::remove_file(&fresh);
}
