//! Property tests for `rt::sync::channel::Receiver::recv_timeout` /
//! `recv_deadline`: queued messages always beat the clock, timeouts
//! never masquerade as disconnects, disconnects always win over
//! arbitrarily long timeouts, and timeout-vs-delivery races resolve to
//! one of exactly two legal outcomes. Runs on `rt::check`.

use rt::prop_assert;
use rt::sync::channel::{self, RecvTimeoutError};
use std::thread;
use std::time::{Duration, Instant};

rt::prop! {
    #![cases(48)]

    /// Pre-queued messages are drained in FIFO order by `recv_timeout`
    /// even with a zero-length timeout, and only then does the clock
    /// matter: with the sender alive the verdict is `Timeout`, never
    /// `Disconnected`.
    fn queued_messages_beat_the_clock(n in 0usize..20) {
        let (tx, rx) = channel::unbounded();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        for i in 0..n {
            prop_assert!(rx.recv_timeout(Duration::ZERO) == Ok(i));
        }
        prop_assert!(
            rx.recv_timeout(Duration::from_micros(100)) == Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
    }

    /// Once every sender is gone, the remaining queue drains and then
    /// `recv_timeout` reports `Disconnected` promptly — it does not sit
    /// out an arbitrarily long timeout first.
    fn disconnect_wins_over_long_timeout(sent in 0usize..8) {
        let (tx, rx) = channel::unbounded();
        for i in 0..sent {
            tx.send(i).unwrap();
        }
        drop(tx);
        for i in 0..sent {
            prop_assert!(rx.recv_timeout(Duration::from_secs(3600)) == Ok(i));
        }
        let start = Instant::now();
        prop_assert!(
            rx.recv_timeout(Duration::from_secs(3600)) == Err(RecvTimeoutError::Disconnected)
        );
        prop_assert!(start.elapsed() < Duration::from_secs(60));
    }

    /// A sender racing the deadline: the receiver sees either the value
    /// or a clean `Timeout` — never `Disconnected` (the sender outlives
    /// the wait), never a wrong value, and a timeout verdict implies the
    /// deadline really passed.
    fn timeout_vs_delivery_race(delay_us in 0u64..300, timeout_us in 1u64..300) {
        let (tx, rx) = channel::unbounded();
        let (done_tx, done_rx) = channel::unbounded();
        let sender = thread::spawn(move || {
            thread::sleep(Duration::from_micros(delay_us));
            let _ = tx.send(42u8);
            // Hold the sender alive until the receiver has its verdict,
            // so `Disconnected` is impossible by construction.
            let _ = done_rx.recv();
        });
        let start = Instant::now();
        let got = rx.recv_timeout(Duration::from_micros(timeout_us));
        let waited = start.elapsed();
        done_tx.send(()).unwrap();
        sender.join().unwrap();
        match got {
            Ok(v) => prop_assert!(v == 42),
            Err(RecvTimeoutError::Timeout) => {
                prop_assert!(waited >= Duration::from_micros(timeout_us));
                // The message, though late, is still in the queue.
                prop_assert!(rx.recv_timeout(Duration::from_secs(10)) == Ok(42));
            }
            Err(RecvTimeoutError::Disconnected) => prop_assert!(false),
        }
    }

    /// `recv_deadline` with a deadline already in the past is a
    /// non-blocking drain: it yields queued values one by one, then
    /// times out instantly while the sender lives.
    fn past_deadline_is_try_recv(n in 0usize..6) {
        let (tx, rx) = channel::unbounded();
        for i in 0..n {
            tx.send(i).unwrap();
        }
        let past = Instant::now() - Duration::from_millis(5);
        for i in 0..n {
            prop_assert!(rx.recv_deadline(past) == Ok(i));
        }
        prop_assert!(rx.recv_deadline(past) == Err(RecvTimeoutError::Timeout));
        drop(tx);
    }
}
