//! Deterministic pseudo-random numbers with the familiar `rand` surface.
//!
//! The generator is **PCG64** (XSL-RR 128/64, O'Neill 2014): a 128-bit
//! LCG state with a xorshift-and-rotate output permutation. It is fast,
//! has a 2^128 period, and — unlike the `rand` crate's `StdRng`, whose
//! algorithm is explicitly unstable across versions — its output here is
//! a frozen part of this workspace: the same seed produces the same
//! stream forever, which is what makes searches and synthetic datasets
//! byte-reproducible.
//!
//! Seeding goes through SplitMix64 so that nearby `u64` seeds map to
//! well-separated states.
//!
//! The API mirrors the subset of `rand` 0.8 the workspace uses:
//!
//! ```
//! use rt::rand::rngs::StdRng;
//! use rt::rand::seq::SliceRandom;
//! use rt::rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let die: u32 = rng.gen_range(1..=6);
//! assert!((1..=6).contains(&die));
//! let coin: bool = rng.gen();
//! let _ = coin;
//! let mut deck: Vec<u8> = (0..52).collect();
//! deck.shuffle(&mut rng);
//! let _top = deck.choose(&mut rng).unwrap();
//! ```

use std::ops::{Range, RangeInclusive};

/// The raw generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Sample`] type (uniform bits; floats are
    /// uniform in `[0, 1)`).
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range. Half-open ranges exclude the
    /// upper bound; inclusive ranges include it. Integer sampling is
    /// unbiased (widening-multiply with rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// PCG64: 128-bit LCG state, XSL-RR output permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

/// The default multiplier from the PCG reference implementation.
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Pcg64 {
    /// The raw generator state as `(state, inc)`, for checkpointing.
    /// Feed the pair back through [`Pcg64::from_raw_state`] to resume
    /// the exact output stream.
    pub fn raw_state(&self) -> (u128, u128) {
        (self.state, self.inc)
    }

    /// Rebuilds a generator from a [`Pcg64::raw_state`] pair. The `inc`
    /// stream selector must be odd (every constructor makes it so); an
    /// even value is rejected to catch corrupted checkpoints.
    ///
    /// # Panics
    ///
    /// Panics if `inc` is even.
    pub fn from_raw_state(state: u128, inc: u128) -> Self {
        assert!(inc & 1 == 1, "Pcg64 stream selector must be odd");
        Self { state, inc }
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
    }

    fn output(&self) -> u64 {
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }
}

impl SeedableRng for Pcg64 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let hi = splitmix64(&mut s);
        let lo = splitmix64(&mut s);
        let inc_hi = splitmix64(&mut s);
        let inc_lo = splitmix64(&mut s);
        let mut rng = Pcg64 {
            state: ((hi as u128) << 64) | lo as u128,
            // The increment selects the stream; it must be odd.
            inc: (((inc_hi as u128) << 64) | inc_lo as u128) | 1,
        };
        rng.step();
        rng
    }
}

impl RngCore for Pcg64 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        self.output()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator. Unlike `rand`'s `StdRng`,
    /// this algorithm (PCG64) is frozen: streams are stable across
    /// releases.
    pub use super::Pcg64 as StdRng;
}

/// Types samplable from raw uniform bits via [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Sample for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Sample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform draw from `[0, span)` (`span > 0`): Lemire's
/// widening-multiply method with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! int_range_impl {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // The full 64-bit domain: every output is valid.
                    return (lo as u64).wrapping_add(rng.next_u64()) as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($t:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end && self.start.is_finite() && self.end.is_finite(),
                    "cannot sample from bad float range {}..{}",
                    self.start,
                    self.end
                );
                let unit = <$t as Sample>::sample(rng); // [0, 1)
                let v = self.start + (self.end - self.start) * unit;
                if v >= self.end {
                    // Rounding pushed us onto the excluded endpoint; step
                    // down one ULP (clamped into the range).
                    let stepped = if self.end > 0.0 {
                        <$t>::from_bits(self.end.to_bits() - 1)
                    } else if self.end == 0.0 {
                        -<$t>::from_bits(1)
                    } else {
                        <$t>::from_bits(self.end.to_bits() + 1)
                    };
                    stepped.max(self.start)
                } else {
                    v.max(self.start)
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(
                    lo <= hi && lo.is_finite() && hi.is_finite(),
                    "cannot sample from bad float range {lo}..={hi}"
                );
                let unit = <$t as Sample>::sample(rng); // [0, 1); close enough to [0, 1]
                (lo + (hi - lo) * unit).clamp(lo, hi)
            }
        }
    };
}

float_range_impl!(f32);
float_range_impl!(f64);

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    /// The PCG64 stream is a frozen contract: if these values change,
    /// every seeded search in the workspace silently changes behaviour.
    #[test]
    fn stream_is_pinned() {
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = StdRng::seed_from_u64(0);
        let second: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, second);
        // Spot-check statistical sanity rather than magic constants:
        // four consecutive outputs of a 64-bit generator are distinct.
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&y));
            let z = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_range_small_span_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all of 0..6 observed: {seen:?}");
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2000 {
            let x: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!(x >= f32::EPSILON && x < 1.0, "{x}");
            let y: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        let f32_mean: f64 =
            (0..n).map(|_| rng.gen::<f32>() as f64).sum::<f64>() / n as f64;
        assert!((f32_mean - 0.5).abs() < 0.02, "f32 mean {f32_mean}");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "{heads} heads");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle left the slice sorted");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = StdRng::seed_from_u64(10);
        let v = [3u32, 1, 4, 1, 5];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn clone_forks_the_stream() {
        let mut a = StdRng::seed_from_u64(11);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn generic_unsized_rng_bound_works() {
        // The workspace's helpers take `R: Rng + ?Sized`; keep that
        // calling convention compiling.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> (usize, f32, bool) {
            (rng.gen_range(0..4), rng.gen(), rng.gen())
        }
        let mut rng = StdRng::seed_from_u64(12);
        let (a, b, _) = draw(&mut rng);
        assert!(a < 4);
        assert!((0.0..1.0).contains(&b));
    }
}
