//! Structured tracing and metrics for the ECAD stack.
//!
//! The paper's master "orchestrates the evaluation process" across
//! simulation, hardware-database, and physical workers (§III-A) and
//! reports Table III run statistics; this module is the telemetry
//! substrate that makes those numbers observable *while* a search runs
//! instead of only after it finishes. Like the rest of `rt`, it has no
//! external dependencies.
//!
//! Three coordinated pieces:
//!
//! * **Events** — leveled ([`Level`]) records with a static event name
//!   and `key = value` fields ([`Value`]), emitted through the
//!   [`crate::trace!`] / [`crate::debug!`] / [`crate::info!`] /
//!   [`crate::warn!`] macros and routed to pluggable [`Sink`]s: a
//!   stderr pretty-printer ([`StderrSink`]), a JSONL writer built on
//!   [`crate::json`] ([`JsonlSink`]), an in-memory ring buffer for
//!   tests ([`RingSink`]), and a drainable capture buffer
//!   ([`CaptureSink`]) the cluster mode uses to ship evaluation-time
//!   events across the wire ([`Event::to_wire_json`]) for replay on
//!   the coordinator ([`Obs::emit_event`]).
//! * **Spans** — [`crate::span!`] returns a guard that measures the
//!   enclosed scope with a monotonic clock; on drop it records the
//!   duration into a log-scale histogram named `span.<name>_s` and
//!   emits a close event. Wall-clock durations never enter the JSONL
//!   stream by default, so traces stay byte-identical across same-seed
//!   runs.
//! * **Metrics** — a registry of named counters, gauges, and log-scale
//!   histograms (p50/p90/p99) whose hot paths are single atomic
//!   operations, safe across the engine's `std::thread::scope` worker
//!   pool.
//!
//! The [`Obs`] handle ties the three together. A disabled handle
//! ([`Obs::disabled`]) costs one branch per call site, so library code
//! can be instrumented unconditionally.
//!
//! ## JSONL schema
//!
//! [`JsonlSink`] writes one compact JSON object per line:
//!
//! ```text
//! {"seq":3,"level":"debug","target":"ecad_core::engine","event":"cache_hit","fields":{"key":"9a…"}}
//! ```
//!
//! `seq` is a per-sink monotonic sequence number assigned under the
//! writer lock, so line order always matches `seq` order. `fields`
//! preserves emission order. Timing (`elapsed_us`, an integer count of
//! microseconds) appears only when the sink was built
//! [`JsonlSink::with_timing`], because wall-clock values are inherently
//! non-deterministic.
//!
//! ## Profiling
//!
//! Attaching a [`crate::prof::Profiler`] via [`ObsBuilder::profiler`]
//! upgrades spans from flat histograms to a hierarchical call tree:
//! every [`Obs::span`] enters the profiler, and close events gain a
//! deterministic `path` field (the semicolon-joined ancestry, e.g.
//! `engine;evaluate;train`). Under the deterministic `ticks` clock
//! they also gain `span_us` (integer microseconds, byte-stable); the
//! wall clock keeps durations out of the trace — for the same reason
//! `elapsed_us` is opt-in — so profiled runs stay reproducible.
//! Without an attached profiler, spans behave exactly as before.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;
use crate::prof::{ProfGuard, Profiler};

// ---------------------------------------------------------------------------
// Levels
// ---------------------------------------------------------------------------

/// Event severity, ordered from most verbose to most important.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Fine-grained detail: tournament picks, replacement victims.
    Trace,
    /// Per-step decisions: breeding, cache hits, submissions.
    Debug,
    /// Run milestones: search start/end, evaluated candidates.
    Info,
    /// Surprising but survivable: infeasible candidates, worker panics.
    Warn,
}

impl Level {
    /// Stable lowercase name (`"trace"`, `"debug"`, `"info"`, `"warn"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }

    /// Parses a level name; `None` for anything unrecognized.
    pub fn parse(text: &str) -> Option<Level> {
        match text {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// ---------------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------------

/// A structured field value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean field.
    Bool(bool),
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A floating-point field.
    F64(f64),
    /// A string field.
    Str(String),
}

impl Value {
    /// Converts to a JSON value. Integers above 2^53 would lose
    /// precision as JSON numbers, so they degrade to decimal strings.
    pub fn to_json(&self) -> Json {
        const EXACT: u64 = 1 << 53;
        match self {
            Value::Bool(b) => Json::Bool(*b),
            Value::U64(x) if *x <= EXACT => Json::Number(*x as f64),
            Value::U64(x) => Json::String(x.to_string()),
            Value::I64(x) if x.unsigned_abs() <= EXACT => Json::Number(*x as f64),
            Value::I64(x) => Json::String(x.to_string()),
            Value::F64(x) => Json::Number(*x),
            Value::Str(s) => Json::String(s.clone()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(x) => write!(f, "{x}"),
            Value::I64(x) => write!(f, "{x}"),
            Value::F64(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(x: $t) -> Value {
                Value::$variant(x as $cast)
            }
        }
    )*};
}

value_from! {
    bool => Bool as bool,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Value {
        Value::Str(s.clone())
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Emitting module (`module_path!()` at the call site).
    pub target: &'static str,
    /// Stable event kind, e.g. `"cache_hit"`.
    pub name: &'static str,
    /// `key = value` fields in emission order.
    pub fields: Vec<(&'static str, Value)>,
    /// Wall-clock duration for span-close events. Kept outside
    /// `fields` so deterministic sinks can drop it wholesale.
    pub elapsed_s: Option<f64>,
}

impl Event {
    /// The JSONL representation. `seq` is the sink's line number;
    /// timing is included only when `include_timing` is set.
    pub fn to_json(&self, seq: u64, include_timing: bool) -> Json {
        let mut fields = Json::object();
        for (k, v) in &self.fields {
            fields = fields.insert(k, v.to_json());
        }
        let mut obj = Json::object()
            .insert("seq", seq)
            .insert("level", self.level.as_str())
            .insert("target", self.target)
            .insert("event", self.name)
            .insert("fields", fields);
        if include_timing {
            if let Some(s) = self.elapsed_s {
                // Whole microseconds: rt::json renders integral f64s
                // without a fraction, so the field is a JSON integer.
                obj = obj.insert("elapsed_us", (s * 1e6).round());
            }
        }
        obj
    }

    /// A human-oriented single-line rendering for the stderr sink.
    pub fn pretty(&self) -> String {
        let mut out = format!("{:>5} {} {}", self.level, self.target, self.name);
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        if let Some(s) = self.elapsed_s {
            out.push_str(&format!(" ({:.3} ms)", s * 1e3));
        }
        out
    }

    /// The self-contained wire representation the cluster mode uses to
    /// ship evaluation-time events from a worker to the coordinator.
    /// Unlike [`Event::to_json`] it carries no sink `seq`, encodes
    /// fields as an ordered `[key, value]` list (duplicates and order
    /// survive), and always includes `elapsed_s` when present so the
    /// receiving side decides what to surface.
    pub fn to_wire_json(&self) -> Json {
        let fields = Json::Array(
            self.fields
                .iter()
                .map(|(k, v)| Json::Array(vec![Json::String((*k).to_string()), v.to_json()]))
                .collect(),
        );
        let mut obj = Json::object()
            .insert("level", self.level.as_str())
            .insert("target", self.target)
            .insert("event", self.name)
            .insert("fields", fields);
        if let Some(s) = self.elapsed_s {
            obj = obj.insert("elapsed_s", s);
        }
        obj
    }

    /// Decodes a [`Event::to_wire_json`] document. `target`, `name`,
    /// and field keys are interned ([`intern`]) to recover the
    /// `&'static str` lifetimes.
    ///
    /// JSON numbers do not distinguish the integer [`Value`] variants,
    /// so integral in-range numbers decode canonically (non-negative →
    /// [`Value::U64`], negative → [`Value::I64`], everything else →
    /// [`Value::F64`]). The canonical variant renders byte-identically
    /// through [`Value::to_json`] and `Display`, so JSONL traces and
    /// stderr lines are unaffected by a wire round trip.
    ///
    /// # Errors
    ///
    /// A description of the first structural problem found.
    pub fn from_wire_json(doc: &Json) -> Result<Event, String> {
        let level_s = doc
            .get("level")
            .and_then(Json::as_str)
            .ok_or("wire event has no level")?;
        let level = Level::parse(level_s).ok_or_else(|| format!("bad level {level_s:?}"))?;
        let target = intern(
            doc.get("target")
                .and_then(Json::as_str)
                .ok_or("wire event has no target")?,
        );
        let name = intern(
            doc.get("event")
                .and_then(Json::as_str)
                .ok_or("wire event has no event name")?,
        );
        let raw_fields = doc
            .get("fields")
            .and_then(Json::as_array)
            .ok_or("wire event has no fields list")?;
        let mut fields = Vec::with_capacity(raw_fields.len());
        for pair in raw_fields {
            let kv = pair.as_array().ok_or("wire field is not a [key, value] pair")?;
            if kv.len() != 2 {
                return Err("wire field is not a [key, value] pair".to_string());
            }
            let key = intern(kv[0].as_str().ok_or("wire field key is not a string")?);
            fields.push((key, value_from_wire(&kv[1])?));
        }
        let elapsed_s = doc.get("elapsed_s").and_then(Json::as_f64);
        Ok(Event {
            level,
            target,
            name,
            fields,
            elapsed_s,
        })
    }
}

/// Decodes one wire field value; see [`Event::from_wire_json`] for the
/// canonicalization rules.
fn value_from_wire(v: &Json) -> Result<Value, String> {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    match v {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::String(s) => Ok(Value::Str(s.clone())),
        Json::Number(x) if x.fract() == 0.0 && x.abs() <= EXACT => {
            if *x < 0.0 {
                Ok(Value::I64(*x as i64))
            } else {
                Ok(Value::U64(*x as u64))
            }
        }
        Json::Number(x) => Ok(Value::F64(*x)),
        other => Err(format!("wire field value {other} is not a scalar")),
    }
}

/// Interns a string, returning a `&'static str` that compares equal to
/// every other interning of the same text. Used to reconstruct
/// [`Event`]s (whose `target`/`name`/keys are `&'static str`) from
/// their wire form; the backing memory is deliberately leaked, which is
/// fine for the small closed set of event names a protocol uses.
pub fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut guard = pool.lock().expect("intern pool");
    if let Some(existing) = guard.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    guard.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Where events go. Implementations must be thread-safe: the engine's
/// worker pool records from multiple threads.
pub trait Sink: Send + Sync {
    /// Least severe level this sink wants; events below it are skipped.
    fn min_level(&self) -> Level {
        Level::Trace
    }

    /// Records one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Pretty-prints events to stderr — the human-facing sink the CLI's
/// `--log-level` flag controls. Never writes to stdout, which is
/// reserved for report output.
#[derive(Debug)]
pub struct StderrSink {
    min: Level,
}

impl StderrSink {
    /// A stderr sink that shows `min` and above.
    pub fn new(min: Level) -> Self {
        Self { min }
    }
}

impl Sink for StderrSink {
    fn min_level(&self) -> Level {
        self.min
    }

    fn record(&self, event: &Event) {
        eprintln!("{}", event.pretty());
    }
}

struct JsonlInner {
    out: Box<dyn Write + Send>,
    seq: u64,
}

/// Writes one compact JSON object per event (JSONL) through
/// [`crate::json`], so traces are machine-parsable with the same
/// parser that reads them back. Sequence numbers are assigned under
/// the writer lock, keeping line order and `seq` order identical.
pub struct JsonlSink {
    min: Level,
    include_timing: bool,
    inner: Mutex<JsonlInner>,
}

impl JsonlSink {
    /// A JSONL sink over an arbitrary writer (tests use an in-memory
    /// buffer), recording `min` and above, timing excluded.
    pub fn to_writer(min: Level, out: Box<dyn Write + Send>) -> Self {
        Self {
            min,
            include_timing: false,
            inner: Mutex::new(JsonlInner { out, seq: 0 }),
        }
    }

    /// A JSONL sink writing to the file at `path` (truncating any
    /// existing file), recording `min` and above.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(min: Level, path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::to_writer(
            min,
            Box::new(std::io::BufWriter::new(file)),
        ))
    }

    /// A JSONL sink appending to the file at `path`, with sequence
    /// numbers continuing from the file's existing line count. A
    /// resumed run writing through this sink extends the interrupted
    /// trace exactly as the uninterrupted run would have — same lines,
    /// same `seq` values.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be read or
    /// opened for append.
    pub fn append(min: Level, path: &std::path::Path) -> std::io::Result<Self> {
        let existing = match std::fs::read_to_string(path) {
            Ok(text) => text.lines().count() as u64,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e),
        };
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            min,
            include_timing: false,
            inner: Mutex::new(JsonlInner {
                out: Box::new(std::io::BufWriter::new(file)),
                seq: existing,
            }),
        })
    }

    /// Includes span timing (`elapsed_us`) in the output. Off by
    /// default: wall-clock values make traces non-reproducible.
    pub fn with_timing(mut self, include: bool) -> Self {
        self.include_timing = include;
        self
    }

    /// Flushes buffered lines to the underlying writer. Also runs on
    /// drop, so short-lived (or panicking) processes don't truncate
    /// the tail of a trace; call it explicitly before reading the file
    /// back while the sink is still alive.
    pub fn flush(&self) {
        let _ = self.inner.lock().expect("jsonl sink poisoned").out.flush();
    }
}

impl Sink for JsonlSink {
    fn min_level(&self) -> Level {
        self.min
    }

    fn record(&self, event: &Event) {
        let mut inner = self.inner.lock().expect("jsonl sink poisoned");
        let seq = inner.seq;
        inner.seq += 1;
        let line = event.to_json(seq, self.include_timing).to_string();
        let _ = writeln!(inner.out, "{line}");
    }

    fn flush(&self) {
        JsonlSink::flush(self);
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A fixed-capacity in-memory ring buffer of events, built for tests
/// and post-mortem inspection. Slot reservation is a single wait-free
/// `fetch_add`; each slot carries its own lock, contended only when
/// the buffer wraps onto a slot mid-write.
pub struct RingSink {
    min: Level,
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicUsize,
}

impl RingSink {
    /// A ring of `capacity` slots recording `min` and above.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(min: Level, capacity: usize) -> Arc<Self> {
        assert!(capacity > 0, "ring buffer needs at least one slot");
        Arc::new(Self {
            min,
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        })
    }

    /// Events recorded so far (saturating at capacity once wrapped).
    pub fn len(&self) -> usize {
        self.cursor.load(Ordering::Acquire).min(self.slots.len())
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.cursor.load(Ordering::Acquire) == 0
    }

    /// The buffered events, oldest first. After a wrap, only the most
    /// recent `capacity` events survive.
    pub fn snapshot(&self) -> Vec<Event> {
        let total = self.cursor.load(Ordering::Acquire);
        let cap = self.slots.len();
        let start = total.saturating_sub(cap);
        (start..total)
            .filter_map(|i| self.slots[i % cap].lock().expect("ring slot").clone())
            .collect()
    }
}

impl Sink for RingSink {
    fn min_level(&self) -> Level {
        self.min
    }

    fn record(&self, event: &Event) {
        let i = self.cursor.fetch_add(1, Ordering::AcqRel) % self.slots.len();
        *self.slots[i].lock().expect("ring slot") = Some(event.clone());
    }
}

impl Sink for Arc<RingSink> {
    fn min_level(&self) -> Level {
        self.as_ref().min_level()
    }

    fn record(&self, event: &Event) {
        self.as_ref().record(event);
    }
}

/// An unbounded drainable buffer of events. The cluster worker runs
/// each evaluation under an [`Obs`] carrying one of these, then
/// [`CaptureSink::take`]s what the evaluation emitted and ships it to
/// the coordinator for replay — so a remote evaluation's trace lines
/// come out byte-identical to a local one's.
pub struct CaptureSink {
    min: Level,
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// A capture buffer recording `min` and above. Use [`Level::Trace`]
    /// to forward everything and let the receiving side's sinks filter.
    pub fn new(min: Level) -> Arc<Self> {
        Arc::new(Self {
            min,
            events: Mutex::new(Vec::new()),
        })
    }

    /// Drains and returns everything captured so far, in emission
    /// order.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("capture buffer"))
    }

    /// How many events are currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().expect("capture buffer").len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for Arc<CaptureSink> {
    fn min_level(&self) -> Level {
        self.min
    }

    fn record(&self, event: &Event) {
        self.events
            .lock()
            .expect("capture buffer")
            .push(event.clone());
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Atomically adds to an f64 stored as bits in an `AtomicU64`.
fn atomic_f64_add(cell: &AtomicU64, v: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = f64::from_bits(current) + v;
        match cell.compare_exchange_weak(
            current,
            next.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

/// A monotonically increasing counter. Handles are cheap clones of one
/// shared atomic; increments are single `fetch_add`s.
#[derive(Clone)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (zero on a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point gauge.
#[derive(Clone)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (zero on a disabled handle).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |cell| f64::from_bits(cell.load(Ordering::Relaxed)))
    }
}

/// Buckets per octave (factor-of-two range) in [`Histogram`]. Four
/// sub-buckets bound any reported quantile within ±9 % of the true
/// value — plenty for p50/p90/p99 timing summaries.
const HIST_SUB: f64 = 4.0;
/// Smallest representable histogram value: one nanosecond when values
/// are seconds. With 256 buckets the range tops out near 1.8e10.
const HIST_MIN: f64 = 1e-9;
/// Bucket count; values above the range clamp into the last bucket.
const HIST_BUCKETS: usize = 256;

/// A log-scale histogram: fixed buckets at ratio 2^(1/4), recorded
/// with one atomic increment, summarized as p50/p90/p99. Designed for
/// durations in seconds but accepts any positive value.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    fn bucket_index(v: f64) -> usize {
        if !(v > HIST_MIN) {
            return 0;
        }
        (((v / HIST_MIN).log2() * HIST_SUB) as usize).min(HIST_BUCKETS - 1)
    }

    /// Geometric midpoint of bucket `i`, the value quantiles report.
    fn bucket_value(i: usize) -> f64 {
        HIST_MIN * 2f64.powf((i as f64 + 0.5) / HIST_SUB)
    }

    /// Records one observation. Non-finite and non-positive values
    /// land in the lowest bucket and contribute zero to the sum.
    pub fn record(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0..=1.0`), accurate to one bucket
    /// (±9 %). Zero when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(HIST_BUCKETS - 1)
    }

    /// A point-in-time summary.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// Frozen histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Arithmetic mean (exact, from the true sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A histogram handle, cheap to clone and record through.
#[derive(Clone)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// Records one observation.
    pub fn record(&self, v: f64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Current summary (empty on a disabled handle).
    pub fn summary(&self) -> HistogramSummary {
        self.0.as_ref().map_or(
            HistogramSummary {
                count: 0,
                sum: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
            },
            |h| h.summary(),
        )
    }

    /// The `q`-quantile (zero on a disabled or empty handle) — the
    /// hook for summaries beyond the fixed p50/p90/p99 set, e.g. the
    /// per-worker p95 latency the cluster health endpoint reports.
    pub fn quantile(&self, q: f64) -> f64 {
        self.0.as_ref().map_or(0.0, |h| h.quantile(q))
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count())
    }
}

// ---------------------------------------------------------------------------
// Labeled metric keys
// ---------------------------------------------------------------------------

/// Escapes a label value per the Prometheus text-format spec:
/// backslash, double-quote, and newline must be written as `\\`, `\"`,
/// and `\n` inside the quoted value.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Builds the canonical registry key for a labeled metric:
/// `name{k1="v1",k2="v2"}` with labels sorted by key and values
/// escaped. The registry stays a flat string map — a label set is just
/// part of the key — so snapshots remain sorted and deterministic, and
/// the Prometheus renderer can split the key back apart at the first
/// `{`. With no labels the key is the bare name.
pub fn labeled_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::with_capacity(name.len() + 16 * sorted.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push_str("\"");
    }
    out.push('}');
    out
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time metric reading, as returned by [`Obs::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// The registry of named metrics. Registration takes a lock once per
/// handle; recording through a handle is lock-free.
#[derive(Default)]
pub struct Metrics {
    registry: Mutex<HashMap<String, Metric>>,
}

impl Metrics {
    fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut reg = self.registry.lock().expect("metrics registry");
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut reg = self.registry.lock().expect("metrics registry");
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut reg = self.registry.lock().expect("metrics registry");
        match reg
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let reg = self.registry.lock().expect("metrics registry");
        let mut out: Vec<(String, MetricValue)> = reg
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                    Metric::Gauge(g) => {
                        MetricValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                    }
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

// ---------------------------------------------------------------------------
// The Obs handle
// ---------------------------------------------------------------------------

struct ObsInner {
    level: Level,
    sinks: Vec<Box<dyn Sink>>,
    metrics: Metrics,
    profiler: Option<Profiler>,
    /// Span-name → histogram handle, so opening a span never formats a
    /// metric name or takes the registry lock after first use.
    span_hists: Mutex<HashMap<&'static str, HistogramHandle>>,
}

/// The observability handle threaded through the stack: a level gate,
/// a set of sinks, and a metrics registry behind one `Arc`. Cloning is
/// a reference-count bump; the default handle is disabled and costs a
/// single branch per instrumentation site.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Obs(disabled)"),
            Some(inner) => write!(
                f,
                "Obs(level={}, sinks={})",
                inner.level,
                inner.sinks.len()
            ),
        }
    }
}

impl Obs {
    /// The no-op handle: no sinks, no metrics, near-zero cost.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Starts building an enabled handle.
    pub fn builder() -> ObsBuilder {
        ObsBuilder {
            sinks: Vec::new(),
            profiler: None,
        }
    }

    /// Whether anything is listening at all (sinks or metrics).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether an event at `level` would reach at least one sink.
    /// Instrumentation sites gate field construction on this.
    pub fn is_enabled(&self, level: Level) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => !inner.sinks.is_empty() && level >= inner.level,
        }
    }

    /// Emits an event; prefer the [`crate::info!`]-family macros which
    /// gate on [`Obs::is_enabled`] before building fields.
    pub fn emit(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) {
        self.dispatch(Event {
            level,
            target,
            name,
            fields,
            elapsed_s: None,
        });
    }

    /// Dispatches a fully-formed event, `elapsed_s` included — the
    /// replay path for events that crossed the wire from a cluster
    /// worker ([`Event::from_wire_json`]). Replay feeds sinks only: it
    /// does not touch span histograms or the profiler, so metrics
    /// describe local work while traces describe the whole search.
    pub fn emit_event(&self, event: Event) {
        self.dispatch(event);
    }

    fn dispatch(&self, event: Event) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                if event.level >= sink.min_level() {
                    sink.record(&event);
                }
            }
        }
    }

    /// Opens a span: the returned guard measures until drop, records
    /// the duration into the histogram `span.<name>_s`, and emits a
    /// close event at `level`. Prefer the [`crate::span!`] macro.
    pub fn span(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> Span {
        self.span_inner(level, target, name, fields, true)
    }

    /// Opens a span that never enters the attached profiler, even when
    /// one is installed. Proxy threads that merely *wait* on remote
    /// work use this: letting them read the deterministic ticks clock
    /// would interleave racily with the master thread's reads and break
    /// profile byte-identity, and their wall time is network wait, not
    /// attribution-worthy work. Histogram recording and close events
    /// behave exactly like [`Obs::span`] (minus the `path`/`span_us`
    /// fields only profiled spans carry).
    pub fn span_detached(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> Span {
        self.span_inner(level, target, name, fields, false)
    }

    fn span_inner(
        &self,
        level: Level,
        target: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
        profiled: bool,
    ) -> Span {
        let Some(inner) = &self.inner else {
            return Span { state: None };
        };
        let hist = {
            let mut cache = inner.span_hists.lock().expect("span hist cache");
            cache
                .entry(name)
                .or_insert_with(|| {
                    HistogramHandle(Some(inner.metrics.histogram(&format!("span.{name}_s"))))
                })
                .clone()
        };
        let prof = if profiled {
            inner.profiler.as_ref().map(|p| p.enter(name))
        } else {
            None
        };
        Span {
            state: Some(SpanState {
                obs: self.clone(),
                level,
                target,
                name,
                fields,
                hist,
                prof,
                start: Instant::now(),
            }),
        }
    }

    /// The attached profiler, if any — worker threads install it so
    /// kernel-level [`crate::prof_span!`] sites record under the same
    /// tree as the `Obs` spans above them.
    pub fn profiler(&self) -> Option<Profiler> {
        self.inner.as_ref().and_then(|i| i.profiler.clone())
    }

    /// A counter handle for `name` (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|i| i.metrics.counter(name)))
    }

    /// A gauge handle for `name` (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|i| i.metrics.gauge(name)))
    }

    /// A histogram handle for `name` (no-op when disabled).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.inner.as_ref().map(|i| i.metrics.histogram(name)))
    }

    /// A counter handle for `name` with a label set (e.g.
    /// `worker="host:port"`). Each distinct label-value combination is
    /// its own time series; see [`labeled_key`] for the key encoding.
    ///
    /// # Panics
    ///
    /// Panics if the labeled key is already registered as a different
    /// kind.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&labeled_key(name, labels))
    }

    /// A gauge handle for `name` with a label set.
    ///
    /// # Panics
    ///
    /// Panics if the labeled key is already registered as a different
    /// kind.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&labeled_key(name, labels))
    }

    /// A histogram handle for `name` with a label set.
    ///
    /// # Panics
    ///
    /// Panics if the labeled key is already registered as a different
    /// kind.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> HistogramHandle {
        self.histogram(&labeled_key(name, labels))
    }

    /// All registered metrics, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.metrics.snapshot())
    }

    /// Flushes every sink (call before reading a trace file back).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            for sink in &inner.sinks {
                sink.flush();
            }
        }
    }
}

/// Builder for an enabled [`Obs`] handle.
pub struct ObsBuilder {
    sinks: Vec<Box<dyn Sink>>,
    profiler: Option<Profiler>,
}

impl ObsBuilder {
    /// Adds a sink.
    pub fn sink(mut self, sink: impl Sink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Attaches a hierarchical profiler: every span enters it, and
    /// close events carry a `path` field (plus `span_us` under the
    /// deterministic ticks clock — see the module docs' Profiling
    /// section).
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Finishes the handle. The effective level is the most verbose
    /// of the sinks' levels (metrics work even with zero sinks).
    pub fn build(self) -> Obs {
        let level = self
            .sinks
            .iter()
            .map(|s| s.min_level())
            .min()
            .unwrap_or(Level::Warn);
        Obs {
            inner: Some(Arc::new(ObsInner {
                level,
                sinks: self.sinks,
                metrics: Metrics::default(),
                profiler: self.profiler,
                span_hists: Mutex::new(HashMap::new()),
            })),
        }
    }
}

struct SpanState {
    obs: Obs,
    level: Level,
    target: &'static str,
    name: &'static str,
    fields: Vec<(&'static str, Value)>,
    hist: HistogramHandle,
    prof: Option<ProfGuard>,
    start: Instant,
}

/// A live span; dropping it records the elapsed time. See
/// [`Obs::span`].
pub struct Span {
    state: Option<SpanState>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let elapsed = state.start.elapsed().as_secs_f64();
            state.hist.record(elapsed);
            let enabled = state.obs.is_enabled(state.level);
            // Close the profiler span either way; build the path only
            // when a close event will carry it.
            let prof_close = match state.prof {
                Some(guard) if enabled => guard.finish(),
                _ => None,
            };
            if enabled {
                let mut fields = state.fields;
                if let Some((ns, path)) = prof_close {
                    fields.push(("path", Value::Str(path)));
                    // Wall-clock durations would make the JSONL trace
                    // non-reproducible (the sink strips `elapsed_us`
                    // for the same reason), so only the deterministic
                    // ticks clock puts timings into the trace.
                    let deterministic = state
                        .obs
                        .profiler()
                        .is_some_and(|p| p.clock() == crate::prof::ClockKind::Ticks);
                    if deterministic {
                        fields.push(("span_us", Value::U64(ns / 1_000)));
                    }
                }
                state.obs.dispatch(Event {
                    level: state.level,
                    target: state.target,
                    name: state.name,
                    fields,
                    elapsed_s: Some(elapsed),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Summary rendering
// ---------------------------------------------------------------------------

/// Renders a metrics snapshot as an aligned text table — the CLI's
/// `--metrics` end-of-run summary. Histogram quantiles print in
/// milliseconds.
pub fn summary_table(entries: &[(String, MetricValue)]) -> String {
    let mut rows: Vec<[String; 6]> = vec![[
        "metric".into(),
        "count".into(),
        "total".into(),
        "p50 (ms)".into(),
        "p90 (ms)".into(),
        "p99 (ms)".into(),
    ]];
    let ms = |s: f64| format!("{:.3}", s * 1e3);
    for (name, value) in entries {
        rows.push(match value {
            MetricValue::Counter(c) => [
                name.clone(),
                c.to_string(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ],
            MetricValue::Gauge(g) => [
                name.clone(),
                String::new(),
                format!("{g}"),
                String::new(),
                String::new(),
                String::new(),
            ],
            MetricValue::Histogram(h) => [
                name.clone(),
                h.count.to_string(),
                format!("{:.3}s", h.sum),
                ms(h.p50),
                ms(h.p90),
                ms(h.p99),
            ],
        });
    }
    let mut widths = [0usize; 6];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Right-align numeric columns, left-align names.
            if i == 0 {
                line.push_str(cell);
                line.extend(std::iter::repeat_n(' ', w - cell.len()));
            } else {
                line.extend(std::iter::repeat_n(' ', w - cell.len()));
                line.push_str(cell);
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Emits a structured event at an explicit [`Level`]; the
/// `trace!`/`debug!`/`info!`/`warn!` macros are the usual front ends.
#[macro_export]
macro_rules! obs_event {
    ($obs:expr, $level:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {{
        let obs_ref = &$obs;
        if obs_ref.is_enabled($level) {
            obs_ref.emit(
                $level,
                module_path!(),
                $name,
                vec![$((stringify!($k), $crate::obs::Value::from($v))),*],
            );
        }
    }};
}

/// Emits a [`Level::Trace`] event: `rt::trace!(obs, "tournament", winner = i)`.
#[macro_export]
macro_rules! trace {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::obs_event!($obs, $crate::obs::Level::Trace, $name $(, $k = $v)*)
    };
}

/// Emits a [`Level::Debug`] event: `rt::debug!(obs, "cache_hit", key = k)`.
#[macro_export]
macro_rules! debug {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::obs_event!($obs, $crate::obs::Level::Debug, $name $(, $k = $v)*)
    };
}

/// Emits a [`Level::Info`] event: `rt::info!(obs, "search_start", seed = s)`.
#[macro_export]
macro_rules! info {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::obs_event!($obs, $crate::obs::Level::Info, $name $(, $k = $v)*)
    };
}

/// Emits a [`Level::Warn`] event: `rt::warn!(obs, "infeasible", reason = r)`.
#[macro_export]
macro_rules! warn {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::obs_event!($obs, $crate::obs::Level::Warn, $name $(, $k = $v)*)
    };
}

/// Opens a span: `let _span = rt::span!(obs, "train", worker = id);`
/// On drop, the elapsed time lands in the `span.train_s` histogram and
/// a `train` close event is emitted at [`Level::Debug`].
#[macro_export]
macro_rules! span {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $obs.span(
            $crate::obs::Level::Debug,
            module_path!(),
            $name,
            vec![$((stringify!($k), $crate::obs::Value::from($v))),*],
        )
    };
}

/// Like [`span!`] but never enters the attached profiler — see
/// [`Obs::span_detached`](crate::obs::Obs::span_detached) for when a
/// proxy thread needs this.
#[macro_export]
macro_rules! span_detached {
    ($obs:expr, $name:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $obs.span_detached(
            $crate::obs::Level::Debug,
            module_path!(),
            $name,
            vec![$((stringify!($k), $crate::obs::Value::from($v))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_named() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        for l in [Level::Trace, Level::Debug, Level::Info, Level::Warn] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn disabled_obs_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_active());
        assert!(!obs.is_enabled(Level::Warn));
        crate::warn!(obs, "nothing", x = 1);
        let c = obs.counter("a");
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(obs.snapshot().is_empty());
        let _span = crate::span!(obs, "noop");
    }

    #[test]
    fn event_json_stringifies_large_integers() {
        let big = u64::MAX;
        let e = Event {
            level: Level::Info,
            target: "t",
            name: "n",
            fields: vec![("k", Value::U64(big))],
            elapsed_s: None,
        };
        let json = e.to_json(0, false);
        let field = json.get("fields").and_then(|f| f.get("k")).unwrap();
        assert_eq!(field.as_str(), Some(big.to_string().as_str()));
    }

    #[test]
    fn wire_codec_round_trips_and_canonicalizes() {
        let e = Event {
            level: Level::Warn,
            target: "ecad_core::workers",
            name: "infeasible",
            fields: vec![
                ("stage", Value::Str("train".to_string())),
                ("count", Value::U64(7)),
                ("delta", Value::F64(-0.25)),
                ("neg", Value::I64(-3)),
                ("ok", Value::Bool(false)),
                ("big", Value::U64(u64::MAX)),
                ("whole", Value::F64(2.0)),
            ],
            elapsed_s: Some(0.125),
        };
        let wire = e.to_wire_json();
        // The wire form itself survives a JSON text round trip.
        let reparsed = Json::parse(&wire.to_string()).unwrap();
        let back = Event::from_wire_json(&reparsed).unwrap();
        assert_eq!(back.level, e.level);
        assert_eq!(back.target, e.target);
        assert_eq!(back.name, e.name);
        assert_eq!(back.elapsed_s, e.elapsed_s);
        // Interning recovers pointer-stable statics.
        assert_eq!(back.fields.len(), e.fields.len());
        // Variants may canonicalize (F64(2.0) → U64(2), big U64 →
        // Str), but the rendered JSONL bytes must be unchanged.
        assert_eq!(
            back.to_json(9, false).to_string(),
            e.to_json(9, false).to_string()
        );
        assert_eq!(back.pretty(), e.pretty());
    }

    #[test]
    fn wire_codec_rejects_malformed_documents() {
        for bad in [
            Json::object(),
            Json::object().insert("level", "nope").insert("target", "t"),
            Json::object()
                .insert("level", "info")
                .insert("target", "t")
                .insert("event", "e")
                .insert("fields", Json::Array(vec![Json::Number(1.0)])),
            Json::object()
                .insert("level", "info")
                .insert("target", "t")
                .insert("event", "e")
                .insert(
                    "fields",
                    Json::Array(vec![Json::Array(vec![
                        Json::String("k".to_string()),
                        Json::Array(vec![]),
                    ])]),
                ),
        ] {
            assert!(Event::from_wire_json(&bad).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn capture_sink_drains_in_order_and_replays() {
        let capture = CaptureSink::new(Level::Trace);
        let obs = Obs::builder().sink(Arc::clone(&capture)).build();
        crate::warn!(obs, "first", a = 1);
        crate::debug!(obs, "second", b = "x");
        assert_eq!(capture.len(), 2);
        let events = capture.take();
        assert!(capture.is_empty());
        assert_eq!(events[0].name, "first");
        assert_eq!(events[1].name, "second");
        // Replaying through another Obs reaches its sinks verbatim.
        let ring = RingSink::new(Level::Trace, 8);
        let replay = Obs::builder().sink(Arc::clone(&ring)).build();
        for ev in events {
            replay.emit_event(ev);
        }
        let seen = ring.snapshot();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].name, "first");
        assert_eq!(seen[1].fields[0].1, Value::Str("x".to_string()));
    }

    #[test]
    fn intern_is_idempotent() {
        let a = intern("cluster-test-string");
        let b = intern("cluster-test-string");
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "cluster-test-string");
    }

    #[test]
    fn histogram_bucket_error_is_bounded() {
        // A bucket spans a 2^(1/4) ratio; its geometric midpoint is
        // within 2^(1/8) ≈ 9% of any member.
        for v in [1e-6, 3.7e-4, 0.42, 12.0] {
            let h = Histogram::new();
            h.record(v);
            let q = h.quantile(0.5);
            assert!((q / v).log2().abs() <= 0.5 / HIST_SUB + 1e-9, "{q} vs {v}");
        }
    }

    #[test]
    fn jsonl_sink_flushes_on_drop() {
        let dir = std::env::temp_dir().join(format!(
            "rt-obs-dropflush-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let obs = Obs::builder()
                .sink(JsonlSink::create(Level::Debug, &path).unwrap())
                .build();
            crate::info!(obs, "only_event", x = 1);
            // No explicit flush: dropping the Obs (and with it the
            // sink) must still land the buffered line on disk.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("only_event"));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Trace-schema pin: `elapsed_us` serializes as a JSON integer
    /// (whole microseconds), not a float.
    #[test]
    fn elapsed_us_is_integer_microseconds() {
        let e = Event {
            level: Level::Debug,
            target: "t",
            name: "train",
            fields: vec![],
            elapsed_s: Some(0.0015004),
        };
        let line = e.to_json(0, true).to_string();
        assert!(
            line.contains("\"elapsed_us\":1500"),
            "expected integer elapsed_us in {line}"
        );
        assert!(!line.contains("1500."), "float leaked into {line}");
        // Timing stays out entirely when the sink excludes it.
        assert!(!e.to_json(0, false).to_string().contains("elapsed_us"));
    }

    #[test]
    fn span_reuses_cached_histogram_handle() {
        let obs = Obs::builder().build();
        for _ in 0..3 {
            let _s = crate::span!(obs, "train");
        }
        let snap = obs.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, "span.train_s");
        match &snap[0].1 {
            MetricValue::Histogram(h) => assert_eq!(h.count, 3),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn span_with_profiler_emits_path_and_builds_tree() {
        use crate::prof::{ClockKind, TICK_NS};
        let ring = RingSink::new(Level::Debug, 16);
        let p = Profiler::new(ClockKind::Ticks);
        let obs = Obs::builder()
            .sink(Arc::clone(&ring))
            .profiler(p.clone())
            .build();
        {
            let _outer = crate::span!(obs, "evaluate");
            let _inner = crate::span!(obs, "train");
        }
        let events = ring.snapshot();
        let close = events.iter().find(|e| e.name == "train").unwrap();
        let field = |k: &str| {
            close
                .fields
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            field("path"),
            Some(Value::Str("engine;evaluate;train".into()))
        );
        assert_eq!(field("span_us"), Some(Value::U64(TICK_NS / 1_000)));
        let root = p.report();
        let train = root.find("train").unwrap();
        assert_eq!(train.calls, 1);
        assert!(root.find("evaluate").unwrap().total_ns >= train.total_ns);
    }

    #[test]
    fn wall_clock_profiler_emits_path_but_no_span_us() {
        use crate::prof::ClockKind;
        let ring = RingSink::new(Level::Debug, 16);
        let p = Profiler::new(ClockKind::Wall);
        let obs = Obs::builder()
            .sink(Arc::clone(&ring))
            .profiler(p.clone())
            .build();
        {
            let _s = crate::span!(obs, "train");
        }
        let close = ring.snapshot().pop().unwrap();
        assert!(close.fields.iter().any(|(k, _)| *k == "path"));
        // Wall durations must not leak into the trace; the profile
        // report still carries them.
        assert!(close.fields.iter().all(|(k, _)| *k != "span_us"));
        assert_eq!(p.report().find("train").unwrap().calls, 1);
    }

    #[test]
    fn span_without_profiler_has_no_path_field() {
        let ring = RingSink::new(Level::Debug, 16);
        let obs = Obs::builder().sink(Arc::clone(&ring)).build();
        {
            let _s = crate::span!(obs, "train");
        }
        let close = ring.snapshot().pop().unwrap();
        assert!(close.fields.iter().all(|(k, _)| *k != "path"));
        assert!(close.fields.iter().all(|(k, _)| *k != "span_us"));
    }

    #[test]
    fn gauge_round_trips() {
        let obs = Obs::builder().build();
        let g = obs.gauge("g");
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        assert_eq!(obs.snapshot(), vec![("g".to_string(), MetricValue::Gauge(2.5))]);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn metric_kind_conflict_panics() {
        let obs = Obs::builder().build();
        let _ = obs.gauge("x");
        let _ = obs.counter("x");
    }

    #[test]
    fn summary_table_renders_all_kinds() {
        let entries = vec![
            ("engine.cache_hits".to_string(), MetricValue::Counter(7)),
            ("pool.occupancy".to_string(), MetricValue::Gauge(0.5)),
            (
                "span.train_s".to_string(),
                MetricValue::Histogram(HistogramSummary {
                    count: 3,
                    sum: 0.006,
                    p50: 0.002,
                    p90: 0.002,
                    p99: 0.002,
                }),
            ),
        ];
        let table = summary_table(&entries);
        assert!(table.contains("engine.cache_hits"));
        assert!(table.contains("p99 (ms)"));
        assert!(table.contains("2.000"));
        for line in table.lines() {
            assert_eq!(line.trim_end(), line);
        }
    }
}
