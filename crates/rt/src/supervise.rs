//! Worker supervision: restartable worker slots with panic, stall, and
//! respawn accounting, plus a cooperative [`ShutdownFlag`].
//!
//! The engine's master/worker pool needs three guarantees a plain
//! `thread::scope` cannot give:
//!
//! 1. a worker whose body **panics** outside the per-job catch is
//!    restarted in place instead of silently shrinking the pool;
//! 2. a worker **stalled** inside a non-cooperative evaluation can be
//!    *abandoned*: the supervisor bumps the slot's generation counter
//!    and spawns a replacement thread, while the stuck thread notices
//!    its stale generation at the next loop boundary and exits;
//! 3. the master can map a timed-out job id back to the slot holding it
//!    via the **claim table** ([`SlotCtx::claim`] / [`SlotCtx::release`]).
//!
//! Abandonment requires *detached* threads: joining a truly hung thread
//! would block forever, so the supervisor never joins. Worker bodies
//! must therefore terminate on their own when their input channel
//! disconnects — exactly how the engine's workers already behave.
//!
//! ```
//! use rt::supervise::Supervisor;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let ran = Arc::new(AtomicU64::new(0));
//! let mut sup = Supervisor::new();
//! let flag = ran.clone();
//! sup.spawn(move |_ctx| {
//!     flag.fetch_add(1, Ordering::SeqCst);
//! });
//! while ran.load(Ordering::SeqCst) == 0 {
//!     std::thread::yield_now();
//! }
//! assert_eq!(sup.stats().panics, 0);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

/// A cooperative shutdown request shared between the driver (CLI /
/// signal handler) and long-running loops that should wind down at the
/// next safe boundary.
#[derive(Clone, Debug, Default)]
pub struct ShutdownFlag {
    requested: Arc<AtomicBool>,
}

impl ShutdownFlag {
    /// A fresh flag with no shutdown requested.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Loops holding a clone observe it via
    /// [`ShutdownFlag::is_requested`] at their next check.
    pub fn request(&self) {
        crate::sched::maybe_yield();
        self.requested.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested on any clone of this flag
    /// (or by an installed signal handler).
    pub fn is_requested(&self) -> bool {
        crate::sched::maybe_yield();
        self.requested.load(Ordering::Acquire) || signal::tripped()
    }

    /// Installs SIGINT/SIGTERM handlers that trip a process-global
    /// latch observed by **every** `ShutdownFlag`. No-op on non-unix
    /// platforms. Idempotent.
    pub fn install_termination_handler(&self) {
        signal::install();
    }
}

#[cfg(unix)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set from the signal handler; a store into an atomic is
    /// async-signal-safe.
    static TRIPPED: AtomicBool = AtomicBool::new(false);
    static INSTALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        /// libc's `signal(2)`; std already links libc on unix, so the
        /// symbol resolves without a crates.io dependency.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        TRIPPED.store(true, Ordering::Release);
    }

    pub fn tripped() -> bool {
        TRIPPED.load(Ordering::Acquire)
    }

    pub fn install() {
        if INSTALLED.swap(true, Ordering::AcqRel) {
            return;
        }
        // SAFETY: the handler only stores to an atomic, which is
        // async-signal-safe; `on_terminate` has the handler ABI.
        unsafe {
            signal(SIGINT, on_terminate as *const () as usize);
            signal(SIGTERM, on_terminate as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod signal {
    pub fn tripped() -> bool {
        false
    }

    pub fn install() {}
}

/// Counters describing everything the supervisor has seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Panics that escaped a slot body and were absorbed by the
    /// restart wrapper.
    pub panics: u64,
    /// Stalls reported by the driver via [`Supervisor::record_stall`].
    pub stalls: u64,
    /// Replacement threads launched via [`Supervisor::respawn`].
    pub respawns: u64,
}

/// Per-slot state shared between the supervisor and the slot's threads
/// (current plus any abandoned predecessors): the generation fence and
/// the claim table for one worker slot.
///
/// Public so the generation-fencing protocol can be model-checked under
/// [`crate::sched`] without spawning detached OS threads: a model
/// builds `SlotState`s directly and drives claim/release/respawn from
/// virtual threads. Every operation is a scheduling point under an
/// active model execution ([`crate::sched::maybe_yield`]), so the
/// explorer can interleave a stale worker's release with a respawn's
/// claim-clear — exactly the races the fence exists for.
#[derive(Debug, Default)]
pub struct SlotState {
    /// Bumped on every respawn; threads from older generations exit at
    /// their next [`SlotCtx::is_current`] check.
    generation: AtomicU64,
    /// Job id + 1 currently claimed by the slot's thread; 0 when idle.
    claim: AtomicU64,
}

impl SlotState {
    /// A fresh slot at generation 0 with no claim.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slot's current generation.
    pub fn generation(&self) -> u64 {
        crate::sched::maybe_yield();
        self.generation.load(Ordering::Acquire)
    }

    /// Whether a thread launched at `generation` is still the slot's
    /// active generation.
    pub fn is_current(&self, generation: u64) -> bool {
        crate::sched::maybe_yield();
        self.generation.load(Ordering::Acquire) == generation
    }

    /// Abandons the current generation (a respawn): bumps the fence
    /// and returns the new generation. The caller separately clears
    /// the claim via [`SlotState::clear_claim`] — the window between
    /// the two is a real protocol state the model checker explores.
    pub fn bump_generation(&self) -> u64 {
        crate::sched::maybe_yield();
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Clears the claim unconditionally (respawn path: the replacement
    /// must start from an idle slot).
    pub fn clear_claim(&self) {
        crate::sched::maybe_yield();
        self.claim.store(0, Ordering::Release);
    }

    /// Records that the slot is processing `job` (stored as `job + 1`;
    /// 0 means idle).
    pub fn claim(&self, job: u64) {
        crate::sched::maybe_yield();
        self.claim.store(job + 1, Ordering::Release);
    }

    /// Clears the claim on `job` if it is still held. A stale thread
    /// whose slot was respawned (and re-claimed) in the meantime
    /// leaves the newer claim untouched.
    pub fn release(&self, job: u64) {
        crate::sched::maybe_yield();
        let _ = self
            .claim
            .compare_exchange(job + 1, 0, Ordering::AcqRel, Ordering::Relaxed);
    }

    /// The job currently claimed by the slot, if any.
    pub fn claimed_job(&self) -> Option<u64> {
        crate::sched::maybe_yield();
        match self.claim.load(Ordering::Acquire) {
            0 => None,
            v => Some(v - 1),
        }
    }
}

struct StatsInner {
    panics: AtomicU64,
    stalls: AtomicU64,
    respawns: AtomicU64,
}

type SlotBody = Arc<dyn Fn(&SlotCtx) + Send + Sync + 'static>;

struct SlotEntry {
    shared: Arc<SlotState>,
    body: SlotBody,
}

/// A pool of restartable worker slots. Each [`Supervisor::spawn`] call
/// creates one slot running one detached thread; [`Supervisor::respawn`]
/// abandons a slot's current thread and starts a fresh one.
#[derive(Default)]
pub struct Supervisor {
    slots: Vec<SlotEntry>,
    stats: Arc<StatsInner>,
}

impl Default for StatsInner {
    fn default() -> Self {
        Self {
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
        }
    }
}

/// Handle a slot body receives: identifies the slot and generation the
/// body is running under, and exposes the claim table.
pub struct SlotCtx {
    slot: usize,
    generation: u64,
    shared: Arc<SlotState>,
}

impl SlotCtx {
    /// The slot index this body runs in.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The generation this body was launched as.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether this thread is still the slot's active generation. A
    /// body should check this at every loop boundary and return when it
    /// turns false — that is how an abandoned (respawned-over) thread
    /// winds down.
    pub fn is_current(&self) -> bool {
        self.shared.is_current(self.generation)
    }

    /// Records that this slot is now processing `job`, so the driver
    /// can map a timed-out job back to the slot holding it.
    pub fn claim(&self, job: u64) {
        self.shared.claim(job);
    }

    /// Clears this slot's claim on `job`. A stale thread whose slot was
    /// respawned (and re-claimed) in the meantime leaves the newer
    /// claim untouched.
    pub fn release(&self, job: u64) {
        self.shared.release(job);
    }
}

impl Supervisor {
    /// An empty supervisor; add slots with [`Supervisor::spawn`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots (not threads: an abandoned thread and its
    /// replacement share one slot).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Creates a new slot running `body` on a detached thread and
    /// returns its index. The body is retained so the slot can be
    /// respawned; if it panics it is restarted in the same thread (and
    /// the panic counted), and when it returns normally the thread
    /// ends.
    pub fn spawn<F>(&mut self, body: F) -> usize
    where
        F: Fn(&SlotCtx) + Send + Sync + 'static,
    {
        let idx = self.slots.len();
        self.slots.push(SlotEntry {
            shared: Arc::new(SlotState::new()),
            body: Arc::new(body),
        });
        self.launch(idx);
        idx
    }

    /// Abandons `slot`'s current thread and launches a replacement.
    /// The old thread is *not* interrupted — a stall means it cannot be
    /// — but its stale generation makes it exit at its next
    /// [`SlotCtx::is_current`] check, and any claim it still holds is
    /// cleared here so the fresh thread starts from an idle slot.
    pub fn respawn(&self, slot: usize) {
        let entry = &self.slots[slot];
        entry.shared.bump_generation();
        entry.shared.clear_claim();
        self.stats.respawns.fetch_add(1, Ordering::Relaxed);
        self.launch(slot);
    }

    /// Records a stall observed by the driver (a job deadline expired
    /// while a slot held its claim).
    pub fn record_stall(&self) {
        self.stats.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// The slot currently claiming `job`, if any. `None` means the job
    /// is still queued (no worker picked it up yet) or already released.
    pub fn claimed_slot(&self, job: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.shared.claimed_job() == Some(job))
    }

    /// A snapshot of the panic/stall/respawn counters.
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            panics: self.stats.panics.load(Ordering::Relaxed),
            stalls: self.stats.stalls.load(Ordering::Relaxed),
            respawns: self.stats.respawns.load(Ordering::Relaxed),
        }
    }

    fn launch(&self, idx: usize) {
        let shared = Arc::clone(&self.slots[idx].shared);
        let body = Arc::clone(&self.slots[idx].body);
        let stats = Arc::clone(&self.stats);
        let generation = shared.generation();
        let builder = thread::Builder::new().name(format!("rt-worker-{idx}"));
        let handle = builder.spawn(move || {
            let ctx = SlotCtx {
                slot: idx,
                generation,
                shared,
            };
            loop {
                match catch_unwind(AssertUnwindSafe(|| (body)(&ctx))) {
                    // Normal return: the body drained its input; done.
                    Ok(()) => break,
                    Err(_) => {
                        stats.panics.fetch_add(1, Ordering::Relaxed);
                        // Restart in place — unless this thread was
                        // already abandoned by a respawn.
                        if !ctx.is_current() {
                            break;
                        }
                    }
                }
            }
        });
        // Detached on purpose: joining a hung thread would block
        // forever, and abandoned threads exit on their own.
        drop(handle.expect("spawn supervised worker"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::channel;
    use std::time::Duration;

    fn wait_until(mut cond: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(
                std::time::Instant::now() < deadline,
                "condition not reached within 10s"
            );
            thread::yield_now();
        }
    }

    #[test]
    fn body_runs_and_returns() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        let mut sup = Supervisor::new();
        sup.spawn(move |_ctx| {
            for v in rx.iter() {
                let _ = out_tx.send(v * 10);
            }
        });
        tx.send(4).unwrap();
        drop(tx);
        assert_eq!(out_rx.recv(), Ok(40));
        assert_eq!(sup.stats(), SupervisorStats::default());
        // The supervisor retains the body (and its captured sender) for
        // respawns; dropping it lets the disconnect become observable.
        drop(sup);
        assert!(out_rx.recv().is_err(), "body exits when input disconnects");
    }

    #[test]
    fn panicking_body_restarts_in_place() {
        let (tx, rx) = channel::unbounded::<u32>();
        let (out_tx, out_rx) = channel::unbounded::<u32>();
        let mut sup = Supervisor::new();
        sup.spawn(move |_ctx| {
            for v in rx.iter() {
                if v == 13 {
                    panic!("injected");
                }
                let _ = out_tx.send(v);
            }
        });
        tx.send(1).unwrap();
        tx.send(13).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        let mut got = vec![out_rx.recv().unwrap(), out_rx.recv().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "messages around the panic survive");
        assert_eq!(sup.stats().panics, 1);
        assert_eq!(sup.stats().respawns, 0);
    }

    #[test]
    fn respawn_replaces_a_stalled_thread() {
        let (tx, rx) = channel::unbounded::<u64>();
        let (out_tx, out_rx) = channel::unbounded::<u64>();
        let (stall_tx, stall_rx) = channel::unbounded::<()>();
        let mut sup = Supervisor::new();
        sup.spawn(move |ctx| {
            for job in rx.iter() {
                ctx.claim(job);
                if job == 7 && ctx.generation() == 0 {
                    // Simulate a stall: block until the test releases
                    // us, then observe we were abandoned.
                    let _ = stall_rx.recv();
                }
                ctx.release(job);
                if !ctx.is_current() {
                    return;
                }
                let _ = out_tx.send(job);
            }
        });
        tx.send(7).unwrap();
        wait_until(|| sup.claimed_slot(7).is_some());
        assert_eq!(sup.claimed_slot(7), Some(0));

        // Master notices the stall: record it and respawn the slot.
        sup.record_stall();
        sup.respawn(0);
        assert_eq!(sup.claimed_slot(7), None, "respawn clears the claim");

        // The replacement thread processes new work.
        tx.send(8).unwrap();
        assert_eq!(out_rx.recv(), Ok(8));

        // Release the stalled thread; it exits without emitting its job.
        stall_tx.send(()).unwrap();
        drop(tx);
        let stats = sup.stats();
        assert_eq!((stats.stalls, stats.respawns), (1, 1));
        drop(sup);
        assert_eq!(out_rx.recv().ok(), None, "stale thread exits silently");
    }

    #[test]
    fn shutdown_flag_propagates_to_clones() {
        let flag = ShutdownFlag::new();
        let clone = flag.clone();
        assert!(!clone.is_requested());
        flag.request();
        assert!(clone.is_requested());
    }
}
