//! Deterministic cooperative scheduler and interleaving explorer — a
//! loom-lite model checker for the engine's concurrency protocols.
//!
//! A *model* is a closure run under [`check`]. Inside it, concurrency is
//! expressed with [`spawn`]ed **virtual threads**: real OS threads that
//! hand a single execution baton between each other, so exactly one
//! runs at any instant and every context switch happens at an explicit
//! *scheduling point* ([`yield_now`], blocking operations, spawns).
//! Each switch consumes one entry from a **choice stream**; so does
//! every call to [`choice`], the model-level nondeterminism hook.
//!
//! [`check`] explores the space of choice streams two ways:
//!
//! 1. **Bounded exhaustive DFS** — replay the recorded stream of the
//!    previous execution, backtracking on the last decision that still
//!    has unexplored alternatives. Small models are covered completely
//!    (the report says so via [`CheckReport::exhausted`]).
//! 2. **Seeded random sampling** — for models too big to exhaust, a
//!    PCG64-driven tail picks uniformly at every decision.
//!
//! Either way, a failing execution (model panic, deadlock, or step
//! budget) is reported as a [`Failure`] carrying the full choice stream
//! as a [`Schedule`] token such as `v1:1/3,0/2,2/4`. Feeding that token
//! to [`replay`] re-runs the *exact* interleaving — byte-identical
//! message, no search.
//!
//! Time inside a model is **virtual**: a monotonic tick counter
//! (1 tick = 1 nanosecond) that only advances when every virtual
//! thread is blocked, jumping straight to the earliest pending
//! deadline. A `recv_timeout` in a model therefore costs zero
//! wall-clock time, and timeout/no-timeout races become explicit
//! scheduling decisions the explorer can drive both ways.
//!
//! The blocking primitives in [`crate::sync`] (channels, `Mutex`,
//! `Condvar`, [`crate::sync::backend::Signal`]) detect an active
//! scheduler via [`active`] and route their waits through it, so model
//! code uses the very same types the production engine uses.
//!
//! # Panics and failures
//!
//! A panic on any virtual thread fails the whole execution: the
//! scheduler records the message, poisons the execution, and unwinds
//! every other virtual thread with a private abort payload. Deadlock
//! (all threads blocked, no pending timeout) and step-budget exhaustion
//! (a livelock proxy) are failures too.
//!
//! ```
//! use rt::sched::{self, CheckOptions};
//!
//! let report = sched::check(CheckOptions::default(), || {
//!     let h = sched::spawn(|| 21 * 2);
//!     assert_eq!(h.join(), 42);
//! });
//! assert!(report.failure.is_none());
//! assert!(report.exhausted);
//! ```

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::{Arc, Condvar, Mutex};

use crate::rand::{Pcg64, Rng, SeedableRng};

/// Virtual-thread id within one execution. The root model closure is
/// always tid 0; spawns allocate sequentially.
pub type Tid = usize;

/// One recorded scheduling decision: `(chosen, out_of)`.
type Choice = (usize, usize);

/// Panic payload used to unwind virtual threads when an execution is
/// being torn down. Never escapes the scheduler.
struct Abort;

const ADDR_TAG: u8 = 0;
const JOIN_TAG: u8 = 1;
const SLEEP_TAG: u8 = 2;

/// What a blocked thread is waiting on. `(tag, key)` — tag 0 is an
/// address-keyed wait queue (sync primitives), tag 1 a join on a tid,
/// tag 2 a pure sleep.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct WaitKey(u8, usize);

struct BlockInfo {
    deadline: Option<u64>,
    key: WaitKey,
}

struct ExecState {
    /// The one virtual thread allowed to run right now.
    current: Option<Tid>,
    /// Ready threads in deterministic (push) order.
    runnable: Vec<Tid>,
    /// Blocked threads; `BTreeMap` so iteration order is deterministic.
    blocked: BTreeMap<Tid, BlockInfo>,
    /// Wait queues, keyed by what the blocked threads wait on.
    queues: HashMap<WaitKey, Vec<Tid>>,
    /// Threads woken by a deadline rather than a notify.
    timed_out: HashSet<Tid>,
    finished: HashSet<Tid>,
    /// Real threads that have not yet exited their wrapper.
    live: usize,
    /// Virtual clock in ticks (1 tick = 1ns).
    now: u64,
    steps: u64,
    max_steps: u64,
    /// Replay prefix: decisions forced from a prior recording.
    prefix: Vec<Choice>,
    pos: usize,
    /// Random tail for decisions beyond the prefix; `None` picks 0.
    rng: Option<Pcg64>,
    recorded: Vec<Choice>,
    failure: Option<String>,
    /// Set on failure: every parked thread unwinds with [`Abort`].
    aborting: bool,
    next_tid: Tid,
}

struct Exec {
    state: Mutex<ExecState>,
    cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

#[derive(Clone)]
struct Ctx {
    exec: Arc<Exec>,
    tid: Tid,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Whether the calling thread is a virtual thread inside a [`check`] /
/// [`replay`] execution. The `rt::sync` primitives branch on this to
/// route blocking through the scheduler.
pub fn active() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

fn ctx() -> Ctx {
    CTX.with(|c| {
        c.borrow()
            .clone()
            .expect("rt::sched primitive used outside a model execution")
    })
}

fn fail(st: &mut ExecState, msg: String) {
    if st.failure.is_none() {
        st.failure = Some(msg);
    }
    st.aborting = true;
}

fn bump_step(st: &mut ExecState) {
    st.steps += 1;
    if st.steps > st.max_steps {
        let max = st.max_steps;
        fail(
            st,
            format!("step budget exceeded ({max} scheduling steps): possible livelock"),
        );
    }
}

/// Consumes one decision from the choice stream: forced by the replay
/// prefix, drawn from the random tail, or 0. Decisions with a single
/// alternative are not recorded — they cannot be explored differently.
fn decide(st: &mut ExecState, n: usize) -> usize {
    debug_assert!(n >= 1);
    if n <= 1 {
        return 0;
    }
    let c = if st.pos < st.prefix.len() {
        st.prefix[st.pos].0.min(n - 1)
    } else if let Some(rng) = st.rng.as_mut() {
        rng.gen_range(0..n)
    } else {
        0
    };
    st.pos += 1;
    st.recorded.push((c, n));
    c
}

/// Removes `tid` from whatever wait queue it is registered on.
fn unregister(st: &mut ExecState, tid: Tid, key: WaitKey) {
    if let Some(q) = st.queues.get_mut(&key) {
        q.retain(|&t| t != tid);
        if q.is_empty() {
            st.queues.remove(&key);
        }
    }
}

fn wake_key_locked(st: &mut ExecState, key: WaitKey) {
    if let Some(q) = st.queues.remove(&key) {
        for tid in q {
            if st.blocked.remove(&tid).is_some() {
                st.runnable.push(tid);
            }
        }
    }
}

fn wake_one_locked(st: &mut ExecState, key: WaitKey) {
    if let Some(q) = st.queues.get_mut(&key) {
        if !q.is_empty() {
            let tid = q.remove(0);
            if q.is_empty() {
                st.queues.remove(&key);
            }
            if st.blocked.remove(&tid).is_some() {
                st.runnable.push(tid);
            }
        }
    }
}

/// Picks the next `current` thread, advancing virtual time past blocked
/// deadlines when nothing is runnable and declaring deadlock when there
/// is no deadline to advance to.
fn schedule_next(st: &mut ExecState) {
    bump_step(st);
    loop {
        if st.aborting {
            st.current = None;
            return;
        }
        if !st.runnable.is_empty() {
            let c = decide(st, st.runnable.len());
            if st.aborting {
                st.current = None;
                return;
            }
            let tid = st.runnable.remove(c);
            st.current = Some(tid);
            return;
        }
        if st.blocked.is_empty() {
            // Execution drained: nothing runnable, nothing blocked.
            st.current = None;
            return;
        }
        // All live threads are blocked. Jump virtual time to the
        // earliest deadline; with no deadline pending this is deadlock.
        let next = st
            .blocked
            .iter()
            .filter_map(|(tid, b)| b.deadline.map(|d| (d, *tid)))
            .min();
        match next {
            None => {
                let tids: Vec<Tid> = st.blocked.keys().copied().collect();
                let now = st.now;
                fail(
                    st,
                    format!("deadlock: vthreads {tids:?} blocked with no pending timeout at t={now}ns"),
                );
                st.current = None;
                return;
            }
            Some((deadline, _)) => {
                st.now = st.now.max(deadline);
                let due: Vec<(Tid, WaitKey)> = st
                    .blocked
                    .iter()
                    .filter(|(_, b)| b.deadline.is_some_and(|d| d <= st.now))
                    .map(|(tid, b)| (*tid, b.key))
                    .collect();
                for (tid, key) in due {
                    st.blocked.remove(&tid);
                    unregister(st, tid, key);
                    st.timed_out.insert(tid);
                    st.runnable.push(tid);
                }
            }
        }
    }
}

enum Disp {
    Yield,
    Block { deadline: Option<u64>, key: WaitKey },
}

/// Gives up the baton with disposition `disp` and parks until this
/// thread is scheduled again. Returns `true` if the wake was a timeout.
fn transition(c: &Ctx, disp: Disp) -> bool {
    let me = c.tid;
    let mut st = c.exec.state.lock().expect("sched state");
    debug_assert_eq!(st.current, Some(me));
    match disp {
        Disp::Yield => st.runnable.push(me),
        Disp::Block { deadline, key } => {
            st.blocked.insert(me, BlockInfo { deadline, key });
            st.queues.entry(key).or_default().push(me);
        }
    }
    schedule_next(&mut st);
    c.exec.cv.notify_all();
    loop {
        if st.current == Some(me) {
            return st.timed_out.remove(&me);
        }
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st = c.exec.cv.wait(st).expect("sched state");
    }
}

/// A scheduling point: the explorer may switch to any runnable thread
/// (including staying on this one).
pub fn yield_now() {
    let c = ctx();
    let _ = transition(&c, Disp::Yield);
}

/// [`yield_now`] when a model execution is active, no-op otherwise.
/// Production code sprinkles this at protocol-relevant boundaries so
/// the same code paths become explorable under [`check`].
pub fn maybe_yield() {
    if active() {
        yield_now();
    }
}

/// Model-level nondeterminism: returns a value in `0..n`, recorded in
/// the schedule and explored like any scheduling decision. Not itself
/// a scheduling point (the thread keeps running).
///
/// # Panics
///
/// Panics if `n == 0` or when called outside a model execution.
pub fn choice(n: usize) -> usize {
    assert!(n > 0, "sched::choice requires at least one alternative");
    let c = ctx();
    let mut st = c.exec.state.lock().expect("sched state");
    bump_step(&mut st);
    let v = decide(&mut st, n);
    if st.aborting {
        drop(st);
        c.exec.cv.notify_all();
        std::panic::panic_any(Abort);
    }
    v
}

/// The virtual clock, in ticks (1 tick = 1ns).
pub fn now() -> u64 {
    let c = ctx();
    let st = c.exec.state.lock().expect("sched state");
    st.now
}

/// Blocks this virtual thread for `ticks` of virtual time. Other
/// threads run; the clock advances only when everyone is blocked.
pub fn sleep(ticks: u64) {
    let c = ctx();
    let deadline = {
        let st = c.exec.state.lock().expect("sched state");
        st.now.saturating_add(ticks)
    };
    let key = WaitKey(SLEEP_TAG, c.tid);
    let _ = transition(&c, Disp::Block { deadline: Some(deadline), key });
}

/// Blocks the calling virtual thread on the wait queue for `addr`,
/// optionally with an absolute virtual-time deadline. Returns `false`
/// if the wake was a timeout rather than a [`wake_addr`] /
/// [`wake_one_addr`]. Used by the `rt::sync` backend.
pub fn block_on_addr(addr: usize, deadline: Option<u64>) -> bool {
    let c = ctx();
    let key = WaitKey(ADDR_TAG, addr);
    !transition(&c, Disp::Block { deadline, key })
}

/// Wakes every virtual thread blocked on `addr`. Not a scheduling
/// point: the caller keeps running.
pub fn wake_addr(addr: usize) {
    let c = ctx();
    let mut st = c.exec.state.lock().expect("sched state");
    wake_key_locked(&mut st, WaitKey(ADDR_TAG, addr));
}

/// Wakes the longest-waiting virtual thread blocked on `addr`, if any.
pub fn wake_one_addr(addr: usize) {
    let c = ctx();
    let mut st = c.exec.state.lock().expect("sched state");
    wake_one_locked(&mut st, WaitKey(ADDR_TAG, addr));
}

/// Owned handle to a spawned virtual thread; see [`spawn`].
pub struct JoinHandle<T> {
    tid: Tid,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// The spawned thread's tid (tids start at 0 for the model root).
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// Blocks until the thread finishes and returns its value. A panic
    /// on the joined thread fails the whole execution, so unlike
    /// `std::thread`, `join` never returns an error.
    pub fn join(self) -> T {
        let c = ctx();
        loop {
            let done = {
                let st = c.exec.state.lock().expect("sched state");
                st.finished.contains(&self.tid)
            };
            if done {
                break;
            }
            // No other vthread can run between the check above and the
            // block below — we hold the baton until `transition` parks.
            let key = WaitKey(JOIN_TAG, self.tid);
            let _ = transition(&c, Disp::Block { deadline: None, key });
        }
        self.result
            .lock()
            .expect("join result")
            .take()
            .expect("vthread finished without storing a result")
    }
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Body shared by the model root and every spawned virtual thread:
/// park until scheduled, run, then hand the baton on and account for
/// this thread's exit.
fn vthread_main(exec: Arc<Exec>, tid: Tid, f: impl FnOnce()) {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            exec: Arc::clone(&exec),
            tid,
        })
    });
    let run = {
        let mut st = exec.state.lock().expect("sched state");
        loop {
            if st.current == Some(tid) {
                break true;
            }
            if st.aborting {
                break false;
            }
            st = exec.cv.wait(st).expect("sched state");
        }
    };
    let outcome = if run {
        Some(catch_unwind(AssertUnwindSafe(f)))
    } else {
        None
    };
    {
        let mut st = exec.state.lock().expect("sched state");
        if let Some(Err(p)) = &outcome {
            if !p.is::<Abort>() {
                let msg = panic_message(p.as_ref());
                fail(&mut st, format!("vthread {tid} panicked: {msg}"));
            }
        }
        st.finished.insert(tid);
        wake_key_locked(&mut st, WaitKey(JOIN_TAG, tid));
        if st.current == Some(tid) {
            schedule_next(&mut st);
        }
        st.live -= 1;
    }
    exec.cv.notify_all();
    CTX.with(|c| *c.borrow_mut() = None);
}

/// Spawns a new virtual thread running `f`. A scheduling point: the
/// explorer may run the child before the parent continues.
///
/// # Panics
///
/// Panics when called outside a model execution.
pub fn spawn<T, F>(f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let c = ctx();
    let exec = Arc::clone(&c.exec);
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let tid = {
        let mut st = exec.state.lock().expect("sched state");
        if st.aborting {
            drop(st);
            std::panic::panic_any(Abort);
        }
        let tid = st.next_tid;
        st.next_tid += 1;
        st.live += 1;
        st.runnable.push(tid);
        tid
    };
    let exec2 = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name(format!("vthread-{tid}"))
        .spawn(move || {
            vthread_main(exec2, tid, move || {
                *slot.lock().expect("result slot") = Some(f());
            });
        })
        .expect("spawn vthread");
    exec.handles.lock().expect("handles").push(handle);
    yield_now();
    JoinHandle { tid, result }
}

// ---------------------------------------------------------------------
// Schedules, failures, exploration
// ---------------------------------------------------------------------

/// A fully recorded choice stream — enough to replay one execution
/// byte-identically. Serializes as `v1:chosen/total,chosen/total,...`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Schedule {
    choices: Vec<Choice>,
}

impl Schedule {
    /// Number of recorded (multi-alternative) decisions.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the execution hit no multi-alternative decision at all.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("v1:")?;
        for (i, (c, t)) in self.choices.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{c}/{t}")?;
        }
        Ok(())
    }
}

/// Error from parsing a [`Schedule`] token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError(String);

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid schedule token: {}", self.0)
    }
}

impl std::error::Error for ParseScheduleError {}

impl FromStr for Schedule {
    type Err = ParseScheduleError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix("v1:")
            .ok_or_else(|| ParseScheduleError(format!("missing v1: prefix in {s:?}")))?;
        let mut choices = Vec::new();
        if body.is_empty() {
            return Ok(Schedule { choices });
        }
        for part in body.split(',') {
            let (c, t) = part
                .split_once('/')
                .ok_or_else(|| ParseScheduleError(format!("bad entry {part:?}")))?;
            let c: usize = c
                .parse()
                .map_err(|_| ParseScheduleError(format!("bad chosen in {part:?}")))?;
            let t: usize = t
                .parse()
                .map_err(|_| ParseScheduleError(format!("bad total in {part:?}")))?;
            if t < 2 || c >= t {
                return Err(ParseScheduleError(format!("out-of-range entry {part:?}")));
            }
            choices.push((c, t));
        }
        Ok(Schedule { choices })
    }
}

/// A failing execution: what went wrong and the schedule to replay it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    /// Human-readable failure: the panic message, deadlock report, or
    /// step-budget diagnosis.
    pub message: String,
    /// The complete choice stream of the failing execution; feed it to
    /// [`replay`] to reproduce the failure byte-identically.
    pub schedule: Schedule,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}\nschedule: {}", self.message, self.schedule)
    }
}

/// Exploration budgets and seeds for [`check`].
#[derive(Clone, Debug)]
pub struct CheckOptions {
    /// Maximum executions for the exhaustive DFS phase.
    pub max_schedules_exhaustive: usize,
    /// Random executions after the DFS budget runs out (skipped when
    /// DFS covered the whole space).
    pub random_schedules: usize,
    /// Seed for the random phase. `RT_CHECK_SEED` in the environment
    /// overrides it, mirroring `rt::check`.
    pub seed: u64,
    /// Per-execution scheduling-step budget; exceeding it fails the
    /// execution (livelock proxy).
    pub max_steps: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        let seed = std::env::var("RT_CHECK_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5EED_CAB1E_u64);
        CheckOptions {
            max_schedules_exhaustive: 2_000,
            random_schedules: 256,
            seed,
            max_steps: 20_000,
        }
    }
}

/// The result of a [`check`] run.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// Executions actually run across both phases.
    pub executions: u64,
    /// `true` when the DFS phase covered the entire schedule space
    /// within budget (the random phase is then skipped).
    pub exhausted: bool,
    /// The first failing execution found, if any.
    pub failure: Option<Failure>,
}

impl CheckReport {
    /// Panics with the failure (message + schedule token) if the check
    /// found one.
    pub fn assert_pass(&self) {
        if let Some(f) = &self.failure {
            panic!("model check failed after {} executions:\n{f}", self.executions);
        }
    }
}

/// RAII panic-hook silencer: model exploration panics on purpose
/// (assertion failures under exploration, abort unwinds), so the
/// default hook's backtrace spew is suppressed for the duration.
struct HookGuard;

static HOOK_DEPTH: Mutex<u64> = Mutex::new(0);

impl HookGuard {
    fn install() -> Self {
        let mut depth = HOOK_DEPTH.lock().expect("hook depth");
        if *depth == 0 {
            std::panic::set_hook(Box::new(|_| {}));
        }
        *depth += 1;
        HookGuard
    }
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let mut depth = HOOK_DEPTH.lock().expect("hook depth");
        *depth -= 1;
        if *depth == 0 {
            let _ = std::panic::take_hook();
        }
    }
}

/// Runs the model once under a forced prefix (+ optional random tail)
/// and returns the recorded choice stream and any failure message.
fn run_once(
    model: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<Choice>,
    rng: Option<Pcg64>,
    max_steps: u64,
) -> (Vec<Choice>, Option<String>) {
    let exec = Arc::new(Exec {
        state: Mutex::new(ExecState {
            current: None,
            runnable: vec![0],
            blocked: BTreeMap::new(),
            queues: HashMap::new(),
            timed_out: HashSet::new(),
            finished: HashSet::new(),
            live: 1,
            now: 0,
            steps: 0,
            max_steps,
            prefix,
            pos: 0,
            rng,
            recorded: Vec::new(),
            failure: None,
            aborting: false,
            next_tid: 1,
        }),
        cv: Condvar::new(),
        handles: Mutex::new(Vec::new()),
    });
    let model = Arc::clone(model);
    let exec2 = Arc::clone(&exec);
    let root = std::thread::Builder::new()
        .name("vthread-0".to_string())
        .spawn(move || vthread_main(exec2, 0, move || (model)()))
        .expect("spawn model root");
    exec.handles.lock().expect("handles").push(root);

    // Kick the first scheduling decision, then wait for quiescence.
    {
        let mut st = exec.state.lock().expect("sched state");
        schedule_next(&mut st);
        exec.cv.notify_all();
        while st.live > 0 {
            st = exec.cv.wait(st).expect("sched state");
        }
    }
    // Every wrapper has run its epilogue; joins are instantaneous.
    for h in exec.handles.lock().expect("handles").drain(..) {
        let _ = h.join();
    }
    let mut st = exec.state.lock().expect("sched state");
    (std::mem::take(&mut st.recorded), st.failure.take())
}

/// Computes the DFS successor of a recorded choice stream: backtrack
/// past exhausted trailing decisions, bump the last one that still has
/// alternatives. `None` means the space is exhausted.
fn next_prefix(mut rec: Vec<Choice>) -> Option<Vec<Choice>> {
    loop {
        match rec.last().copied() {
            None => return None,
            Some((c, t)) if c + 1 >= t => {
                rec.pop();
            }
            Some((c, t)) => {
                let last = rec.len() - 1;
                rec[last] = (c + 1, t);
                return Some(rec);
            }
        }
    }
}

/// Explores interleavings of `model`: bounded exhaustive DFS first,
/// then seeded random sampling. Returns on the first failure (with its
/// replayable [`Schedule`]) or when both budgets are spent.
pub fn check<F>(opts: CheckOptions, model: F) -> CheckReport
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let _hook = HookGuard::install();
    let mut executions = 0u64;
    let mut exhausted = false;

    let mut prefix: Vec<Choice> = Vec::new();
    while (executions as usize) < opts.max_schedules_exhaustive {
        let (recorded, failure) = run_once(&model, prefix.clone(), None, opts.max_steps);
        executions += 1;
        if let Some(message) = failure {
            return CheckReport {
                executions,
                exhausted: false,
                failure: Some(Failure {
                    message,
                    schedule: Schedule { choices: recorded },
                }),
            };
        }
        match next_prefix(recorded) {
            None => {
                exhausted = true;
                break;
            }
            Some(next) => prefix = next,
        }
    }

    if !exhausted {
        for i in 0..opts.random_schedules {
            let rng = Pcg64::seed_from_u64(opts.seed.wrapping_add(i as u64));
            let (recorded, failure) = run_once(&model, Vec::new(), Some(rng), opts.max_steps);
            executions += 1;
            if let Some(message) = failure {
                return CheckReport {
                    executions,
                    exhausted: false,
                    failure: Some(Failure {
                        message,
                        schedule: Schedule { choices: recorded },
                    }),
                };
            }
        }
    }

    CheckReport {
        executions,
        exhausted,
        failure: None,
    }
}

/// Re-runs `model` under the exact choice stream of `schedule` (as
/// printed in a [`Failure`]). Returns the reproduced failure, or
/// `None` if the execution passes — which, for a schedule taken from a
/// failing [`check`] on the same model, indicates nondeterminism in
/// the model itself.
pub fn replay<F>(schedule: &Schedule, model: F) -> Option<Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let _hook = HookGuard::install();
    let (recorded, failure) = run_once(
        &model,
        schedule.choices.clone(),
        None,
        CheckOptions::default().max_steps,
    );
    failure.map(|message| Failure {
        message,
        schedule: Schedule { choices: recorded },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn trivial_model_passes_and_exhausts() {
        let report = check(CheckOptions::default(), || {
            let h = spawn(|| 7);
            assert_eq!(h.join(), 7);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.exhausted);
        assert!(report.executions >= 1);
    }

    #[test]
    fn exhaustive_exploration_finds_rare_interleaving() {
        // A bug that manifests only when the child runs before the
        // parent's second step — one specific scheduling decision.
        let report = check(CheckOptions::default(), || {
            let hit = Arc::new(AtomicUsize::new(0));
            let h2 = Arc::clone(&hit);
            let h = spawn(move || {
                h2.store(1, Ordering::SeqCst);
            });
            yield_now();
            let seen = hit.load(Ordering::SeqCst);
            h.join();
            assert_eq!(seen, 0, "child ran before parent resumed");
        });
        let failure = report.failure.expect("explorer must find the interleaving");
        assert!(failure.message.contains("child ran before parent resumed"));
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn deadlock_is_detected_and_reported() {
        let report = check(CheckOptions::default(), || {
            // Block forever on an address nobody wakes.
            block_on_addr(0xdead, None);
        });
        let failure = report.failure.expect("deadlock must be reported");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn virtual_time_advances_to_deadline() {
        let report = check(CheckOptions::default(), || {
            assert_eq!(now(), 0);
            sleep(1_000_000);
            assert_eq!(now(), 1_000_000);
            // A timed wait on a never-woken address times out at its
            // virtual deadline without wall-clock delay.
            let woken = block_on_addr(0xbeef, Some(now() + 500));
            assert!(!woken);
            assert_eq!(now(), 1_000_500);
        });
        report.assert_pass();
    }

    #[test]
    fn choice_is_explored_exhaustively() {
        let seen = Arc::new(Mutex::new(HashSet::new()));
        let s = Arc::clone(&seen);
        let report = check(CheckOptions::default(), move || {
            let v = choice(3);
            s.lock().unwrap().insert(v);
        });
        report.assert_pass();
        assert!(report.exhausted);
        assert_eq!(*seen.lock().unwrap(), HashSet::from([0, 1, 2]));
    }

    #[test]
    fn failing_schedule_replays_byte_identically() {
        let model = || {
            let v = choice(4);
            let w = choice(3);
            assert!(!(v == 2 && w == 1), "boom v={v} w={w}");
        };
        let report = check(CheckOptions::default(), model);
        let failure = report.failure.expect("must find v=2,w=1");
        let token = failure.schedule.to_string();
        let parsed: Schedule = token.parse().expect("token parses");
        assert_eq!(parsed, failure.schedule);
        let replayed = replay(&parsed, model).expect("replay reproduces the failure");
        assert_eq!(format!("{failure}"), format!("{replayed}"));
    }

    #[test]
    fn step_budget_flags_livelock() {
        let opts = CheckOptions {
            max_schedules_exhaustive: 1,
            random_schedules: 0,
            max_steps: 200,
            ..CheckOptions::default()
        };
        let report = check(opts, || loop {
            yield_now();
        });
        let failure = report.failure.expect("livelock must trip the budget");
        assert!(failure.message.contains("step budget"), "{}", failure.message);
    }

    #[test]
    fn schedule_token_round_trips() {
        let sched = Schedule {
            choices: vec![(1, 3), (0, 2), (3, 4)],
        };
        let token = sched.to_string();
        assert_eq!(token, "v1:1/3,0/2,3/4");
        assert_eq!(token.parse::<Schedule>().unwrap(), sched);
        assert_eq!("v1:".parse::<Schedule>().unwrap(), Schedule::default());
        assert!("v0:1/2".parse::<Schedule>().is_err());
        assert!("v1:2/2".parse::<Schedule>().is_err());
        assert!("v1:x/2".parse::<Schedule>().is_err());
    }

    #[test]
    fn wake_addr_unblocks_waiter() {
        // Pin the default schedule only: the child parks at the spawn
        // point before the parent wakes it. (Exploring all schedules
        // would legitimately find the wake-before-park deadlock — this
        // test is about the wake primitive, not the protocol.)
        let opts = CheckOptions {
            max_schedules_exhaustive: 1,
            random_schedules: 0,
            ..CheckOptions::default()
        };
        let report = check(opts, || {
            let addr = 0x51;
            let h = spawn(move || {
                let woken = block_on_addr(addr, None);
                assert!(woken, "must be woken by notify, not timeout");
            });
            wake_addr(addr);
            h.join();
        });
        report.assert_pass();
    }

    #[test]
    fn panic_on_spawned_thread_fails_execution() {
        let report = check(CheckOptions::default(), || {
            let h = spawn(|| panic!("worker exploded"));
            h.join();
        });
        let failure = report.failure.expect("panic must surface");
        assert!(failure.message.contains("worker exploded"), "{}", failure.message);
    }
}
