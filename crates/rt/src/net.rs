//! Length-prefixed framed [`crate::json`] messaging over TCP.
//!
//! The cluster mode's wire layer: the coordinator and its workers
//! exchange JSON documents, each prefixed by a 4-byte big-endian
//! length. Reusing `rt::json` keeps the protocol debuggable (every
//! frame is a single readable line) and keeps `rt` dependency-free,
//! in the same spirit as [`crate::http`]'s hand-rolled HTTP/1.1.
//!
//! Design points, all of which the adversarial fuzz suite leans on:
//!
//! * **Bounded frames** — a length prefix larger than the connection's
//!   `max_frame` is rejected *before* any allocation, so a hostile or
//!   corrupt peer cannot OOM the process with a 4 GiB announcement.
//! * **Read/write deadlines** — both directions run under socket
//!   timeouts ([`Conn::set_io_timeout`]), so a stalled peer surfaces
//!   as [`io::ErrorKind::WouldBlock`]/`TimedOut` instead of pinning a
//!   thread forever.
//! * **Versioned hello** — each side opens with a
//!   `{"net":"hello","version":N,"role":R}` frame; a version mismatch
//!   is a permanent, clearly-worded error rather than a cryptic parse
//!   failure halfway into the session.
//! * **Failure classification** — [`NetError::is_transient`] splits
//!   environmental failures (resets, refusals, timeouts: reconnect and
//!   retry) from protocol failures (oversized frames, bad JSON, version
//!   skew: give up), the matrix the coordinator's dispatch loop applies.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};

/// Wire protocol version carried in every hello frame. Bump on any
/// incompatible message-shape change.
pub const PROTOCOL_VERSION: u64 = 1;

/// Default ceiling on a single frame's payload, generous enough for a
/// dataset-bearing setup message but far below anything that could
/// exhaust memory.
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Default socket read/write deadline for a connection.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// How long [`Listener::accept_timeout`] sleeps between polls of its
/// non-blocking accept.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Everything that can go wrong on a framed connection.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket error (includes timeouts).
    Io(io::Error),
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// A frame announced a length above the connection's ceiling.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// This connection's ceiling.
        max: usize,
    },
    /// The frame payload was not valid JSON.
    Parse(json::ParseError),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// Our [`PROTOCOL_VERSION`].
        ours: u64,
        /// The version the peer announced.
        theirs: u64,
    },
    /// The peer sent something structurally wrong (not a hello when one
    /// was expected, a non-UTF-8 payload, an unexpected role).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Closed => f.write_str("connection closed by peer"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte ceiling")
            }
            NetError::Parse(e) => write!(f, "bad frame payload: {e}"),
            NetError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
            ),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether a retry (reconnect, backoff, re-dispatch) may plausibly
    /// succeed. Environmental failures — resets, refusals, timeouts, a
    /// peer that simply went away — are transient; protocol failures —
    /// oversized frames, unparseable payloads, version skew — are
    /// permanent: the peers will disagree identically on every retry.
    pub fn is_transient(&self) -> bool {
        match self {
            NetError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
                    | io::ErrorKind::Interrupted
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::ConnectionRefused
                    | io::ErrorKind::BrokenPipe
                    | io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::NotConnected
            ),
            NetError::Closed => true,
            NetError::FrameTooLarge { .. }
            | NetError::Parse(_)
            | NetError::VersionMismatch { .. }
            | NetError::Protocol(_) => false,
        }
    }
}

/// Writes one frame: 4-byte big-endian payload length, then the
/// compact JSON bytes.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] when the serialized payload exceeds
/// `max_frame`; otherwise any underlying I/O error.
pub fn write_frame(w: &mut impl Write, value: &Json, max_frame: usize) -> Result<(), NetError> {
    let payload = value.to_string();
    let bytes = payload.as_bytes();
    if bytes.len() > max_frame {
        return Err(NetError::FrameTooLarge {
            len: bytes.len(),
            max: max_frame,
        });
    }
    let len = (bytes.len() as u32).to_be_bytes();
    w.write_all(&len)?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame written by [`write_frame`].
///
/// A clean EOF before any prefix byte is [`NetError::Closed`]; EOF in
/// the middle of a frame is an [`io::ErrorKind::UnexpectedEof`] I/O
/// error. The announced length is validated against `max_frame`
/// *before* the payload buffer is allocated.
///
/// # Errors
///
/// [`NetError::Closed`], [`NetError::FrameTooLarge`],
/// [`NetError::Parse`], [`NetError::Protocol`] (non-UTF-8 payload), or
/// an underlying I/O error.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Json, NetError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(NetError::Closed),
            Ok(0) => {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length prefix",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_frame {
        return Err(NetError::FrameTooLarge {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| NetError::Protocol("frame payload is not UTF-8".to_string()))?;
    Json::parse(text).map_err(NetError::Parse)
}

/// The opening frame each side sends: protocol version plus a role
/// label the peer can sanity-check.
pub fn hello_frame(role: &str) -> Json {
    Json::object()
        .insert("net", "hello")
        .insert("version", PROTOCOL_VERSION)
        .insert("role", role)
}

/// Validates a received hello frame, returning the peer's role.
///
/// # Errors
///
/// [`NetError::Protocol`] when the frame is not a hello or announces
/// an unexpected role; [`NetError::VersionMismatch`] on version skew.
pub fn check_hello(frame: &Json, expect_role: Option<&str>) -> Result<String, NetError> {
    if frame.get("net").and_then(Json::as_str) != Some("hello") {
        return Err(NetError::Protocol("expected a hello frame".to_string()));
    }
    let theirs = frame
        .get("version")
        .and_then(Json::as_f64)
        .ok_or_else(|| NetError::Protocol("hello frame has no version".to_string()))?
        as u64;
    if theirs != PROTOCOL_VERSION {
        return Err(NetError::VersionMismatch {
            ours: PROTOCOL_VERSION,
            theirs,
        });
    }
    let role = frame
        .get("role")
        .and_then(Json::as_str)
        .ok_or_else(|| NetError::Protocol("hello frame has no role".to_string()))?
        .to_string();
    if let Some(expected) = expect_role {
        if role != expected {
            return Err(NetError::Protocol(format!(
                "expected peer role {expected:?}, got {role:?}"
            )));
        }
    }
    Ok(role)
}

/// A framed TCP connection: a socket plus its frame-size ceiling.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    max_frame: usize,
}

impl Conn {
    /// Connects to `addr` with a connect deadline, applying `timeout`
    /// as the socket read/write deadline and `max_frame` as the frame
    /// ceiling.
    ///
    /// # Errors
    ///
    /// Any resolution or connection failure as [`NetError::Io`].
    pub fn connect(
        addr: &str,
        timeout: Duration,
        max_frame: usize,
    ) -> Result<Self, NetError> {
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(NetError::Io)?
            .collect();
        let first = resolved.first().ok_or_else(|| {
            NetError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                format!("{addr} resolved to no addresses"),
            ))
        })?;
        let stream = TcpStream::connect_timeout(first, timeout)?;
        Self::from_stream(stream, max_frame, Some(timeout))
    }

    /// Wraps an accepted stream, applying the deadline and ceiling.
    ///
    /// # Errors
    ///
    /// Any socket-option failure as [`NetError::Io`].
    pub fn from_stream(
        stream: TcpStream,
        max_frame: usize,
        timeout: Option<Duration>,
    ) -> Result<Self, NetError> {
        stream.set_nodelay(true)?;
        let conn = Self { stream, max_frame };
        conn.set_io_timeout(timeout)?;
        Ok(conn)
    }

    /// Sets (or clears) the read *and* write deadline. A blocked peer
    /// then surfaces as `TimedOut`/`WouldBlock` instead of hanging the
    /// calling thread.
    ///
    /// # Errors
    ///
    /// Any socket-option failure.
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// The peer's address.
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one framed message.
    ///
    /// # Errors
    ///
    /// See [`write_frame`].
    pub fn send(&mut self, value: &Json) -> Result<(), NetError> {
        write_frame(&mut self.stream, value, self.max_frame)
    }

    /// Receives one framed message.
    ///
    /// # Errors
    ///
    /// See [`read_frame`].
    pub fn recv(&mut self) -> Result<Json, NetError> {
        read_frame(&mut self.stream, self.max_frame)
    }

    /// Client side of the versioned handshake: send our hello, read and
    /// validate the peer's. Returns the peer's role.
    ///
    /// # Errors
    ///
    /// Any frame error, or [`NetError::VersionMismatch`] /
    /// [`NetError::Protocol`] from validation.
    pub fn handshake_client(
        &mut self,
        role: &str,
        expect_peer_role: Option<&str>,
    ) -> Result<String, NetError> {
        self.send(&hello_frame(role))?;
        let reply = self.recv()?;
        check_hello(&reply, expect_peer_role)
    }

    /// Server side of the versioned handshake: read and validate the
    /// peer's hello, then send ours. Returns the peer's role.
    ///
    /// # Errors
    ///
    /// Any frame error, or [`NetError::VersionMismatch`] /
    /// [`NetError::Protocol`] from validation. On version mismatch the
    /// server still sends its own hello first, so the client learns the
    /// server's version instead of seeing a bare disconnect.
    pub fn handshake_server(
        &mut self,
        role: &str,
        expect_peer_role: Option<&str>,
    ) -> Result<String, NetError> {
        let theirs = self.recv()?;
        let checked = check_hello(&theirs, expect_peer_role);
        // Always answer: a mismatched client deserves to know why.
        self.send(&hello_frame(role))?;
        checked
    }
}

/// A non-blocking accept loop over a bound TCP listener, polled with a
/// deadline so serving threads can observe a stop flag between polls —
/// the same shape [`crate::http`]'s accept slots use.
#[derive(Debug)]
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// switches the listener to non-blocking mode.
    ///
    /// # Errors
    ///
    /// Any bind failure.
    pub fn bind(addr: &str) -> io::Result<Self> {
        let inner = TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(Self { inner })
    }

    /// The bound address (reports the kernel-chosen port after binding
    /// port 0).
    ///
    /// # Errors
    ///
    /// Any socket failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Waits up to `timeout` for one connection. Returns `Ok(None)` on
    /// timeout, so callers can interleave accepts with stop-flag checks.
    ///
    /// # Errors
    ///
    /// Any accept failure other than `WouldBlock`.
    pub fn accept_timeout(
        &self,
        timeout: Duration,
    ) -> io::Result<Option<(TcpStream, SocketAddr)>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match self.inner.accept() {
                Ok((stream, addr)) => {
                    stream.set_nonblocking(false)?;
                    return Ok(Some((stream, addr)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if std::time::Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(ACCEPT_POLL.min(timeout));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let msg = Json::object().insert("kind", "evaluate").insert("id", 7);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg, DEFAULT_MAX_FRAME).unwrap();
        let got = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(got.to_string(), msg.to_string());
        // Prefix is big-endian payload length.
        let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        assert_eq!(len, buf.len() - 4);
    }

    #[test]
    fn oversized_announcement_rejected_before_allocation() {
        // 4 GiB announcement followed by nothing: must fail on the
        // ceiling check, not attempt the allocation or the read.
        let mut buf = 0xFFFF_FFF0u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let err = read_frame(&mut Cursor::new(&buf), 1024).unwrap_err();
        assert!(matches!(
            err,
            NetError::FrameTooLarge { len: 0xFFFF_FFF0, max: 1024 }
        ));
        assert!(!err.is_transient());
    }

    #[test]
    fn oversized_payload_rejected_on_write() {
        let msg = Json::String("x".repeat(64));
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, &msg, 16).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }));
        assert!(buf.is_empty(), "nothing written for a rejected frame");
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let msg = Json::object().insert("k", 1);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg, DEFAULT_MAX_FRAME).unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME).unwrap_err();
        match err {
            NetError::Io(e) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_is_closed_and_transient() {
        let err = read_frame(&mut Cursor::new(&[]), DEFAULT_MAX_FRAME).unwrap_err();
        assert!(matches!(err, NetError::Closed));
        assert!(err.is_transient());
    }

    #[test]
    fn hello_validation() {
        let ok = hello_frame("worker");
        assert_eq!(check_hello(&ok, Some("worker")).unwrap(), "worker");
        assert!(matches!(
            check_hello(&ok, Some("coordinator")).unwrap_err(),
            NetError::Protocol(_)
        ));
        let skew = Json::object()
            .insert("net", "hello")
            .insert("version", PROTOCOL_VERSION + 1)
            .insert("role", "worker");
        let err = check_hello(&skew, None).unwrap_err();
        assert!(matches!(err, NetError::VersionMismatch { .. }));
        assert!(!err.is_transient());
        assert!(matches!(
            check_hello(&Json::object().insert("net", "goodbye"), None).unwrap_err(),
            NetError::Protocol(_)
        ));
    }

    #[test]
    fn loopback_handshake_and_round_trip() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener
                .accept_timeout(Duration::from_secs(10))
                .unwrap()
                .expect("client connects");
            let mut conn =
                Conn::from_stream(stream, DEFAULT_MAX_FRAME, Some(Duration::from_secs(10)))
                    .unwrap();
            let role = conn.handshake_server("worker", Some("coordinator")).unwrap();
            assert_eq!(role, "coordinator");
            let req = conn.recv().unwrap();
            let id = req.get("id").and_then(Json::as_f64).unwrap();
            conn.send(&Json::object().insert("echo", id)).unwrap();
        });
        let mut conn = Conn::connect(
            &addr.to_string(),
            Duration::from_secs(10),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        let role = conn.handshake_client("coordinator", Some("worker")).unwrap();
        assert_eq!(role, "worker");
        conn.send(&Json::object().insert("id", 42)).unwrap();
        let reply = conn.recv().unwrap();
        assert_eq!(reply.get("echo").and_then(Json::as_f64), Some(42.0));
        server.join().unwrap();
    }

    #[test]
    fn read_deadline_classifies_transient() {
        let listener = Listener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Server accepts but never writes; the client's recv must time
        // out instead of hanging.
        let mut conn = Conn::connect(
            &addr.to_string(),
            Duration::from_secs(10),
            DEFAULT_MAX_FRAME,
        )
        .unwrap();
        let (_held, _) = listener
            .accept_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("server sees the connection");
        conn.set_io_timeout(Some(Duration::from_millis(50))).unwrap();
        let err = conn.recv().unwrap_err();
        assert!(err.is_transient(), "deadline should classify transient: {err}");
    }
}
