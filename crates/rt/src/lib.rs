//! # ecad-rt
//!
//! The workspace's self-contained runtime substrate. Every other crate
//! builds on the five modules here instead of crates.io packages, so the
//! whole reproduction compiles with `cargo build --offline` against an
//! empty registry — the same spirit in which `ecad_core::config` hand-
//! rolls its INI parser.
//!
//! * [`rand`] — a deterministic PCG64 generator behind the familiar
//!   `Rng` / `SeedableRng` / `SliceRandom` surface, so genome mutation,
//!   tournament selection, and dataset synthesis stay seed-reproducible.
//! * [`sync`] — MPMC channels (bounded and unbounded) for the engine's
//!   master/worker pool, plus re-exports of the std locks.
//! * [`json`] — a JSON value type with parser, compact and pretty
//!   serializers, and the [`json::ToJson`] trait the bench harness uses
//!   for report emission.
//! * [`check`] — a property-testing harness: the [`prop!`] macro runs a
//!   body over generated inputs, shrinks failures, and prints the seed
//!   so any failure replays exactly.
//! * [`bench`] — a minimal wall-clock benchmark runner with the
//!   `criterion_group!` / `criterion_main!` shape the bench targets use.
//! * [`prof`] — a hierarchical profiler: thread-local span stacks
//!   accumulate a call tree with total/self time and call counts, merge
//!   across threads, and export schema-pinned JSON, collapsed-stack
//!   flamegraph text, and an attribution table.
//! * [`obs`] — structured tracing and metrics: leveled events with
//!   key=value fields routed to pluggable sinks (stderr, JSONL, ring
//!   buffer), spans with monotonic timing, and an atomic registry of
//!   counters/gauges/histograms for the engine's worker pool.
//! * [`supervise`] — restartable worker slots with panic/stall/respawn
//!   accounting and a cooperative shutdown flag, so a hung or crashed
//!   evaluation cannot take down the search.
//! * [`http`] — a minimal GET-only HTTP/1.1 server plus a Prometheus
//!   text-exposition writer/parser, so a live search can expose
//!   `/metrics`, `/status`, and `/healthz` without a web framework.
//! * [`sched`] — a deterministic cooperative scheduler and bounded
//!   interleaving explorer (a loom-lite model checker): virtual
//!   threads, virtual time, and replayable failure schedules for the
//!   engine's concurrency protocols.
//! * [`net`] — length-prefixed framed [`json`] messaging over TCP with
//!   bounded frame sizes, read/write deadlines, a versioned hello
//!   handshake, and transient-vs-permanent error classification: the
//!   wire layer for the distributed coordinator/worker cluster mode.
//!
//! The crate has **no dependencies** (not even workspace-internal ones)
//! and must stay that way: CI builds the workspace `--offline` exactly
//! to keep it honest.

#![warn(missing_docs)]

pub mod bench;
pub mod check;
pub mod http;
pub mod json;
pub mod net;
pub mod obs;
pub mod prof;
pub mod rand;
pub mod sched;
pub mod supervise;
pub mod sync;
